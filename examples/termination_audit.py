#!/usr/bin/env python3
"""Termination audit: classify an ontology and explain the verdict.

Given an ontology and a database, the audit reports:

* the syntactic class (SL ⊊ L ⊊ G ⊊ TGD) — it selects the procedure;
* the termination verdict and the technique that produced it
  (weak-acyclicity, simplification, linearization, or bounded chase);
* the offending cycle and the supporting database predicates when the
  verdict is negative — the actionable piece for an ontology engineer;
* the size / depth bounds when the verdict is positive.

Run with::

    python examples/termination_audit.py
"""

from repro import parse_database, parse_program
from repro.core import certify, classify
from repro.core.bounds import magnitude
from repro.core.decision import naive_decision, syntactic_decision
from repro.generators.families import example_7_1
from repro.generators.turing import halting_machine, machine_database, sigma_star


def audit(name: str, database, tgds) -> None:
    print(f"=== {name} ===")
    tgd_class = classify(tgds)
    print(f"class: {tgd_class.value} ({len(tgds)} rules, {len(database)} facts)")
    if tgd_class.value == "TGD":
        verdict = naive_decision(database, tgds)
        print(f"outside the guarded fragment; bounded-chase verdict: {verdict.terminates}")
        print()
        return
    verdict = syntactic_decision(database, tgds)
    print(f"terminates: {verdict.terminates}  via {verdict.method.value}")
    report = verdict.details.get("report")
    if verdict.terminates:
        certificate = certify(database, tgds, run_chase=True)
        print(f"size bound |D|*f_C: {magnitude(certificate.size_bound)}")
        print(f"depth bound d_C   : {magnitude(certificate.depth_bound)}")
        if certificate.chase_result is not None:
            print(
                f"measured          : {certificate.chase_result.size} atoms, "
                f"depth {certificate.chase_result.max_depth}"
            )
    elif report is not None:
        offenders = sorted(p.name for p in report.supporting_predicates)
        print(f"supporting database predicates: {offenders}")
        if report.witness_cycle:
            print("offending cycle:")
            for edge in report.witness_cycle:
                print("   ", edge)
    print()


def main() -> None:
    # A guarded ontology whose termination depends on the data.
    ontology = parse_program(
        """
        Team(t), MemberOf(p, t) -> exists q . Mentors(q, p), MemberOf(q, t)
        Mentors(q, p) -> Knows(q, p)
        """
    )
    audit("guarded mentoring ontology / supported data",
          parse_database("Team(core).\nMemberOf(ada, core)."), ontology)
    audit("guarded mentoring ontology / unsupported data",
          parse_database("Knows(ada, bob)."), ontology)

    database, tgds = example_7_1()
    audit("Example 7.1 (linear, needs simplification)", database, tgds)

    audit("Appendix A: Sigma* with a halting machine",
          machine_database(halting_machine()), sigma_star())


if __name__ == "__main__":
    main()
