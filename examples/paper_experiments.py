#!/usr/bin/env python3
"""Regenerate the paper-vs-measured tables of EXPERIMENTS.md from the CLI.

This drives the same sweep functions as the benchmark harness but
without pytest, so the tables can be produced (and eyeballed) directly::

    python examples/paper_experiments.py
"""

from repro.bench import (
    chase_size_sweep,
    decision_scaling_sweep,
    depth_sweep,
    format_table,
    lower_bound_rows,
    variant_comparison_rows,
)
from repro.chase.engine import ChaseBudget
from repro.generators.families import linear_lower_bound, sl_lower_bound
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario


def main() -> None:
    print("E1 — chase size is linear in |D| (SL family, n=2, m=2)")
    print(format_table(chase_size_sweep(lambda size: sl_lower_bound(2, 2, size), [1, 2, 4, 8])))
    print()

    print("E2 — Theorem 6.5 lower bound (SL)")
    print(format_table(lower_bound_rows("sl", [(1, 1, 1), (1, 2, 1), (2, 2, 1), (1, 3, 1)])))
    print()

    print("E3 — Theorem 7.6 lower bound (L)")
    print(format_table(lower_bound_rows("linear", [(1, 1, 1), (1, 2, 1), (2, 1, 1), (2, 2, 1)])))
    print()

    print("E4 — Theorem 8.4 lower bound (G)")
    print(
        format_table(
            lower_bound_rows("guarded", [(1, 1, 1), (1, 1, 2)], budget=ChaseBudget(max_atoms=400_000))
        )
    )
    print()

    print("E5 — Proposition 4.5 depth growth")
    print(format_table(depth_sweep([2, 4, 8, 16])))
    print()

    print("E7 — decision procedure scaling (SL family)")
    print(
        format_table(
            decision_scaling_sweep(lambda size: sl_lower_bound(2, 2, size), [1, 4, 16, 64])
        )
    )
    print()

    print("E12 — chase variants on the scenarios")
    university = university_ontology_scenario(students=30, courses=6, professors=4)
    exchange = data_exchange_scenario(employees=30, departments=5)
    print(
        format_table(
            variant_comparison_rows(
                [
                    ("university", university.database, university.tgds),
                    ("data_exchange", exchange.database, exchange.tgds),
                ]
            )
        )
    )


if __name__ == "__main__":
    main()
