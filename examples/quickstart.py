#!/usr/bin/env python3
"""Quickstart: parse a database and an ontology, chase, decide termination.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ChaseBudget,
    decide_termination,
    parse_database,
    parse_program,
    semi_oblivious_chase,
)
from repro.core import certify


def main() -> None:
    # An ontology (a set of TGDs / existential rules).  Whether its chase
    # terminates depends on the database — this is exactly the
    # *non-uniform* termination problem the library answers.
    ontology = parse_program(
        """
        % every employee works in some department
        Employee(x) -> exists d . WorksIn(x, d)
        % departments have a manager, who is an employee
        WorksIn(x, d) -> exists m . Manages(m, d), Employee(m)
        """
    )

    database = parse_database(
        """
        Employee(alice).
        Employee(bob).
        WorksIn(carol, sales).
        """
    )

    # 1. Decide termination *without* running the chase (Theorem 8.3).
    verdict = decide_termination(database, ontology)
    print(f"chase terminates: {verdict.terminates}  (method: {verdict.method.value})")

    # 2. Materialise the semi-oblivious chase.
    result = semi_oblivious_chase(database, ontology, budget=ChaseBudget(max_atoms=10_000))
    print(f"chase size: {result.size} atoms, maximal term depth: {result.max_depth}")
    for atom in sorted(result.instance, key=str)[:10]:
        print("   ", atom)

    # 3. Cross-check the three faces of the paper's characterisation.
    certificate = certify(database, ontology)
    print(f"size bound |D|*f_C(Sigma): {certificate.size_bound}")
    print(f"measured size within bound: {certificate.size_within_bound}")
    print(f"measured depth within bound: {certificate.depth_within_bound}")
    print(f"certificate consistent: {certificate.consistent}")

    # 4. The same ontology over a cyclic database keeps the chase finite
    #    too (the rules above are weakly acyclic); a feedback rule makes
    #    termination genuinely database-dependent.
    feedback = parse_program(
        """
        Employee(x) -> exists d . WorksIn(x, d)
        WorksIn(x, d) -> exists m . Manages(m, d), Employee(m)
        Manages(m, d) -> exists e . WorksIn(e, d), Reports(e, m), Employee(e)
        """
    )
    for database_text in ["Project(p1).", "Employee(alice)."]:
        small = parse_database(database_text)
        verdict = decide_termination(small, feedback)
        print(f"feedback ontology over {{{database_text}}} terminates: {verdict.terminates}")


if __name__ == "__main__":
    main()
