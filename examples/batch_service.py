#!/usr/bin/env python3
"""Batch service: run a mixed manifest of chase jobs through the runtime.

Demonstrates the service-shaped layer on top of the chase engine:
declarative :class:`ChaseJob` specs, paper-derived auto-budgets, the
fingerprint-keyed result cache, and the streaming batch executor —
first in-process (serial, deterministic), then through a JSONL manifest
exactly as ``python -m repro batch`` would consume it.

Run with::

    python examples/batch_service.py
"""

import json
import tempfile
from pathlib import Path

from repro import parse_database, parse_program
from repro.runtime import (
    BatchExecutor,
    ChaseJob,
    ResultCache,
    program_fingerprint,
    read_manifest,
    write_manifest,
)


def build_jobs():
    """Three tenants submitting work: two terminating, one not."""
    hr_ontology = parse_program(
        """
        Employee(x) -> exists d . WorksIn(x, d)
        WorksIn(x, d) -> Dept(d)
        """
    )
    hr_database = parse_database("Employee(alice).\nEmployee(bob).")

    # The same ontology a second tenant wrote differently: rules
    # reordered, variables renamed.  Its fingerprint — and therefore
    # its cache entry — is identical.
    hr_rewritten = parse_program(
        """
        WorksIn(e, dept) -> Dept(dept)
        Employee(e) -> exists dept . WorksIn(e, dept)
        """
    )

    looping = parse_program("R(x, y) -> exists z . R(y, z)")

    return [
        ChaseJob(program=hr_ontology, database=hr_database, job_id="tenant-a"),
        ChaseJob(program=hr_rewritten, database=hr_database, job_id="tenant-b"),
        ChaseJob(
            program=looping,
            database=parse_database("R(a, b)."),
            job_id="tenant-c-loop",
        ),
    ]


def main() -> None:
    jobs = build_jobs()
    print("fingerprints recognise the rewritten ontology:")
    print(
        "   tenant-a == tenant-b:",
        program_fingerprint(jobs[0].program) == program_fingerprint(jobs[1].program),
    )

    # 1. Serial executor with an in-memory cache: tenant-b's job replays
    #    tenant-a's result, and the non-terminating job is cut off by the
    #    paper-derived depth budget (d_SL), not a million-atom default.
    cache = ResultCache()
    executor = BatchExecutor(workers=1, cache=cache)
    for result in executor.run(jobs):
        budget = result.budget_provenance
        print(
            f"   {result.job_id:14s} {result.outcome:22s} "
            f"size={result.summary['size']:<3d} cache_hit={result.cache_hit} "
            f"budget={budget['source']} (class {budget['class']})"
        )
    print(f"   cache: {cache.stats()}")

    # 2. The same batch through a JSONL manifest, as the CLI runs it:
    #    python -m repro batch manifest.jsonl --workers 4 --cache cache.jsonl
    with tempfile.TemporaryDirectory() as tmp:
        manifest = Path(tmp) / "manifest.jsonl"
        write_manifest(jobs, manifest)
        print(f"manifest ({manifest.name}):")
        print("   " + manifest.read_text().splitlines()[0][:78] + "...")
        reloaded = read_manifest(manifest)
        results = BatchExecutor(workers=1).run_all(reloaded)
        rows = [json.dumps(r.as_dict(), sort_keys=True) for r in results]
        print(f"   {len(rows)} JSONL result rows, first row keys:")
        print("   " + ", ".join(sorted(json.loads(rows[0]).keys())))


if __name__ == "__main__":
    main()
