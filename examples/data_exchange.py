#!/usr/bin/env python3
"""Data exchange: compute a universal solution, or prove there is none to compute.

A schema mapping is a set of source-to-target TGDs; a universal
solution is exactly the result of a terminating chase.  The example
contrasts the classical weakly-acyclic mapping (terminates on every
source) with a cyclic mapping whose termination depends on the source
instance — the non-uniform setting of the paper.

Run with::

    python examples/data_exchange.py
"""

from repro import ChaseBudget, semi_oblivious_chase
from repro.core import certify, decide_termination
from repro.model.instance import Database
from repro.generators.scenarios import data_exchange_scenario


def report(title: str, database, tgds) -> None:
    print(f"--- {title} ---")
    verdict = decide_termination(database, tgds)
    print(f"terminates: {verdict.terminates} ({verdict.method.value})")
    if verdict.terminates:
        certificate = certify(database, tgds)
        result = certificate.chase_result
        print(f"universal solution: {result.size} atoms (bound {certificate.size_bound})")
        nulls = len(result.instance.nulls())
        print(f"labelled nulls in the solution: {nulls}")
    else:
        result = semi_oblivious_chase(database, tgds, budget=ChaseBudget(max_atoms=2_000))
        print(f"chase still growing after {result.size} atoms — no finite universal solution")
    print()


def main() -> None:
    acyclic = data_exchange_scenario(employees=25, departments=5)
    report("weakly-acyclic mapping (classical data exchange)", acyclic.database, acyclic.tgds)

    cyclic = data_exchange_scenario(employees=25, departments=5, weakly_acyclic=False)
    report("cyclic mapping, populated source", cyclic.database, cyclic.tgds)

    # The same cyclic mapping over a source that never reaches the cycle:
    # termination is database-dependent, and the decision procedure sees it.
    harmless_source = Database(
        a for a in cyclic.database if a.predicate.name == "SrcManager"
    )
    report("cyclic mapping, source without employees", harmless_source, cyclic.tgds)


if __name__ == "__main__":
    main()
