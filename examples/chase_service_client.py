#!/usr/bin/env python3
"""Chase service daemon: submit a mixed workload over HTTP.

Starts the daemon in-process (exactly what ``python -m repro serve``
wraps), submits a mixed manifest drawn from the multi-tenant workload
generator, streams the results back as JSONL, and then resubmits the
same manifest to show every deterministic job replaying from the
versioned result cache — with full cache and budget provenance on each
row.

Run with::

    python examples/chase_service_client.py
"""

from collections import Counter

from repro.generators.workloads import mixed_workload_jobs
from repro.service import ChaseService, ChaseServiceClient


def main() -> None:
    jobs = mixed_workload_jobs(job_count=20, seed=7)

    with ChaseService(workers=2, max_queue=64) as service:
        client = ChaseServiceClient(service.url)
        print(f"daemon up at {service.url}: {client.wait_until_healthy()}")

        # 1. Submit the whole manifest as one batch and stream results.
        rows, trailer = client.run_batch(jobs, wait=120.0)
        outcomes = Counter(str(row["outcome"]) for row in rows)
        print(f"cold batch: {trailer['rows']} rows, outcomes {dict(sorted(outcomes.items()))}")

        # 2. Resubmit the identical manifest: deterministic jobs replay
        #    from the cache, and every row says where its result and
        #    budget came from.
        rows, _ = client.run_batch(jobs, wait=120.0)
        hits = [row for row in rows if row["cache"]["hit"]]
        print(f"warm batch: {len(hits)}/{len(rows)} rows served from cache")
        sample = hits[0]
        print(
            f"  e.g. {sample['id']}: outcome={sample['outcome']} "
            f"cache_hit={sample['cache']['hit']} "
            f"key={sample['cache']['key'][:24]}... "
            f"budget={sample['budget']['source']} (class {sample['budget']['class']})"
        )

        # 3. Single-job round trip with long-poll, plus daemon stats.
        record = client.run_job(jobs[0], timeout=60.0)
        print(
            f"single job {record['client_id']}: state={record['state']} "
            f"cache_hit={record['result']['cache']['hit']}"
        )
        stats = client.stats()
        scheduler = stats["scheduler"]
        print(
            f"stats: hit rate {stats['cache_hit_rate']}, "
            f"executed {scheduler['executed']} (deduped {scheduler['deduped']}), "
            f"budget stops {scheduler['budget_stops']}, "
            f"by class {scheduler['by_class']}"
        )
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
