#!/usr/bin/env python3
"""OBDA materialisation: answer queries over a guarded ontology.

The introduction of the paper motivates chase termination through
ontology-based data access: if the chase of the data w.r.t. the
ontology is finite, query answering reduces to evaluating the query
over the materialised instance.  This example

1. checks non-uniform termination for the university ontology,
2. materialises the chase with the three engine variants, and
3. answers a conjunctive query over the materialisation.

Run with::

    python examples/obda_materialization.py
"""

from repro import semi_oblivious_chase
from repro.chase import oblivious_chase, restricted_chase
from repro.core import decide_termination
from repro.model.homomorphism import find_homomorphisms
from repro.model.parser import parse_atom
from repro.generators.scenarios import university_ontology_scenario


def answer_query(instance, query_text: str):
    """Evaluate a conjunctive query (comma-separated atoms) over an instance."""
    atoms = [parse_atom(part.strip()) for part in query_text.split("&")]
    answers = set()
    for match in find_homomorphisms(atoms, instance):
        answers.add(tuple(sorted((v.name, str(t)) for v, t in match.items())))
    return answers


def main() -> None:
    scenario = university_ontology_scenario(students=40, courses=8, professors=5)
    print(f"scenario: {scenario.description}")
    print(f"database: {len(scenario.database)} facts, ontology: {len(scenario.tgds)} rules")

    verdict = decide_termination(scenario.database, scenario.tgds)
    print(f"non-uniform termination: {verdict.terminates} via {verdict.method.value}")

    semi = semi_oblivious_chase(scenario.database, scenario.tgds, record_derivation=False)
    restricted = restricted_chase(scenario.database, scenario.tgds, record_derivation=False)
    oblivious = oblivious_chase(scenario.database, scenario.tgds, record_derivation=False)
    print("materialisation sizes:")
    print(f"   restricted      : {restricted.size} atoms")
    print(f"   semi-oblivious  : {semi.size} atoms")
    print(f"   oblivious       : {oblivious.size} atoms")

    # Who attends a class and has a tutor?  (Query variables are free.)
    query = "AttendsClassOf(s, c) & HasTutor(s, t)"
    answers = answer_query(semi.instance, query)
    print(f"query {query!r}: {len(answers)} answers; sample:")
    for answer in sorted(answers)[:5]:
        print("   ", dict(answer))


if __name__ == "__main__":
    main()
