"""E5/E6 — term depth (Proposition 4.5 and Lemmas 6.2 / 7.4 / 8.2).

E5 reproduces the Proposition 4.5 series: for the (non-guarded) family
``{D_n}`` the maximal term depth equals ``n − 1``, i.e. it grows with
the database — the behaviour that guardedness rules out.  E6 checks the
database-independent depth bounds ``d_C(Σ)`` on terminating workloads.
"""

import pytest

from repro.bench.drivers import depth_bound_rows, depth_sweep
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.families import example_7_1, linear_lower_bound, prop45_family, sl_lower_bound
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario

PROP45_SIZES = [2, 4, 8, 16, 32]


@pytest.mark.benchmark(group="E5-depth-growth")
def test_prop45_depth_growth(benchmark, report):
    rows = depth_sweep(PROP45_SIZES)
    report("E5: Proposition 4.5 — maxdepth(D_n, Σ) vs |D_n|", rows)
    assert all(row.measured["matches"] for row in rows)
    database, tgds = prop45_family(PROP45_SIZES[-1])
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E6-depth-bounds")
def test_depth_bounds_hold(benchmark, report):
    university = university_ontology_scenario(students=20, courses=5, professors=3)
    exchange = data_exchange_scenario(employees=20, departments=4)
    workloads = [
        ("sl_lower_bound(2,2)", *sl_lower_bound(2, 2, 1)),
        ("linear_lower_bound(1,2)", *linear_lower_bound(1, 2, 1)),
        ("example_7_1", *example_7_1()),
        ("university", university.database, university.tgds),
        ("data_exchange", exchange.database, exchange.tgds),
    ]
    rows = depth_bound_rows(workloads)
    report("E6: measured maxdepth vs the database-independent bound d_C(Σ)", rows)
    assert all(row.measured["within_bound"] for row in rows)
    benchmark.pedantic(
        lambda: depth_bound_rows(workloads[:2]),
        rounds=2,
        iterations=1,
    )
