"""E15 — batch runtime: pool vs serial, cache replay, auto-budgets.

``python -m repro bench-runtime`` regenerates the full 200-job
BENCH_runtime.json report; this benchmark keeps a small always-on smoke
version in the suite.  Correctness properties (byte-identical cache
replay, serial/pool agreement, auto-budgeted SL/L jobs finishing within
the paper's bounds) are hard assertions; the pool speedup is reported,
not asserted, because it depends on the machine's core count.
"""

import pytest

from repro.bench.drivers import SweepRow, runtime_benchmark_rows
from repro.generators.workloads import mixed_workload_jobs
from repro.runtime import BatchExecutor


@pytest.mark.benchmark(group="E15-batch-runtime")
def test_runtime_report(benchmark, report):
    rows, summary = runtime_benchmark_rows(job_count=20, workers=2, repeats=1, seed=7)
    report("E15: batch runtime (pool vs serial, cache, auto-budgets)", rows)
    report(
        "E15: summary",
        [SweepRow(label="summary", parameters={}, measured=dict(summary))],
    )
    assert summary["pool_deterministic"]
    assert summary["cache_hits_byte_identical"]
    assert summary["all_cacheable_jobs_hit"]
    assert summary["auto_budgeted_sl_l_within_budget"]
    # A mid-run kill must resume from the round checkpoint, re-execute
    # fewer rounds than the cold run, and reproduce its summary bytes.
    checkpoint = summary["checkpoint_resume"]
    assert checkpoint["resumed_from_checkpoint"]
    assert checkpoint["base_rounds"] > 0
    assert checkpoint["resumed_rounds"] < checkpoint["cold_rounds"]
    assert checkpoint["byte_identical"]
    jobs = mixed_workload_jobs(job_count=10, seed=7)
    benchmark.pedantic(
        lambda: BatchExecutor(workers=1).run_all(jobs),
        rounds=3,
        iterations=1,
    )
