"""E12 — semi-oblivious vs restricted vs oblivious chase.

The introduction motivates the semi-oblivious chase as the variant of
choice for RDBMS-backed implementations; this benchmark quantifies the
materialisation-size and runtime differences between the three
variants on the OBDA and data-exchange scenarios.
"""

import pytest

from repro.bench.drivers import variant_comparison_rows
from repro.chase.engine import ChaseBudget
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario


@pytest.mark.benchmark(group="E12-chase-variants")
def test_variant_sizes_on_scenarios(benchmark, report):
    university = university_ontology_scenario(students=30, courses=6, professors=4)
    exchange = data_exchange_scenario(employees=30, departments=5)
    workloads = [
        ("university", university.database, university.tgds),
        ("data_exchange", exchange.database, exchange.tgds),
    ]
    rows = variant_comparison_rows(workloads, budget=ChaseBudget(max_atoms=50_000))
    report("E12: chase variants — materialisation size and time", rows)
    for row in rows:
        semi = row.measured["semi_oblivious_size"]
        restricted = row.measured["restricted_size"]
        oblivious = row.measured["oblivious_size"]
        assert isinstance(semi, int) and isinstance(restricted, int) and isinstance(oblivious, int)
        assert restricted <= semi <= oblivious
    benchmark.pedantic(
        lambda: semi_oblivious_chase(university.database, university.tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E12-chase-variants")
def test_restricted_chase_on_university(benchmark):
    university = university_ontology_scenario(students=30, courses=6, professors=4)
    result = benchmark.pedantic(
        lambda: restricted_chase(university.database, university.tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )
    assert result.terminated
