"""E16 — chase service daemon: throughput, latency, cache speedup.

``python -m repro bench-service`` regenerates the full 200-job
BENCH_service.json report; this benchmark keeps a small always-on smoke
version in the suite.  Correctness properties (HTTP results byte
identical to a direct ``BatchExecutor`` run, identical concurrent
submissions executing exactly once, cache-hit rows byte identical on
resubmission) are hard assertions; absolute throughput, latency, and
the ≥10× cache-hit speedup target are reported, not asserted, because
at smoke scale HTTP overhead dominates the tiny jobs.
"""

import pytest

from repro.bench.drivers import SweepRow, service_benchmark_rows
from repro.generators.workloads import mixed_workload_jobs
from repro.service import ChaseService, ChaseServiceClient


@pytest.mark.benchmark(group="E16-chase-service")
def test_service_report(benchmark, report):
    rows, summary = service_benchmark_rows(job_count=20, clients=2, workers=2, seed=7)
    report("E16: chase service (HTTP over the batch runtime)", rows)
    report(
        "E16: summary",
        [SweepRow(label="summary", parameters={}, measured=dict(summary))],
    )
    assert summary["byte_identical_vs_direct"]
    assert summary["warm_hits_byte_identical"]
    assert summary["dedup_single_execution"]
    assert summary["warm_hits"] > 0
    assert summary["cache_hit_speedup"] > 1.0

    jobs = mixed_workload_jobs(job_count=5, seed=7)

    def serve_batch():
        with ChaseService(workers=2, max_queue=16) as service:
            client = ChaseServiceClient(service.url, timeout=60.0)
            client.wait_until_healthy()
            rows, trailer = client.run_batch(jobs, wait=120.0)
            assert trailer["complete"]
            return rows

    benchmark.pedantic(serve_batch, rounds=2, iterations=1)
