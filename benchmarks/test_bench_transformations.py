"""E10/E11 — simplification and linearization preserve the chase.

Propositions 7.3 and 8.1 are the technical backbone of the paper's
characterisations.  These benchmarks measure the transformation cost
and verify, per workload, that finiteness and maximal depth carry over.
"""

import pytest

from repro.bench.drivers import SweepRow
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.linearization import linearize
from repro.core.simplification import simplify_database, simplify_program
from repro.generators.families import example_7_1, linear_lower_bound
from repro.generators.random_programs import random_database, random_guarded_program, random_linear_program

BUDGET = ChaseBudget(max_atoms=5_000)


def _simplification_rows(cases):
    rows = []
    for name, database, tgds in cases:
        original = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
        transformed = semi_oblivious_chase(
            simplify_database(database), simplify_program(tgds), budget=BUDGET, record_derivation=False
        )
        rows.append(
            SweepRow(
                label="simplification",
                parameters={"workload": name},
                measured={
                    "original_terminated": original.terminated,
                    "simplified_terminated": transformed.terminated,
                    "original_depth": original.max_depth,
                    "simplified_depth": transformed.max_depth,
                    "preserved": original.terminated == transformed.terminated
                    and (not original.terminated or original.max_depth == transformed.max_depth),
                },
            )
        )
    return rows


def _linearization_rows(cases):
    rows = []
    for name, database, tgds in cases:
        original = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
        linearized_input = linearize(database, tgds)
        transformed = semi_oblivious_chase(
            linearized_input.database, linearized_input.program, budget=BUDGET, record_derivation=False
        )
        rows.append(
            SweepRow(
                label="linearization",
                parameters={"workload": name},
                measured={
                    "types": len(linearized_input.types),
                    "linear_rules": len(linearized_input.program),
                    "original_terminated": original.terminated,
                    "linearized_terminated": transformed.terminated,
                    "original_depth": original.max_depth,
                    "linearized_depth": transformed.max_depth,
                    "preserved": original.terminated == transformed.terminated
                    and (not original.terminated or original.max_depth == transformed.max_depth),
                },
            )
        )
    return rows


@pytest.mark.benchmark(group="E10-simplification")
def test_simplification_preservation(benchmark, report):
    cases = [("example_7_1", *example_7_1()), ("linear_lower_bound(1,2)", *linear_lower_bound(1, 2, 1))]
    for seed in (3, 7, 11):
        tgds = random_linear_program(seed)
        cases.append((f"random_linear(seed={seed})", random_database(tgds, seed, fact_count=5), tgds))
    rows = _simplification_rows(cases)
    report("E10: Proposition 7.3 — simplification preserves finiteness and depth", rows)
    assert all(row.measured["preserved"] for row in rows)
    _, database, tgds = cases[1]
    benchmark(lambda: simplify_program(tgds))


@pytest.mark.benchmark(group="E11-linearization")
def test_linearization_preservation(benchmark, report):
    cases = []
    for seed in (1, 5, 9):
        tgds = random_guarded_program(seed, predicate_count=3, max_arity=2, rule_count=3)
        cases.append(
            (
                f"random_guarded(seed={seed})",
                random_database(tgds, seed, fact_count=3, constant_count=3),
                tgds,
            )
        )
    rows = _linearization_rows(cases)
    report("E11: Proposition 8.1 — linearization preserves finiteness and depth", rows)
    assert all(row.measured["preserved"] for row in rows)
    _, database, tgds = cases[0]
    benchmark.pedantic(lambda: linearize(database, tgds), rounds=3, iterations=1)
