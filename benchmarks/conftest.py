"""Shared helpers for the benchmark harness.

Every benchmark prints the rows it measured (the table/series the
corresponding experiment in EXPERIMENTS.md reports) in addition to the
pytest-benchmark timing, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper-vs-measured tables directly.
"""

from __future__ import annotations

import pytest

from repro.bench.drivers import SweepRow, format_table


def emit(title: str, rows) -> None:
    """Print an experiment's rows under a recognisable banner."""
    print(f"\n=== {title} ===")
    print(format_table(rows))


@pytest.fixture
def report():
    """Fixture exposing :func:`emit` to benchmark bodies."""
    return emit
