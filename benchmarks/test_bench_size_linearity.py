"""E1 — chase size is linear in |D| (Theorems 6.4 / 7.5 / 8.3, item 2).

The paper's characterisations say that for ``Σ ∈ C ∩ CT_D`` the chase
has at most ``|D| · f_C(Σ)`` atoms, i.e. it grows *linearly* with the
database for a fixed ontology.  Each benchmark fixes a family, sweeps
the database size and reports the expansion ratio, which must stay flat.
"""

import pytest

from repro.bench.drivers import chase_size_sweep
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.families import linear_lower_bound, sl_lower_bound
from repro.generators.scenarios import university_ontology_scenario

SL_SIZES = [1, 2, 4, 8, 16]
LINEAR_SIZES = [1, 2, 4, 8]


def sl_family(size):
    return sl_lower_bound(2, 2, size)


def linear_family(size):
    return linear_lower_bound(1, 2, size)


def university_family(size):
    scenario = university_ontology_scenario(students=size, courses=4, professors=3)
    return scenario.database, scenario.tgds


@pytest.mark.benchmark(group="E1-size-linearity")
def test_sl_size_vs_db(benchmark, report):
    rows = chase_size_sweep(sl_family, SL_SIZES)
    report("E1a: |chase| vs |D| for the SL family (n=2, m=2)", rows)
    ratios = [row.measured["ratio"] for row in rows]
    assert max(ratios) == pytest.approx(min(ratios), rel=0.01), "expansion ratio must be flat"
    database, tgds = sl_family(SL_SIZES[-1])
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E1-size-linearity")
def test_linear_size_vs_db(benchmark, report):
    rows = chase_size_sweep(linear_family, LINEAR_SIZES)
    report("E1b: |chase| vs |D| for the linear family (n=1, m=2)", rows)
    ratios = [row.measured["ratio"] for row in rows]
    assert max(ratios) == pytest.approx(min(ratios), rel=0.01)
    database, tgds = linear_family(LINEAR_SIZES[-1])
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E1-size-linearity")
def test_guarded_scenario_size_vs_db(benchmark, report):
    rows = chase_size_sweep(university_family, [10, 20, 40, 80])
    report("E1c: |chase| vs |D| for the university OBDA scenario", rows)
    # The ratio depends mildly on the random data distribution; it must
    # stay bounded rather than exactly flat.
    ratios = [row.measured["ratio"] for row in rows]
    assert max(ratios) <= 2 * min(ratios)
    database, tgds = university_family(80)
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )
