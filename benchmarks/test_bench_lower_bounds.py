"""E2-E4 — worst-case size lower bounds (Theorems 6.5, 7.6, 8.4).

Each family is materialised at small parameter points and the measured
number of top-level atoms is compared against the paper's closed-form
lower bound.  The growth in the parameters (n, m) — exponential for SL,
double-exponential for L, triple-exponential for G — is the shape the
theorems assert; absolute feasibility limits are the theorems' point.
"""

import pytest

from repro.bench.drivers import lower_bound_rows
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.families import guarded_lower_bound, linear_lower_bound, sl_lower_bound

SL_POINTS = [(1, 1, 1), (1, 2, 1), (2, 2, 1), (1, 3, 1), (2, 2, 2)]
LINEAR_POINTS = [(1, 1, 1), (1, 2, 1), (2, 1, 1), (2, 2, 1), (1, 3, 1)]
GUARDED_POINTS = [(1, 1, 1), (1, 1, 2), (2, 1, 1)]


@pytest.mark.benchmark(group="E2-sl-lower-bound")
def test_sl_family_growth(benchmark, report):
    rows = lower_bound_rows("sl", SL_POINTS)
    report("E2: Theorem 6.5 — SL family, measured vs ℓ·m^(n·m)", rows)
    assert all(row.measured["meets_bound"] for row in rows)
    database, tgds = sl_lower_bound(2, 2, 1)
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E3-linear-lower-bound")
def test_linear_family_growth(benchmark, report):
    rows = lower_bound_rows("linear", LINEAR_POINTS)
    report("E3: Theorem 7.6 — linear family, measured vs ℓ·2^(n·(2^m−1))", rows)
    assert all(row.measured["meets_bound"] for row in rows)
    database, tgds = linear_lower_bound(1, 2, 1)
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E4-guarded-lower-bound")
def test_guarded_family_growth(benchmark, report):
    budget = ChaseBudget(max_atoms=400_000)
    rows = lower_bound_rows("guarded", GUARDED_POINTS, budget=budget)
    report("E4: Theorem 8.4 — guarded family, measured vs ℓ·2^(2^n·(2^(2^m)−1))", rows)
    assert all(row.measured["meets_bound"] for row in rows)
    database, tgds = guarded_lower_bound(1, 1, 1)
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False),
        rounds=1,
        iterations=1,
    )
