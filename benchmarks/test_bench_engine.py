"""E17 — engine speed: interned fact store vs compiled plans vs legacy.

The store engine (PR: "Interned fact-store core") must produce results
byte-identical to both the term-level compiled pipeline and the legacy
rescan while being measurably faster on the lower-bound families.
``python -m repro bench-engine`` regenerates the full
BENCH_engine.json report; this benchmark keeps a small always-on smoke
version of it in the suite.
"""

import pytest

from repro.bench.drivers import engine_benchmark_rows
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.families import guarded_lower_bound, sl_lower_bound


@pytest.mark.benchmark(group="E17-engine-speed")
def test_engine_speed_report(benchmark, report):
    workloads = [
        ("sl(n=2,m=2,ell=2)", *sl_lower_bound(2, 2, 2)),
        ("guarded(n=1,m=1,ell=1)", *guarded_lower_bound(1, 1, 1)),
    ]
    rows = engine_benchmark_rows(
        workloads=workloads,
        variants=("semi_oblivious",),
        budget=ChaseBudget(max_atoms=100_000),
        repeats=1,
    )
    report("E17: fact-store engine vs plans vs legacy (semi-oblivious)", rows)
    # Equivalence is a hard requirement; speed is reported, not asserted,
    # to keep the suite robust on loaded CI machines.
    assert all(row.measured["equivalent"] for row in rows)
    database, tgds = sl_lower_bound(2, 2, 2)
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )
