"""E18 — columnar engine: layouts, snapshots, incremental re-chase.

The columnar (arrays) store layout must produce results equivalent to
the PR 4 sets layout, the term-level compiled pipeline and the legacy
rescan while being measurably faster; snapshots must round-trip
losslessly; and ``resume_from`` re-chase of a database delta must equal
the cold run.  ``python -m repro bench-engine`` regenerates the full
BENCH_engine.json report; this benchmark keeps a small always-on smoke
version of it in the suite.
"""

import pytest

from repro.bench.drivers import (
    engine_benchmark_rows,
    incremental_rechase_row,
    snapshot_roundtrip_row,
)
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.families import guarded_lower_bound, sl_lower_bound


@pytest.mark.benchmark(group="E18-columnar-engine")
def test_engine_speed_report(benchmark, report):
    workloads = [
        ("sl(n=2,m=2,ell=2)", *sl_lower_bound(2, 2, 2)),
        ("guarded(n=1,m=1,ell=1)", *guarded_lower_bound(1, 1, 1)),
    ]
    rows = engine_benchmark_rows(
        workloads=workloads,
        variants=("semi_oblivious",),
        budget=ChaseBudget(max_atoms=100_000),
        repeats=1,
        layout="both",
    )
    report("E18: columnar layout vs sets layout vs plans vs legacy", rows)
    # Equivalence is a hard requirement; speed is reported, not asserted,
    # to keep the suite robust on loaded CI machines.
    assert all(row.measured["equivalent"] for row in rows)
    assert all("layout_speedup" in row.measured for row in rows)
    # Profiled repeats ride along every row; the strict 1.10x overhead
    # gate lives in 'bench-engine --quick' where repeats amortise noise
    # — here we only guard against a per-trigger-clock-read regression,
    # which shows up as a multiple, not a percentage.
    assert all(row.measured["profile_overhead"] < 2.0 for row in rows)
    database, tgds = sl_lower_bound(2, 2, 2)
    benchmark.pedantic(
        lambda: semi_oblivious_chase(database, tgds, record_derivation=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E18-columnar-engine")
def test_snapshot_roundtrip_report(benchmark, report):
    row = snapshot_roundtrip_row(
        workload=("sl(n=2,m=2,ell=2)", *sl_lower_bound(2, 2, 2)),
        budget=ChaseBudget(max_atoms=100_000),
        repeats=1,
    )
    report("E18: snapshot encode/decode round trip", [row])
    assert row.measured["equivalent"]
    assert row.measured["snapshot_bytes"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E18-columnar-engine")
def test_incremental_rechase_report(benchmark, report):
    row = incremental_rechase_row(
        chain_length=20, payloads=40, delta_payloads=3, repeats=1
    )
    report("E18: incremental (resume_from) vs cold re-chase", [row])
    # Correctness always; the ≥3x speed gate lives in the full report,
    # not the smoke (CI machines are too noisy at this size).
    assert row.measured["equivalent"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
