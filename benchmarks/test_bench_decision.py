"""E7-E9, E13 — the ChTrm decision procedures (Theorems 6.6, 7.7, 8.5).

The complexity results cannot be measured as complexity classes; what
can be measured — and is the operational content of the theorems — is
how the *syntactic* procedures scale compared to the naive
materialise-and-count procedure, and how the UCQ-based data-complexity
procedure splits its cost into a database-independent build phase and a
cheap per-database evaluation.
"""

import pytest

from repro.bench.drivers import decision_scaling_sweep, ucq_data_complexity_rows
from repro.core.decision import decide_termination, syntactic_decision
from repro.generators.families import linear_lower_bound, sl_lower_bound
from repro.generators.random_programs import random_database
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario

DB_SIZES = [1, 4, 16, 64]


def sl_family(size):
    return sl_lower_bound(2, 2, size)


def linear_family(size):
    return linear_lower_bound(1, 2, size)


def guarded_family(size):
    scenario = university_ontology_scenario(students=size, courses=4, professors=3)
    return scenario.database, scenario.tgds


@pytest.mark.benchmark(group="E7-sl-decision")
def test_sl_decider_scaling(benchmark, report):
    rows = decision_scaling_sweep(sl_family, DB_SIZES)
    report("E7: Theorem 6.6 — syntactic vs naive decision, SL family", rows)
    assert all(row.measured["syntactic_answer"] is True for row in rows)
    # On non-trivial databases the syntactic decider must not be
    # dramatically slower than materialisation (it is database-size
    # independent apart from reading the predicates).
    large_rows = [row for row in rows if row.parameters["|D|"] >= 16]
    assert all(
        row.measured["syntactic_seconds"] <= row.measured["naive_seconds"] * 10
        for row in large_rows
    )
    database, tgds = sl_family(DB_SIZES[-1])
    benchmark(lambda: syntactic_decision(database, tgds))


@pytest.mark.benchmark(group="E8-linear-decision")
def test_linear_decider_scaling(benchmark, report):
    rows = decision_scaling_sweep(linear_family, DB_SIZES)
    report("E8: Theorem 7.7 — syntactic vs naive decision, linear family", rows)
    assert all(row.measured["syntactic_answer"] is True for row in rows)
    database, tgds = linear_family(DB_SIZES[-1])
    benchmark(lambda: syntactic_decision(database, tgds))


@pytest.mark.benchmark(group="E9-guarded-decision")
def test_guarded_decider_scaling(benchmark, report):
    rows = decision_scaling_sweep(guarded_family, [5, 10, 20, 40])
    report("E9: Theorem 8.5 — syntactic (linearization) vs naive decision, guarded OBDA", rows)
    assert all(row.measured["syntactic_answer"] is True for row in rows)
    database, tgds = guarded_family(20)
    benchmark.pedantic(lambda: syntactic_decision(database, tgds), rounds=3, iterations=1)


@pytest.mark.benchmark(group="E13-ucq-data-complexity")
def test_ucq_data_complexity(benchmark, report):
    # Fixed Σ (the non-terminating variant of the exchange mapping),
    # growing D: the UCQ is built once and evaluated per database.
    scenario = data_exchange_scenario(employees=5, departments=2, weakly_acyclic=False)
    tgds = scenario.tgds
    databases = []
    for size in [10, 100, 1_000, 5_000]:
        databases.append(
            (size, random_database(tgds, seed=size, fact_count=size, constant_count=size // 2 + 1))
        )
    rows = ucq_data_complexity_rows(tgds, databases)
    report("E13: Theorems 6.6/7.7 — UCQ build (Σ-only) vs evaluation (D-only) cost", rows)
    evaluation_times = [row.measured["evaluate_seconds"] for row in rows]
    assert max(evaluation_times) < 1.0, "per-database evaluation must stay cheap"
    from repro.core.ucq import build_termination_ucq

    ucq = build_termination_ucq(tgds)
    largest = databases[-1][1]
    benchmark(lambda: ucq.witnessed_by(largest))
