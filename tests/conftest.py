"""Shared fixtures: small programs and databases used across the suite."""

from __future__ import annotations

import pytest

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (full experiment sweeps, benchmark smoke runs)"
    )


@pytest.fixture
def r_predicate() -> Predicate:
    return Predicate("R", 2)


@pytest.fixture
def simple_database(r_predicate: Predicate) -> Database:
    """``{R(a, b)}``."""
    return Database([Atom(r_predicate, (Constant("a"), Constant("b")))])


@pytest.fixture
def nonterminating_program(r_predicate: Predicate) -> TGDSet:
    """``R(x, y) → ∃z R(y, z)``: infinite chase on any non-empty R."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return TGDSet(
        [TGD((Atom(r_predicate, (x, y)),), (Atom(r_predicate, (y, z)),), rule_id="loop")],
        name="loop",
    )


@pytest.fixture
def terminating_program(r_predicate: Predicate) -> TGDSet:
    """``R(x, y) → ∃z S(y, z)``: one step and done."""
    s_predicate = Predicate("S", 2)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return TGDSet(
        [TGD((Atom(r_predicate, (x, y)),), (Atom(s_predicate, (y, z)),), rule_id="step")],
        name="step",
    )


@pytest.fixture
def guarded_program() -> TGDSet:
    """``R(x, y), P(x) → ∃z R(y, z), P(y)``: termination depends on the database."""
    r = Predicate("R", 2)
    p = Predicate("P", 1)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return TGDSet(
        [
            TGD(
                (Atom(r, (x, y)), Atom(p, (x,))),
                (Atom(r, (y, z)), Atom(p, (y,))),
                rule_id="guarded_loop",
            )
        ],
        name="guarded_loop",
    )


@pytest.fixture
def guarded_supported_database() -> Database:
    """``{R(a, b), P(a)}``: the guarded loop fires forever."""
    r = Predicate("R", 2)
    p = Predicate("P", 1)
    a, b = Constant("a"), Constant("b")
    return Database([Atom(r, (a, b)), Atom(p, (a,))])


@pytest.fixture
def guarded_unsupported_database() -> Database:
    """``{R(a, b)}``: the guarded loop never fires."""
    r = Predicate("R", 2)
    a, b = Constant("a"), Constant("b")
    return Database([Atom(r, (a, b))])
