"""Tests for the guarded chase forest (Section 5)."""

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet
from repro.chase.forest import build_guarded_forest, guarded_forest
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import per_tree_depth_slice_bound
from repro.generators.families import prop45_family

R = Predicate("R", 2)
S = Predicate("S", 2)
P = Predicate("P", 1)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B = Constant("a"), Constant("b")


def linear_chain_program():
    """``R(x, y) → ∃z S(y, z)`` and ``S(x, y) → P(y)``."""
    return TGDSet(
        [
            TGD((Atom(R, (X, Y)),), (Atom(S, (Y, Z)),), rule_id="f1"),
            TGD((Atom(S, (X, Y)),), (Atom(P, (Y,)),), rule_id="f2"),
        ],
        name="chain",
    )


class TestForestStructure:
    def test_roots_are_database_atoms(self):
        database = Database([Atom(R, (A, B))])
        forest, result = guarded_forest(database, linear_chain_program())
        assert result.terminated
        assert forest.roots == (Atom(R, (A, B)),)

    def test_every_derived_atom_has_a_parent(self):
        database = Database([Atom(R, (A, B))])
        forest, result = guarded_forest(database, linear_chain_program())
        derived = set(result.instance) - set(database)
        assert derived
        assert all(a in forest.parent for a in derived)

    def test_tree_covers_whole_chase_for_guarded_sets(self):
        database = Database([Atom(R, (A, B))])
        forest, result = guarded_forest(database, linear_chain_program())
        assert forest.all_atoms() == set(result.instance)

    def test_tree_sizes(self):
        database = Database([Atom(R, (A, B)), Atom(R, (B, A))])
        forest, result = guarded_forest(database, linear_chain_program())
        sizes = forest.tree_sizes()
        assert set(sizes) == set(database)
        assert all(size >= 1 for size in sizes.values())

    def test_depth_slices(self):
        database = Database([Atom(R, (A, B))])
        forest, _ = guarded_forest(database, linear_chain_program())
        root = Atom(R, (A, B))
        assert forest.tree_depth_slice(root, 0) == {root}
        assert all(a.depth() == 1 for a in forest.tree_depth_slice(root, 1))

    def test_depth_histogram(self):
        database = Database([Atom(R, (A, B))])
        forest, result = guarded_forest(database, linear_chain_program())
        histogram = forest.depth_histogram()
        assert sum(histogram.values()) == result.size

    def test_unguarded_rules_leave_orphans(self):
        database, tgds = prop45_family(3)
        result = semi_oblivious_chase(database, tgds)
        forest = build_guarded_forest(result, database)
        # The Prop. 4.5 rule is not guarded, so derived atoms have no
        # guard image and the forest does not cover the chase.
        assert forest.all_atoms() != set(result.instance)


class TestLemma51:
    def test_depth_slice_sizes_respect_lemma_bound(self):
        database = Database([Atom(R, (A, B)), Atom(R, (B, A))])
        tgds = linear_chain_program()
        forest, result = guarded_forest(database, tgds)
        assert result.terminated
        for root in forest.roots:
            tree = forest.tree(root)
            max_depth = max((a.depth() for a in tree), default=0)
            for depth in range(max_depth + 1):
                slice_size = len(forest.tree_depth_slice(root, depth))
                assert slice_size <= per_tree_depth_slice_bound(tgds, depth)
