"""Tests for term/atom depth and ``maxdepth(D, Σ)`` (Definition 4.3, Prop. 4.5)."""

import pytest

from repro.model.instance import Database
from repro.chase.depth import instance_max_depth, max_depth
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.families import intro_nonterminating_example, prop45_family


class TestMaxDepth:
    def test_database_alone_has_depth_zero(self, simple_database, terminating_program):
        assert instance_max_depth(simple_database) == 0
        assert max_depth(simple_database, terminating_program) == 1

    def test_infinite_chase_reports_none(self):
        database, tgds = intro_nonterminating_example()
        assert max_depth(database, tgds, budget=ChaseBudget(max_atoms=100)) is None

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_prop45_depth_equals_database_size_minus_one(self, n):
        """Proposition 4.5: ``maxdepth(D_n, Σ) = n − 1``."""
        database, tgds = prop45_family(n)
        assert len(database) == n
        assert max_depth(database, tgds) == n - 1

    def test_prop45_chase_is_finite_despite_unbounded_depth(self):
        database, tgds = prop45_family(6)
        result = semi_oblivious_chase(database, tgds)
        assert result.terminated
        assert result.max_depth == 5

    def test_prop45_rejects_trivial_sizes(self):
        with pytest.raises(ValueError):
            prop45_family(1)
