"""Store-backed engines vs the ``compiled=False`` reference baseline.

The randomized-program equivalence suite of the interned-fact-store
PR: across all three chase variants, the store engine must reproduce
the legacy engine's results — instances atom for atom where the
variant's result is order-independent, canonical fingerprints, trigger
counts, derivation step sets, and budget outcomes.  The restricted
chase legitimately numbers its fire marks in application order, so its
instances are compared through the fire-invariant key on the paper
families and exactly on existential-free programs (whose restricted
result is the unique full closure).
"""

import json
import random
import subprocess
import sys

import pytest

from repro.chase.engine import BaseChaseEngine, ChaseBudget
from repro.chase.oblivious import oblivious_chase
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import SemiObliviousChase, semi_oblivious_chase
from repro.generators.families import (
    example_7_1,
    fairness_example,
    guarded_lower_bound,
    intro_nonterminating_example,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)
from repro.generators.workloads import restricted_heavy
from repro.model.serialization import (
    canonical_instance_text,
    fire_invariant_instance_key,
)
from repro.model.tgd import TGD, TGDSet

BUDGET = ChaseBudget(max_atoms=20_000, max_rounds=200)

FAMILIES = [
    ("prop45", prop45_family(6)),
    ("example71", example_7_1()),
    ("fairness", fairness_example()),
    ("sl", sl_lower_bound(2, 2, 2)),
    ("linear", linear_lower_bound(1, 2, 1)),
    ("guarded", guarded_lower_bound(1, 1, 1)),
    ("restricted-heavy", restricted_heavy(12, 4)),
]

VARIANTS = [semi_oblivious_chase, oblivious_chase, restricted_chase]
VARIANT_IDS = ["semi", "oblivious", "restricted"]

#: Families whose restricted-chase result does not depend on the order
#: triggers are applied within a round (restricted_heavy is built that
#: way — see its docstring).  Cross-engine restricted comparisons are
#: exact only on these; elsewhere the legacy engine's hash-order
#: enumeration makes the comparison seed-dependent (a latent flake
#: this suite used to carry).
RESTRICTED_ORDER_INVARIANT = {"restricted-heavy"}


def random_full_program(seed: int, rule_count: int = 4) -> TGDSet:
    """A random guarded program with every existential replaced by a
    body variable — full TGDs, whose restricted chase has a unique,
    order-independent fixpoint."""
    base = random_guarded_program(seed, rule_count=rule_count)
    rng = random.Random(seed)
    rules = []
    for index, tgd in enumerate(base):
        body_variables = sorted(tgd.body_variables(), key=lambda v: v.name)
        mapping = {z: rng.choice(body_variables) for z in tgd.existential_variables()}
        rules.append(
            TGD(
                body=tgd.body,
                head=tuple(a.substitute(mapping) for a in tgd.head),
                rule_id=f"full_{seed}_{index}",
            )
        )
    return TGDSet(rules, name=f"random_full(seed={seed})")


def derivation_atoms(result):
    """The multiset of atoms the recorded derivation produced.

    Which of two triggers with the same result gets recorded as the
    producer is order-dependent, so cross-engine comparison is over the
    *produced atoms*: each atom is added exactly once, making this
    stable.  Nulls are process-interned by structure, so equal nulls
    print identically across engines.
    """
    return sorted(str(a) for step in result.derivation for a in step.new_atoms)


def assert_derivation_faithful(result, database):
    """Every recorded step produced real atoms, and together they
    account exactly for everything derived beyond the database."""
    produced = [a for step in result.derivation for a in step.new_atoms]
    assert len(produced) == len(set(produced))  # each atom added once
    assert set(produced) == set(result.instance.atoms()) - set(database)
    assert all(step.new_atoms for step in result.derivation)
    assert len(result.derivation) <= result.statistics.triggers_applied


@pytest.mark.parametrize("name,workload", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("runner", VARIANTS, ids=VARIANT_IDS)
def test_store_matches_legacy_on_families(name, workload, runner):
    database, tgds = workload
    store = runner(database, tgds, budget=BUDGET, engine="store")
    legacy = runner(database, tgds, budget=BUDGET, engine="legacy")
    assert store.terminated == legacy.terminated
    assert store.outcome == legacy.outcome
    assert_derivation_faithful(store, database)
    if not store.terminated:
        # A budget-stopped run is whatever prefix of the round fit,
        # which is order-dependent; only the stop reason is comparable.
        return
    if runner is restricted_chase:
        # The restricted chase is order-dependent in general, and the
        # legacy engine's trigger order shifts with string-hash
        # randomisation and process-global null-uid state — so exact
        # cross-engine comparison is only sound on families whose
        # restricted result is order-invariant by construction.
        if name not in RESTRICTED_ORDER_INVARIANT:
            return
        assert store.size == legacy.size
        assert store.statistics.triggers_applied == legacy.statistics.triggers_applied
        assert (
            store.statistics.triggers_considered
            == legacy.statistics.triggers_considered
        )
        # Same fired keys, same atoms up to the per-application fire
        # numbering in the null labels.
        assert fire_invariant_instance_key(store.instance) == (
            fire_invariant_instance_key(legacy.instance)
        )
    else:
        assert store.size == legacy.size
        assert store.statistics.triggers_applied == legacy.statistics.triggers_applied
        assert (
            store.statistics.triggers_considered
            == legacy.statistics.triggers_considered
        )
        assert store.instance == legacy.instance
        assert store.max_depth == legacy.max_depth
        assert derivation_atoms(store) == derivation_atoms(legacy)


@pytest.mark.parametrize("name,workload", FAMILIES[:5], ids=[n for n, _ in FAMILIES[:5]])
@pytest.mark.parametrize("runner", VARIANTS, ids=VARIANT_IDS)
def test_store_matches_plans_engine(name, workload, runner):
    database, tgds = workload
    if runner is restricted_chase and name not in RESTRICTED_ORDER_INVARIANT:
        pytest.skip("restricted comparison is only exact on order-invariant families")
    store = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store")
    plans = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="plans")
    assert store.size == plans.size
    assert store.statistics.triggers_applied == plans.statistics.triggers_applied
    assert store.statistics.triggers_considered == plans.statistics.triggers_considered
    if runner is not restricted_chase:
        assert store.instance == plans.instance


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "make_program",
    [random_simple_linear_program, random_linear_program, random_guarded_program],
    ids=["sl", "linear", "guarded"],
)
def test_store_matches_legacy_on_random_programs(seed, make_program):
    tgds = make_program(seed, rule_count=4)
    database = random_database(tgds, seed=seed + 500, fact_count=12, constant_count=3)
    for runner in (semi_oblivious_chase, oblivious_chase):
        store = runner(database, tgds, budget=BUDGET, engine="store")
        legacy = runner(database, tgds, budget=BUDGET, engine="legacy")
        assert store.terminated == legacy.terminated
        if not store.terminated:
            continue  # a budget-stopped prefix is order-dependent
        assert store.instance == legacy.instance
        assert store.max_depth == legacy.max_depth
        assert store.statistics.triggers_applied == legacy.statistics.triggers_applied
        assert derivation_atoms(store) == derivation_atoms(legacy)
        assert_derivation_faithful(store, database)


@pytest.mark.parametrize("seed", range(8))
def test_store_fingerprints_match_legacy_on_random_programs(seed):
    tgds = random_guarded_program(seed, rule_count=3)
    database = random_database(tgds, seed=seed + 900, fact_count=8, constant_count=3)
    store = semi_oblivious_chase(database, tgds, budget=BUDGET, engine="store")
    legacy = semi_oblivious_chase(database, tgds, budget=BUDGET, engine="legacy")
    if store.terminated and store.size <= 300:
        assert canonical_instance_text(store.instance) == canonical_instance_text(
            legacy.instance
        )


@pytest.mark.parametrize("seed", range(10))
def test_restricted_store_matches_legacy_on_full_programs(seed):
    # Existential-free programs: the restricted result is the unique
    # closure, so the engines must agree atom for atom — including
    # derivation step sets (no nulls, no fire numbering involved).
    tgds = random_full_program(seed)
    database = random_database(tgds, seed=seed + 700, fact_count=12, constant_count=3)
    store = restricted_chase(database, tgds, budget=BUDGET, engine="store")
    legacy = restricted_chase(database, tgds, budget=BUDGET, engine="legacy")
    assert store.terminated and legacy.terminated
    # The closure is unique; which of two same-round triggers derives a
    # shared atom first is not, so applied counts are not compared.
    assert store.instance == legacy.instance
    assert store.statistics.triggers_considered == legacy.statistics.triggers_considered
    assert derivation_atoms(store) == derivation_atoms(legacy)
    assert_derivation_faithful(store, database)


@pytest.mark.parametrize("seed", range(5))
def test_restricted_activeness_matches_reference_search(seed):
    """The consolidated activeness implementation stays anchored to the
    executable specification: ``Trigger.is_active_restricted`` (shared
    by the legacy and plans engines via ``head_extension_exists``) must
    agree with a direct reference-enumerator head search on every
    trigger of a randomized instance."""
    from repro.chase.trigger import Trigger
    from repro.model.homomorphism import find_homomorphisms_reference

    tgds = random_guarded_program(seed, rule_count=3)
    database = random_database(tgds, seed=seed + 300, fact_count=10, constant_count=3)
    instance = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="legacy"
    ).instance
    checked = 0
    for tgd in tgds:
        for substitution in find_homomorphisms_reference(tgd.body, instance):
            trigger = Trigger.from_substitution(tgd, substitution)
            frontier_seed = {v: substitution[v] for v in tgd.frontier()}
            reference_active = (
                next(
                    find_homomorphisms_reference(tgd.head, instance, seed=frontier_seed),
                    None,
                )
                is None
            )
            assert trigger.is_active_restricted(instance) == reference_active
            checked += 1
    assert checked  # the random programs always admit some trigger


class TestBudgetEquivalence:
    def test_atom_budget_stops_identically(self):
        database, tgds = intro_nonterminating_example()
        budget = ChaseBudget(max_atoms=25)
        store = semi_oblivious_chase(database, tgds, budget=budget, engine="store")
        legacy = semi_oblivious_chase(database, tgds, budget=budget, engine="legacy")
        assert store.outcome == legacy.outcome
        assert not store.terminated
        assert store.size == legacy.size
        assert store.instance == legacy.instance

    def test_depth_budget_stops_identically(self):
        database, tgds = intro_nonterminating_example()
        budget = ChaseBudget(max_depth=5)
        store = semi_oblivious_chase(database, tgds, budget=budget, engine="store")
        legacy = semi_oblivious_chase(database, tgds, budget=budget, engine="legacy")
        assert store.outcome == legacy.outcome
        assert store.instance == legacy.instance
        assert store.max_depth == legacy.max_depth

    def test_depth_truncation_matches(self):
        database, tgds = intro_nonterminating_example()
        budget = ChaseBudget(max_depth=4, truncate_at_depth=True, max_rounds=50)
        store = semi_oblivious_chase(database, tgds, budget=budget, engine="store")
        legacy = semi_oblivious_chase(database, tgds, budget=budget, engine="legacy")
        assert store.depth_truncated and legacy.depth_truncated
        assert store.instance == legacy.instance
        assert store.max_depth == legacy.max_depth == 4

    def test_round_budget_stops_identically(self):
        database, tgds = intro_nonterminating_example()
        budget = ChaseBudget(max_rounds=7)
        store = semi_oblivious_chase(database, tgds, budget=budget, engine="store")
        legacy = semi_oblivious_chase(database, tgds, budget=budget, engine="legacy")
        assert store.outcome == legacy.outcome
        assert store.instance == legacy.instance


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        _, tgds = intro_nonterminating_example()
        with pytest.raises(ValueError):
            SemiObliviousChase(tgds, engine="turbo")

    def test_compiled_false_means_legacy(self):
        _, tgds = intro_nonterminating_example()
        assert SemiObliviousChase(tgds, compiled=False).engine == "legacy"
        assert SemiObliviousChase(tgds).engine == "store"

    def test_custom_subclass_falls_back_to_plans(self):
        # A subclass that never implemented the id-space hooks must
        # still run under the default engine selection.
        class Custom(SemiObliviousChase):
            supports_store_engine = False

        database, tgds = prop45_family(4)
        result = Custom(tgds).run(database)
        reference = semi_oblivious_chase(database, tgds, engine="legacy")
        assert result.instance == reference.instance

    def test_base_store_evaluate_raises(self):
        _, tgds = intro_nonterminating_example()
        engine = BaseChaseEngine(tgds)
        with pytest.raises(NotImplementedError):
            engine.store_evaluate(None, None, (), ())


class TestLazyMaterialisation:
    def test_summary_needs_no_instance(self):
        database, tgds = prop45_family(5)
        result = semi_oblivious_chase(database, tgds, record_derivation=False)
        assert result._materialized is None  # store engine: not decoded yet
        summary = result.summary()
        assert result._materialized is None  # summary() alone never decodes
        assert summary["size"] == result.size
        instance = result.instance  # first access decodes...
        assert result._materialized is instance
        assert result._store is None  # ...and drops the store
        assert len(instance) == summary["size"]

    def test_size_agrees_before_and_after_decode(self):
        database, tgds = sl_lower_bound(2, 2, 1)
        result = semi_oblivious_chase(database, tgds, record_derivation=False)
        before = result.size
        assert len(result.instance) == before == result.size


def test_store_derivation_order_is_hash_seed_independent():
    """The store engine's data plane is keyed by ints, so its trigger
    order — and with it the recorded derivation — does not depend on
    string-hash randomisation, unlike ``Set[Atom]`` iteration."""
    script = (
        "from repro.generators.families import prop45_family\n"
        "from repro.chase.semi_oblivious import semi_oblivious_chase\n"
        "import json\n"
        "db, tgds = prop45_family(6)\n"
        "r = semi_oblivious_chase(db, tgds, engine='store')\n"
        "keys = [[s.trigger.tgd.rule_id, [[n, str(t)] for n, t in s.trigger.homomorphism]]\n"
        "        for s in r.derivation]\n"
        "print(json.dumps(keys))\n"
    )

    import os

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

    def run(seed: str) -> str:
        return subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": src_dir, "PYTHONHASHSEED": seed},
        ).stdout

    assert json.loads(run("1")) == json.loads(run("2"))


# ---------------------------------------------------------------------------
# Storage layouts: the columnar (arrays) layout vs the sets fallback
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,workload", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("runner", VARIANTS, ids=VARIANT_IDS)
def test_arrays_layout_matches_sets_layout(name, workload, runner, monkeypatch):
    """REPRO_STORE_LAYOUT=sets must reproduce the columnar results.

    Summary mode (record_derivation=False) routes the arrays layout
    through the columnar driver loop and the sets layout through the
    general loop, so this also pins the two drivers to each other.
    """
    if runner is restricted_chase and name not in RESTRICTED_ORDER_INVARIANT:
        pytest.skip("restricted comparison is only exact on order-invariant families")
    database, tgds = workload
    monkeypatch.setenv("REPRO_STORE_LAYOUT", "arrays")
    arrays = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store")
    monkeypatch.setenv("REPRO_STORE_LAYOUT", "sets")
    sets = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store")
    assert arrays.terminated == sets.terminated
    assert arrays.outcome == sets.outcome
    if not arrays.terminated:
        return
    assert arrays.size == sets.size
    assert arrays.max_depth == sets.max_depth
    assert arrays.statistics.triggers_applied == sets.statistics.triggers_applied
    assert arrays.statistics.triggers_considered == sets.statistics.triggers_considered
    if runner is restricted_chase:
        assert fire_invariant_instance_key(arrays.instance) == (
            fire_invariant_instance_key(sets.instance)
        )
    else:
        assert arrays.instance == sets.instance


@pytest.mark.parametrize("runner", VARIANTS, ids=VARIANT_IDS)
def test_columnar_driver_matches_recording_driver(runner):
    """The lean columnar loop and the general (derivation-recording)
    loop must agree on everything a summary reports."""
    database, tgds = restricted_heavy(12, 4)
    lean = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store")
    general = runner(database, tgds, budget=BUDGET, record_derivation=True, engine="store")
    assert lean.summary() == general.summary()
    assert fire_invariant_instance_key(lean.instance) == (
        fire_invariant_instance_key(general.instance)
    )


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "make_program",
    [random_simple_linear_program, random_linear_program, random_guarded_program],
    ids=["sl", "linear", "guarded"],
)
def test_layouts_agree_on_random_programs(seed, make_program, monkeypatch):
    tgds = make_program(seed, rule_count=4)
    database = random_database(tgds, seed=seed + 250, fact_count=10, constant_count=3)
    for runner in (semi_oblivious_chase, oblivious_chase):
        monkeypatch.setenv("REPRO_STORE_LAYOUT", "arrays")
        arrays = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store")
        monkeypatch.setenv("REPRO_STORE_LAYOUT", "sets")
        sets = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store")
        assert arrays.terminated == sets.terminated
        if arrays.terminated:
            assert arrays.instance == sets.instance
            assert arrays.summary() == sets.summary()


# ---------------------------------------------------------------------------
# Incremental re-chase: chase(D ∪ Δ) vs resume_from(chase(D)) + Δ
# ---------------------------------------------------------------------------


def _prefix_split(database, fraction: float = 0.75):
    from repro.model.instance import Database
    from repro.model.serialization import atom_to_text

    facts = sorted(database, key=atom_to_text)
    keep = max(1, int(len(facts) * fraction))
    return Database(facts[:keep])


def _resume_pair(runner, database, tgds, **kwargs):
    """(cold result, resumed result) for a prefix + delta split."""
    prefix = _prefix_split(database)
    base = runner(prefix, tgds, budget=BUDGET, record_derivation=False, engine="store",
                  **kwargs)
    if not base.terminated:
        return None, None
    snapshot = base.store_snapshot()
    assert snapshot is not None
    resumed = runner(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store",
        resume_from=snapshot, **kwargs,
    )
    cold = runner(database, tgds, budget=BUDGET, record_derivation=False, engine="store",
                  **kwargs)
    return cold, resumed


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "make_program",
    [random_simple_linear_program, random_linear_program, random_guarded_program],
    ids=["sl", "linear", "guarded"],
)
@pytest.mark.parametrize(
    "runner", [semi_oblivious_chase, oblivious_chase], ids=["semi", "oblivious"]
)
def test_resume_matches_cold_chase_on_random_programs(seed, make_program, runner):
    """Unique-result variants: prefix + snapshot + delta == cold run,
    atom for atom (equal nulls included) and fingerprint for
    fingerprint."""
    tgds = make_program(seed, rule_count=4)
    database = random_database(tgds, seed=seed + 640, fact_count=12, constant_count=3)
    cold, resumed = _resume_pair(runner, database, tgds)
    if cold is None or not cold.terminated:
        return  # budget-stopped runs are order-dependent prefixes
    assert resumed.terminated
    assert resumed.size == cold.size
    assert resumed.max_depth == cold.max_depth
    assert resumed.database_size == cold.database_size
    assert resumed.instance == cold.instance
    assert fire_invariant_instance_key(resumed.instance) == (
        fire_invariant_instance_key(cold.instance)
    )


@pytest.mark.parametrize("seed", range(8))
def test_restricted_resume_matches_cold_on_full_programs(seed):
    """Existential-free programs: the restricted result is the unique
    closure, so resume and cold runs agree exactly."""
    tgds = random_full_program(seed)
    database = random_database(tgds, seed=seed + 820, fact_count=12, constant_count=3)
    cold, resumed = _resume_pair(restricted_chase, database, tgds)
    if cold is None or not cold.terminated:
        return
    assert resumed.instance == cold.instance


@pytest.mark.parametrize("chain_length,payloads", [(12, 4), (20, 10), (8, 8)])
@pytest.mark.parametrize("runner", VARIANTS, ids=VARIANT_IDS)
def test_resume_matches_cold_on_restricted_heavy(chain_length, payloads, runner):
    """All three variants on the order-invariant family: chasing the
    full database equals chasing a payload prefix, snapshotting, and
    resuming with the delta (fire numbering aside)."""
    from repro.model.instance import Database

    if runner is oblivious_chase and chain_length > 12:
        pytest.skip("oblivious blowup on long chains")
    database, tgds = restricted_heavy(chain_length, payloads)
    budget = ChaseBudget(max_atoms=300_000, max_rounds=1_000)
    delta_tags = {f"t{payloads}", f"t{payloads - 1}"}
    prefix = Database(
        [
            a
            for a in database
            if not (a.predicate.name == "P" and a.args[1].name in delta_tags)
        ]
    )
    base = runner(prefix, tgds, budget=budget, record_derivation=False, engine="store")
    assert base.terminated
    resumed = runner(
        database, tgds, budget=budget, record_derivation=False, engine="store",
        resume_from=base.store_snapshot(),
    )
    cold = runner(database, tgds, budget=budget, record_derivation=False, engine="store")
    assert resumed.terminated and cold.terminated
    assert resumed.size == cold.size
    assert resumed.database_size == cold.database_size
    assert fire_invariant_instance_key(resumed.instance) == (
        fire_invariant_instance_key(cold.instance)
    )


def test_resume_requires_store_engine():
    database, tgds = restricted_heavy(8, 2)
    base = semi_oblivious_chase(database, tgds, record_derivation=False, engine="store")
    snapshot = base.store_snapshot()
    with pytest.raises(ValueError, match="resume_from requires the store engine"):
        semi_oblivious_chase(database, tgds, engine="plans", resume_from=snapshot)
    with pytest.raises(ValueError, match="resume_from requires the store engine"):
        semi_oblivious_chase(database, tgds, engine="legacy", resume_from=snapshot)


def test_resume_with_empty_delta_is_a_fast_noop():
    database, tgds = restricted_heavy(10, 3)
    base = semi_oblivious_chase(database, tgds, record_derivation=False, engine="store")
    resumed = semi_oblivious_chase(
        database, tgds, record_derivation=False, engine="store",
        resume_from=base.store_snapshot(),
    )
    assert resumed.terminated
    assert resumed.size == base.size
    assert resumed.statistics.rounds == 1  # one empty delta round
    assert resumed.instance == base.instance


def test_resume_accepts_a_live_fact_store():
    from repro.model.store import FactStore

    database, tgds = restricted_heavy(10, 4)
    prefix = _prefix_split(database)
    base = semi_oblivious_chase(prefix, tgds, record_derivation=False, engine="store")
    store = FactStore.restore(base.store_snapshot())
    resumed = semi_oblivious_chase(
        database, tgds, record_derivation=False, engine="store", resume_from=store,
    )
    cold = semi_oblivious_chase(database, tgds, record_derivation=False, engine="store")
    assert resumed.instance == cold.instance


def test_database_may_be_a_fact_store():
    from repro.model.store import FactStore
    from repro.runtime.jobs import encode_database_snapshot

    database, tgds = restricted_heavy(10, 4)
    seeded = semi_oblivious_chase(
        FactStore.restore(encode_database_snapshot(database)),
        tgds,
        record_derivation=False,
        engine="store",
    )
    plain = semi_oblivious_chase(database, tgds, record_derivation=False, engine="store")
    assert seeded.database_size == len(database)
    assert seeded.instance == plain.instance
    assert seeded.summary() == plain.summary()
