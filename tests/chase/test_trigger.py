"""Unit tests for triggers and trigger application (Definition 3.1)."""

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Instance
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD
from repro.chase.trigger import Trigger

R = Predicate("R", 2)
S = Predicate("S", 2)
P = Predicate("P", 1)
A, B = Constant("a"), Constant("b")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")

RULE = TGD((Atom(R, (X, Y)),), (Atom(S, (Y, Z)),), rule_id="t")


def make_trigger(tgd, substitution):
    return Trigger.from_substitution(tgd, substitution)


class TestTriggerIdentity:
    def test_frontier_binding_restricts_to_frontier(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        assert trigger.frontier_binding() == {"y": B}

    def test_frontier_key_ignores_non_frontier_variables(self):
        first = make_trigger(RULE, {X: A, Y: B})
        second = make_trigger(RULE, {X: B, Y: B})
        assert first.frontier_key() == second.frontier_key()
        assert first.full_key() != second.full_key()

    def test_substitution_round_trip(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        assert trigger.substitution() == {X: A, Y: B}


class TestTriggerResult:
    def test_result_instantiates_frontier_and_nulls(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        [result] = trigger.result()
        assert result.predicate == S
        assert result.args[0] == B
        assert result.args[1].is_null

    def test_equal_frontier_bindings_produce_equal_nulls(self):
        first = make_trigger(RULE, {X: A, Y: B}).result()
        second = make_trigger(RULE, {X: B, Y: B}).result()
        assert first == second

    def test_null_label_override_changes_identity(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        default = trigger.result()
        oblivious = trigger.result(null_binding={"x": A, "y": B})
        assert default != oblivious

    def test_full_tgd_produces_no_nulls(self):
        rule = TGD((Atom(R, (X, Y)),), (Atom(S, (Y, X)),), rule_id="full")
        [result] = make_trigger(rule, {X: A, Y: B}).result()
        assert result == Atom(S, (B, A))


class TestActiveness:
    def test_semi_oblivious_active_when_result_missing(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        assert trigger.is_active_semi_oblivious(Instance([Atom(R, (A, B))]))

    def test_semi_oblivious_inactive_when_result_present(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        instance = Instance([Atom(R, (A, B))] + trigger.result())
        assert not trigger.is_active_semi_oblivious(instance)

    def test_restricted_inactive_when_head_satisfiable(self):
        # The head S(y, z) is satisfiable with z -> a, so the restricted
        # chase does not fire even though the semi-oblivious one does.
        trigger = make_trigger(RULE, {X: A, Y: B})
        instance = Instance([Atom(R, (A, B)), Atom(S, (B, A))])
        assert not trigger.is_active_restricted(instance)
        assert trigger.is_active_semi_oblivious(instance)

    def test_restricted_active_when_head_unsatisfiable(self):
        trigger = make_trigger(RULE, {X: A, Y: B})
        assert trigger.is_active_restricted(Instance([Atom(R, (A, B))]))


class TestGuardImage:
    def test_guard_image_of_guarded_rule(self):
        rule = TGD((Atom(R, (X, Y)), Atom(P, (X,))), (Atom(S, (Y, Z)),), rule_id="g")
        trigger = make_trigger(rule, {X: A, Y: B})
        assert trigger.guard_image() == Atom(R, (A, B))

    def test_guard_image_of_unguarded_rule_is_none(self):
        rule = TGD((Atom(R, (X, Y)), Atom(R, (Y, Z))), (Atom(P, (X,)),), rule_id="u")
        trigger = make_trigger(rule, {X: A, Y: B, Z: A})
        assert trigger.guard_image() is None
