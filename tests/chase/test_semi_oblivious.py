"""Tests for the semi-oblivious chase engine."""

import pytest

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import extend_homomorphism, find_homomorphisms
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet
from repro.chase.engine import ChaseBudget, ChaseOutcome
from repro.chase.semi_oblivious import semi_oblivious_chase


def satisfies(instance, tgds) -> bool:
    """Check ``I ⊨ Σ`` directly from the definition."""
    for tgd in tgds:
        for body_match in find_homomorphisms(tgd.body, instance):
            frontier_binding = {v: body_match[v] for v in tgd.frontier()}
            if extend_homomorphism(tgd.head, instance, frontier_binding) is None:
                return False
    return True


class TestTermination:
    def test_terminating_program(self, simple_database, terminating_program):
        result = semi_oblivious_chase(simple_database, terminating_program)
        assert result.terminated
        assert result.outcome is ChaseOutcome.TERMINATED
        assert result.size == 2

    def test_nonterminating_program_hits_budget(self, simple_database, nonterminating_program):
        budget = ChaseBudget(max_atoms=100)
        result = semi_oblivious_chase(simple_database, nonterminating_program, budget=budget)
        assert not result.terminated
        assert result.outcome is ChaseOutcome.ATOM_BUDGET_EXCEEDED
        assert result.size > 100

    def test_depth_budget(self, simple_database, nonterminating_program):
        budget = ChaseBudget(max_depth=5)
        result = semi_oblivious_chase(simple_database, nonterminating_program, budget=budget)
        assert not result.terminated
        assert result.outcome is ChaseOutcome.DEPTH_BUDGET_EXCEEDED

    def test_depth_truncation_keeps_running(self, simple_database, nonterminating_program):
        budget = ChaseBudget(max_depth=5, truncate_at_depth=True)
        result = semi_oblivious_chase(simple_database, nonterminating_program, budget=budget)
        assert result.terminated
        assert result.depth_truncated
        assert result.max_depth <= 5

    def test_round_budget(self, simple_database, nonterminating_program):
        budget = ChaseBudget(max_rounds=3)
        result = semi_oblivious_chase(simple_database, nonterminating_program, budget=budget)
        assert not result.terminated
        assert result.outcome is ChaseOutcome.ROUND_BUDGET_EXCEEDED

    def test_empty_database_terminates_immediately(self, terminating_program):
        result = semi_oblivious_chase(Database(), terminating_program)
        assert result.terminated
        assert result.size == 0
        assert result.expansion_ratio() == 1.0


class TestResultProperties:
    def test_result_contains_database(self, simple_database, terminating_program):
        result = semi_oblivious_chase(simple_database, terminating_program)
        assert all(a in result.instance for a in simple_database)

    def test_result_satisfies_tgds(self, simple_database, terminating_program):
        result = semi_oblivious_chase(simple_database, terminating_program)
        assert satisfies(result.instance, terminating_program)

    def test_result_is_order_insensitive(self):
        """The semi-oblivious chase result is unique (Section 3)."""
        r = Predicate("R", 2)
        s = Predicate("S", 2)
        p = Predicate("P", 1)
        t = Predicate("T", 1)
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        tgds = TGDSet(
            [
                TGD((Atom(r, (x, y)),), (Atom(p, (y,)),), rule_id="one"),
                TGD((Atom(p, (x,)),), (Atom(s, (x, z)),), rule_id="two"),
                TGD((Atom(s, (x, y)),), (Atom(t, (y,)),), rule_id="three"),
                TGD((Atom(r, (x, y)),), (Atom(r, (y, x)),), rule_id="four"),
            ],
            name="diamond",
        )
        facts = [Atom(r, (a, b)), Atom(r, (b, c)), Atom(p, (a,))]
        forward = semi_oblivious_chase(Database(facts), tgds)
        backward = semi_oblivious_chase(Database(reversed(facts)), tgds)
        assert forward.terminated and backward.terminated
        assert forward.instance == backward.instance

    def test_statistics_are_populated(self, simple_database, terminating_program):
        result = semi_oblivious_chase(simple_database, terminating_program)
        assert result.statistics.triggers_applied == 1
        assert result.statistics.atoms_created == 1
        assert result.statistics.rounds >= 1
        assert result.statistics.wall_seconds >= 0.0

    def test_derivation_recording_can_be_disabled(self, simple_database, terminating_program):
        recorded = semi_oblivious_chase(simple_database, terminating_program)
        bare = semi_oblivious_chase(
            simple_database, terminating_program, record_derivation=False
        )
        assert recorded.derivation and not bare.derivation

    def test_expansion_ratio(self, simple_database, terminating_program):
        result = semi_oblivious_chase(simple_database, terminating_program)
        assert result.expansion_ratio() == pytest.approx(2.0)


class TestSemiObliviousSemantics:
    def test_same_frontier_fires_once(self):
        """Triggers agreeing on the frontier are identified (Definition 3.1)."""
        r = Predicate("R", 2)
        s = Predicate("S", 2)
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        # Frontier is {y}: R(a, b) and R(c, b) yield the same null.
        tgds = TGDSet([TGD((Atom(r, (x, y)),), (Atom(s, (y, z)),), rule_id="so")])
        database = Database([Atom(r, (a, b)), Atom(r, (c, b))])
        result = semi_oblivious_chase(database, tgds)
        assert result.terminated
        s_atoms = result.instance.atoms_with_predicate(s)
        assert len(s_atoms) == 1

    def test_guarded_database_dependent_termination(
        self, guarded_program, guarded_supported_database, guarded_unsupported_database
    ):
        finite = semi_oblivious_chase(guarded_unsupported_database, guarded_program)
        assert finite.terminated and finite.size == 1
        infinite = semi_oblivious_chase(
            guarded_supported_database, guarded_program, budget=ChaseBudget(max_atoms=200)
        )
        assert not infinite.terminated
