"""Compiled trigger pipeline vs legacy rescan engine.

The compiled engine (the default) must be observationally equivalent to
the legacy per-round rescan it replaced: same materialised instance for
the deterministic variants, same trigger-application counts for all
three, on the paper's families and on randomized programs.
"""

import pytest

from repro.chase.engine import ChaseBudget
from repro.chase.oblivious import oblivious_chase
from repro.chase.plan import CompiledRule, TriggerPipeline
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.chase.trigger import Trigger
from repro.model.instance import Instance
from repro.generators.families import (
    example_7_1,
    fairness_example,
    guarded_lower_bound,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)
from repro.generators.random_programs import random_database, random_guarded_program

BUDGET = ChaseBudget(max_atoms=20_000, max_rounds=200)

FAMILIES = [
    ("prop45", prop45_family(6)),
    ("example71", example_7_1()),
    ("fairness", fairness_example()),
    ("sl", sl_lower_bound(2, 2, 2)),
    ("linear", linear_lower_bound(1, 2, 1)),
    ("guarded", guarded_lower_bound(1, 1, 1)),
]

VARIANTS = [semi_oblivious_chase, oblivious_chase, restricted_chase]


@pytest.mark.parametrize("name,workload", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("runner", VARIANTS, ids=["semi", "oblivious", "restricted"])
def test_compiled_matches_legacy_on_families(name, workload, runner):
    database, tgds = workload
    compiled = runner(database, tgds, budget=BUDGET, record_derivation=False, compiled=True)
    legacy = runner(database, tgds, budget=BUDGET, record_derivation=False, compiled=False)
    assert compiled.terminated == legacy.terminated
    assert compiled.size == legacy.size
    assert compiled.statistics.triggers_applied == legacy.statistics.triggers_applied
    assert compiled.statistics.triggers_considered == legacy.statistics.triggers_considered
    if runner is not restricted_chase:
        # Oblivious/semi-oblivious results are order-independent, so the
        # instances must be identical atom for atom.
        assert compiled.instance == legacy.instance
        assert compiled.max_depth == legacy.max_depth


@pytest.mark.parametrize("seed", range(5))
def test_compiled_matches_legacy_on_random_guarded(seed):
    tgds = random_guarded_program(seed, rule_count=4)
    database = random_database(tgds, seed=seed + 500, fact_count=12, constant_count=3)
    for runner in (semi_oblivious_chase, oblivious_chase):
        compiled = runner(database, tgds, budget=BUDGET, record_derivation=False, compiled=True)
        legacy = runner(database, tgds, budget=BUDGET, record_derivation=False, compiled=False)
        assert compiled.instance == legacy.instance
        assert compiled.statistics.triggers_applied == legacy.statistics.triggers_applied


def test_derivation_recorded_with_compiled_engine():
    database, tgds = prop45_family(4)
    result = semi_oblivious_chase(database, tgds, record_derivation=True)
    assert result.terminated
    assert len(result.derivation) == result.statistics.triggers_applied
    for step in result.derivation:
        assert step.new_atoms
        assert step.trigger.tgd is result.derivation[0].trigger.tgd


class TestCompiledRule:
    def test_trigger_and_keys_match_trigger_api(self):
        database, tgds = prop45_family(3)
        instance = Instance(database)
        rule = CompiledRule(tgds[0])
        canonicals = list(rule.initial_canonicals(instance))
        assert canonicals
        for canonical in canonicals:
            trigger = rule.make_trigger(canonical)
            # Compact keys carry the same identity as the Trigger API keys.
            assert rule.frontier_key(canonical)[0] == trigger.frontier_key()[0]
            assert tuple(term for _, term in trigger.frontier_key()[1]) == rule.frontier_key(
                canonical
            )[1]
            assert tuple(term for _, term in trigger.full_key()[1]) == rule.full_key(canonical)[1]
            # Compiled result atoms equal the Trigger result (both labellings).
            assert rule.result_atoms(canonical) == trigger.result()
            full_binding = {name: term for name, term in trigger.homomorphism}
            assert rule.result_atoms(canonical, full_labels=True) == trigger.result(
                null_binding=full_binding
            )

    def test_delta_routing_covers_all_body_predicates(self):
        database, tgds = prop45_family(3)
        pipeline = TriggerPipeline(tgds)
        body_predicates = {a.predicate for t in tgds for a in t.body}
        assert set(pipeline.relevance) == body_predicates

    def test_delta_triggers_force_each_new_atom(self):
        database, tgds = prop45_family(4)
        instance = Instance(database)
        pipeline = TriggerPipeline(tgds)
        initial = {
            Trigger.from_substitution(rule.tgd, dict(zip(rule.sorted_variables, canonical)))
            for rule, canonical in pipeline.initial_triggers(instance)
        }
        # Handing the whole instance back as delta reproduces the
        # initial enumeration (every body atom can be the forced one).
        from_delta = {
            Trigger.from_substitution(rule.tgd, dict(zip(rule.sorted_variables, canonical)))
            for rule, canonical in pipeline.delta_triggers(instance, list(instance))
        }
        assert initial == from_delta
