"""Comparative tests of the three chase variants."""

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet
from repro.chase.engine import ChaseBudget
from repro.chase.oblivious import oblivious_chase
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase

R = Predicate("R", 2)
S = Predicate("S", 2)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B = Constant("a"), Constant("b")


class TestRestrictedVsSemiOblivious:
    def test_restricted_skips_satisfied_heads(self):
        # R(x, y) → ∃z S(x, z) with S(a, b) already present: the
        # restricted chase adds nothing, the semi-oblivious chase does.
        tgds = TGDSet([TGD((Atom(R, (X, Y)),), (Atom(S, (X, Z)),), rule_id="v1")])
        database = Database([Atom(R, (A, B)), Atom(S, (A, B))])
        restricted = restricted_chase(database, tgds)
        semi = semi_oblivious_chase(database, tgds)
        assert restricted.terminated and semi.terminated
        assert restricted.size == 2
        assert semi.size == 3

    def test_restricted_result_is_contained_in_semi_oblivious_size(self):
        tgds = TGDSet(
            [
                TGD((Atom(R, (X, Y)),), (Atom(S, (Y, Z)),), rule_id="v2a"),
                TGD((Atom(S, (X, Y)),), (Atom(R, (X, X)),), rule_id="v2b"),
            ]
        )
        database = Database([Atom(R, (A, B)), Atom(R, (B, A))])
        restricted = restricted_chase(database, tgds)
        semi = semi_oblivious_chase(database, tgds)
        assert restricted.terminated and semi.terminated
        assert restricted.size <= semi.size


class TestObliviousVsSemiOblivious:
    def test_oblivious_creates_more_nulls(self):
        # Frontier {y} identifies R(a, b) and R(b, b) triggers for the
        # semi-oblivious chase but not for the oblivious one.
        tgds = TGDSet([TGD((Atom(R, (X, Y)),), (Atom(S, (Y, Z)),), rule_id="v3")])
        database = Database([Atom(R, (A, B)), Atom(R, (B, B))])
        semi = semi_oblivious_chase(database, tgds)
        oblivious = oblivious_chase(database, tgds)
        assert semi.terminated and oblivious.terminated
        assert len(semi.instance.atoms_with_predicate(S)) == 1
        assert len(oblivious.instance.atoms_with_predicate(S)) == 2

    def test_oblivious_may_diverge_where_semi_oblivious_terminates(self):
        # R(x, y) → ∃z R(x, z): semi-oblivious terminates (frontier {x}),
        # the oblivious chase keeps inventing nulls from the new atoms.
        tgds = TGDSet([TGD((Atom(R, (X, Y)),), (Atom(R, (X, Z)),), rule_id="v4")])
        database = Database([Atom(R, (A, B))])
        semi = semi_oblivious_chase(database, tgds)
        assert semi.terminated and semi.size == 2
        oblivious = oblivious_chase(database, tgds, budget=ChaseBudget(max_atoms=50))
        assert not oblivious.terminated

    def test_all_variants_agree_on_full_tgds(self):
        # Without existentials the three chases compute the same closure.
        tgds = TGDSet([TGD((Atom(R, (X, Y)),), (Atom(R, (Y, X)),), rule_id="v5")])
        database = Database([Atom(R, (A, B))])
        results = [
            semi_oblivious_chase(database, tgds),
            oblivious_chase(database, tgds),
            restricted_chase(database, tgds),
        ]
        assert all(r.terminated for r in results)
        assert results[0].instance == results[1].instance == results[2].instance
