"""Tests for the paper's concrete constructions (Theorems 6.5, 7.6, 8.4)."""

import pytest

from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import (
    guarded_lower_bound_value,
    linear_lower_bound_value,
    sl_lower_bound_value,
)
from repro.core.decision import syntactic_decision
from repro.generators.families import (
    fairness_example,
    guarded_lower_bound,
    linear_lower_bound,
    sl_lower_bound,
)


def predicate_count(instance, name):
    return sum(1 for a in instance if a.predicate.name == name)


class TestSLFamily:
    @pytest.mark.parametrize("n,m,ell", [(1, 1, 1), (1, 2, 1), (2, 2, 1), (1, 2, 3), (2, 1, 2)])
    def test_chase_size_meets_theorem_65(self, n, m, ell):
        database, tgds = sl_lower_bound(n, m, ell)
        assert len(database) == ell
        result = semi_oblivious_chase(database, tgds)
        assert result.terminated
        assert predicate_count(result.instance, f"R{n}") >= sl_lower_bound_value(ell, n, m)

    def test_top_level_predicate_count_is_exact(self):
        """Claim E.1: the number of R_n tuples is exactly ℓ · m^(n·m)."""
        database, tgds = sl_lower_bound(2, 2, 2)
        result = semi_oblivious_chase(database, tgds)
        assert predicate_count(result.instance, "R2") == 2 * 2 ** 4

    def test_family_is_in_ct_d(self):
        database, tgds = sl_lower_bound(2, 2, 1)
        assert syntactic_decision(database, tgds).terminates is True

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sl_lower_bound(0, 1)


class TestLinearFamily:
    @pytest.mark.parametrize("n,m,ell", [(1, 1, 1), (1, 2, 1), (2, 1, 1), (1, 2, 2)])
    def test_chase_size_meets_theorem_76(self, n, m, ell):
        database, tgds = linear_lower_bound(n, m, ell)
        result = semi_oblivious_chase(database, tgds)
        assert result.terminated
        assert predicate_count(result.instance, f"R{n}") >= linear_lower_bound_value(ell, n, m)

    def test_arity_matches_theorem(self):
        _, tgds = linear_lower_bound(2, 3)
        assert tgds.arity() == 3 + 3

    def test_family_is_in_ct_d(self):
        database, tgds = linear_lower_bound(1, 2, 1)
        assert syntactic_decision(database, tgds).terminates is True

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            linear_lower_bound(1, 0)


class TestGuardedFamily:
    def test_chase_size_meets_theorem_84(self):
        database, tgds = guarded_lower_bound(1, 1, 1)
        result = semi_oblivious_chase(database, tgds, budget=ChaseBudget(max_atoms=50_000))
        assert result.terminated
        assert predicate_count(result.instance, "Node") >= guarded_lower_bound_value(1, 1, 1)

    def test_scaling_in_database_size(self):
        small_db, tgds = guarded_lower_bound(1, 1, 1)
        large_db, _ = guarded_lower_bound(1, 1, 2)
        small = semi_oblivious_chase(small_db, tgds, budget=ChaseBudget(max_atoms=50_000))
        large = semi_oblivious_chase(large_db, tgds, budget=ChaseBudget(max_atoms=100_000))
        assert small.terminated and large.terminated
        assert predicate_count(large.instance, "Node") == 2 * predicate_count(
            small.instance, "Node"
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            guarded_lower_bound(0, 1)


class TestFairnessExample:
    def test_both_rules_are_eventually_applied(self):
        database, tgds = fairness_example()
        result = semi_oblivious_chase(database, tgds, budget=ChaseBudget(max_atoms=60))
        assert not result.terminated
        # A fair derivation must also apply σ′, producing P atoms.
        assert predicate_count(result.instance, "P") >= 1
