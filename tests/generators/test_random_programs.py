"""Tests for the seeded random program/database generators."""

from repro.core.classify import TGDClass, classify
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        assert str(random_simple_linear_program(3)) == str(random_simple_linear_program(3))
        assert str(random_linear_program(3)) == str(random_linear_program(3))
        assert str(random_guarded_program(3)) == str(random_guarded_program(3))

    def test_different_seeds_usually_differ(self):
        texts = {str(random_simple_linear_program(seed)) for seed in range(5)}
        assert len(texts) > 1

    def test_same_seed_same_database(self):
        tgds = random_simple_linear_program(1)
        assert random_database(tgds, 5) == random_database(tgds, 5)


class TestClassMembership:
    def test_simple_linear_programs_are_simple_linear(self):
        for seed in range(10):
            program = random_simple_linear_program(seed)
            assert classify(program) is TGDClass.SIMPLE_LINEAR

    def test_linear_programs_are_linear(self):
        for seed in range(10):
            program = random_linear_program(seed)
            assert classify(program).is_subclass_of(TGDClass.LINEAR)

    def test_guarded_programs_are_guarded(self):
        for seed in range(10):
            program = random_guarded_program(seed)
            assert classify(program).is_subclass_of(TGDClass.GUARDED)


class TestRandomDatabase:
    def test_database_respects_schema(self):
        tgds = random_guarded_program(2)
        database = random_database(tgds, seed=4, fact_count=20)
        assert database.predicates() <= tgds.schema()
        assert len(database) <= 20

    def test_fact_and_constant_counts(self):
        tgds = random_simple_linear_program(2)
        database = random_database(tgds, seed=4, fact_count=30, constant_count=2)
        constants = {c.name for c in database.constants()}
        assert constants <= {"c1", "c2"}
