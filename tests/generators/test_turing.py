"""Tests for the Appendix A Turing-machine reduction (Σ★ and D_M)."""

import pytest

from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.classify import TGDClass, classify
from repro.generators.turing import (
    TuringMachine,
    halting_machine,
    looping_machine,
    machine_database,
    sigma_star,
)


class TestMachineDefinition:
    def test_invalid_initial_state_rejected(self):
        with pytest.raises(ValueError):
            TuringMachine(states=("q0",), alphabet=("a",), transitions={}, initial_state="q9")

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            TuringMachine(
                states=("q0",),
                alphabet=("a",),
                transitions={("q0", "a"): ("q0", "a", "x")},
                initial_state="q0",
            )

    def test_unknown_state_in_transition_rejected(self):
        with pytest.raises(ValueError):
            TuringMachine(
                states=("q0",),
                alphabet=("a",),
                transitions={("q0", "a"): ("q9", "a", ">")},
                initial_state="q0",
            )


class TestEncoding:
    def test_sigma_star_is_machine_independent(self):
        assert str(sigma_star()) == str(sigma_star())

    def test_sigma_star_is_not_guarded(self):
        assert classify(sigma_star()) is TGDClass.ARBITRARY

    def test_database_stores_transitions_and_configuration(self):
        database = machine_database(halting_machine())
        predicates = {p.name for p in database.predicates()}
        assert {"Trans", "Tape", "Head", "LDir", "SDir", "RDir", "Blank", "End"} <= predicates

    def test_database_depends_on_machine(self):
        assert machine_database(halting_machine()) != machine_database(looping_machine())


class TestReduction:
    def test_halting_machine_has_finite_chase(self):
        database = machine_database(halting_machine())
        result = semi_oblivious_chase(database, sigma_star(), budget=ChaseBudget(max_atoms=20_000))
        assert result.terminated

    def test_looping_machine_has_infinite_chase(self):
        database = machine_database(looping_machine())
        result = semi_oblivious_chase(database, sigma_star(), budget=ChaseBudget(max_atoms=5_000))
        assert not result.terminated

    def test_proposition_42_no_uniform_bound(self):
        """Different databases make the same Σ★ produce arbitrarily different chases."""
        halting = semi_oblivious_chase(
            machine_database(halting_machine()), sigma_star(), budget=ChaseBudget(max_atoms=20_000)
        )
        looping = semi_oblivious_chase(
            machine_database(looping_machine()), sigma_star(), budget=ChaseBudget(max_atoms=5_000)
        )
        assert halting.terminated and not looping.terminated
