"""Tests for the OBDA and data-exchange scenarios."""

from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.classify import TGDClass, classify
from repro.core.decision import decide_termination
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario


class TestUniversityScenario:
    def test_is_guarded(self):
        scenario = university_ontology_scenario()
        assert classify(scenario.tgds).is_subclass_of(TGDClass.GUARDED)

    def test_chase_terminates_and_materialises_inferences(self):
        scenario = university_ontology_scenario(students=10, courses=3, professors=2)
        result = semi_oblivious_chase(scenario.database, scenario.tgds)
        assert result.terminated
        derived_predicates = {a.predicate.name for a in result.instance}
        assert {"Student", "Person", "HasTutor", "AdvisedBy"} <= derived_predicates

    def test_decision_agrees_with_chase(self):
        scenario = university_ontology_scenario(students=10, courses=3, professors=2)
        assert decide_termination(scenario.database, scenario.tgds).terminates is True

    def test_scenario_is_deterministic(self):
        first = university_ontology_scenario(students=5, courses=2, professors=2, seed=3)
        second = university_ontology_scenario(students=5, courses=2, professors=2, seed=3)
        assert first.database == second.database


class TestDataExchangeScenario:
    def test_weakly_acyclic_variant_terminates(self):
        scenario = data_exchange_scenario(employees=10, departments=3)
        result = semi_oblivious_chase(scenario.database, scenario.tgds)
        assert result.terminated
        verdict = decide_termination(scenario.database, scenario.tgds)
        assert verdict.terminates is True

    def test_cyclic_variant_depends_on_database(self):
        scenario = data_exchange_scenario(employees=5, departments=2, weakly_acyclic=False)
        verdict = decide_termination(scenario.database, scenario.tgds)
        assert verdict.terminates is False
        result = semi_oblivious_chase(
            scenario.database, scenario.tgds, budget=ChaseBudget(max_atoms=2_000)
        )
        assert not result.terminated

    def test_cyclic_rules_with_empty_source_still_terminate(self):
        from repro.model.instance import Database

        scenario = data_exchange_scenario(weakly_acyclic=False)
        verdict = decide_termination(Database(), scenario.tgds)
        assert verdict.terminates is True
