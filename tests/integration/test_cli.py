"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main

RULES_TERMINATING = "Employee(x) -> exists d . WorksIn(x, d)\nWorksIn(x, d) -> Dept(d)\n"
RULES_LOOPING = "R(x, y) -> exists z . R(y, z)\n"
FACTS = "Employee(alice).\nEmployee(bob).\n"
FACTS_R = "R(a, b).\n"


@pytest.fixture
def files(tmp_path):
    def write(name, content):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestClassify:
    def test_classify_simple_linear(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        assert main(["classify", rules]) == 0
        output = capsys.readouterr().out
        assert "class: SL" in output
        assert "depth bound" in output

    def test_classify_arbitrary(self, files, capsys):
        rules = files("onto.rules", "R(x, y), R(y, z) -> S(x, z)\n")
        assert main(["classify", rules]) == 0
        assert "class: TGD" in capsys.readouterr().out


class TestDecide:
    def test_decide_terminating(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["decide", rules, data]) == 0
        assert "terminates" in capsys.readouterr().out

    def test_decide_nonterminating(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data]) == 1
        assert "does not terminate" in capsys.readouterr().out

    def test_decide_with_explicit_method(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data, "--method", "ucq"]) == 1

    def test_decide_terminating_arbitrary_class(self, files, capsys):
        # Decided by the naive method; there is no f_C bound for class
        # TGD, so none is printed (this used to crash).
        rules = files("onto.rules", "R(x, y) -> exists z . S(y, z)\nS(x, y), R(w, x) -> T(w, y)\n")
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data]) == 0
        output = capsys.readouterr().out
        assert "terminates" in output
        assert "size bound" not in output


class TestChase:
    def test_chase_to_stdout(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["chase", rules, data]) == 0
        output = capsys.readouterr().out
        assert "WorksIn(alice" in output
        assert "Dept(" in output

    def test_chase_to_file(self, files, tmp_path, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        out_file = tmp_path / "materialised.facts"
        assert main(["chase", rules, data, "--output", str(out_file)]) == 0
        assert "Dept(" in out_file.read_text()

    def test_chase_budget_exceeded_returns_nonzero(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-atoms", "50"]) == 1

    def test_chase_variants(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        for variant in ["restricted", "oblivious", "semi-oblivious"]:
            assert main(["chase", rules, data, "--variant", variant]) == 0

    def test_chase_max_depth_budget(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-depth", "3"]) == 1
        assert "depth_budget_exceeded" in capsys.readouterr().err

    def test_chase_max_rounds_budget(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-rounds", "2"]) == 1
        assert "round_budget_exceeded" in capsys.readouterr().err

    def test_chase_max_seconds_budget(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-seconds", "0.0"]) == 1
        assert "time_budget_exceeded" in capsys.readouterr().err

    def test_chase_json_format(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["chase", rules, data, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["outcome"] == "terminated"
        assert "Dept(" in document["instance"]

    def test_chase_json_format_with_output_file(self, files, tmp_path, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        out_file = tmp_path / "chase.facts"
        assert main(["chase", rules, data, "--format", "json", "--output", str(out_file)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["instance"] is None
        assert "Dept(" in out_file.read_text()

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestBatch:
    @pytest.fixture
    def manifest(self, tmp_path):
        lines = [
            {"id": "ok", "program": RULES_TERMINATING, "database": FACTS},
            {"id": "loop", "program": RULES_LOOPING, "database": FACTS_R},
            {
                "id": "explicit",
                "program": RULES_TERMINATING,
                "database": FACTS,
                "budget": {"max_atoms": 100},
                "variant": "restricted",
            },
        ]
        path = tmp_path / "manifest.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return path

    def _parse_results(self, text):
        return [json.loads(line) for line in text.strip().splitlines()]

    def test_batch_to_stdout(self, manifest, capsys):
        assert main(["batch", str(manifest)]) == 0
        captured = capsys.readouterr()
        rows = self._parse_results(captured.out)
        assert {row["id"] for row in rows} == {"ok", "loop", "explicit"}
        by_id = {row["id"]: row for row in rows}
        assert by_id["ok"]["outcome"] == "terminated"
        assert by_id["loop"]["outcome"] == "depth_budget_exceeded"
        assert by_id["loop"]["budget"]["source"] == "paper-bound"
        assert by_id["explicit"]["budget"]["source"] == "explicit"
        assert "3 jobs: 3 ok" in captured.err

    def test_batch_with_cache_and_output_file(self, manifest, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        out = tmp_path / "results.jsonl"
        args = ["batch", str(manifest), "--cache", str(cache), "--output", str(out)]
        assert main(args) == 0
        cold = {r["id"]: r for r in self._parse_results(out.read_text())}
        assert not any(r["cache"]["hit"] for r in cold.values())
        capsys.readouterr()
        assert main(args) == 0
        warm = {r["id"]: r for r in self._parse_results(out.read_text())}
        # Deterministic outcomes replay from cache, byte-identically.
        for job_id in ("ok", "loop", "explicit"):
            assert warm[job_id]["cache"]["hit"]
            assert json.dumps(warm[job_id]["summary"], sort_keys=True) == json.dumps(
                cold[job_id]["summary"], sort_keys=True
            )
        assert "from cache" in capsys.readouterr().err

    def test_batch_pool_workers(self, manifest, capsys):
        assert main(["batch", str(manifest), "--workers", "2"]) == 0
        rows = self._parse_results(capsys.readouterr().out)
        assert {row["id"] for row in rows} == {"ok", "loop", "explicit"}

    def test_batch_error_job_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "manifest.jsonl"
        path.write_text(json.dumps({"id": "bad", "program": "R(x -> ", "database": "R(a)."}) + "\n")
        assert main(["batch", str(path)]) == 1
        row = self._parse_results(capsys.readouterr().out)[0]
        assert row["status"] == "error"


class TestBenchRuntime:
    @pytest.mark.slow
    def test_bench_runtime_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_runtime.json"
        args = [
            "bench-runtime", "--output", str(out),
            "--jobs", "12", "--workers", "2", "--repeats", "1",
        ]
        assert main(args) == 0
        report = json.loads(out.read_text())
        assert report["summary"]["cache_hits_byte_identical"] is True
        assert report["summary"]["auto_budgeted_sl_l_within_budget"] is True
