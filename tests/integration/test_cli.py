"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main

RULES_TERMINATING = "Employee(x) -> exists d . WorksIn(x, d)\nWorksIn(x, d) -> Dept(d)\n"
RULES_LOOPING = "R(x, y) -> exists z . R(y, z)\n"
FACTS = "Employee(alice).\nEmployee(bob).\n"
FACTS_R = "R(a, b).\n"


@pytest.fixture
def files(tmp_path):
    def write(name, content):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestClassify:
    def test_classify_simple_linear(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        assert main(["classify", rules]) == 0
        output = capsys.readouterr().out
        assert "class: SL" in output
        assert "depth bound" in output

    def test_classify_arbitrary(self, files, capsys):
        rules = files("onto.rules", "R(x, y), R(y, z) -> S(x, z)\n")
        assert main(["classify", rules]) == 0
        assert "class: TGD" in capsys.readouterr().out


class TestDecide:
    def test_decide_terminating(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["decide", rules, data]) == 0
        assert "terminates" in capsys.readouterr().out

    def test_decide_nonterminating(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data]) == 1
        assert "does not terminate" in capsys.readouterr().out

    def test_decide_with_explicit_method(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data, "--method", "ucq"]) == 1

    def test_decide_terminating_arbitrary_class(self, files, capsys):
        # Decided by the naive method; there is no f_C bound for class
        # TGD, so none is printed (this used to crash).
        rules = files("onto.rules", "R(x, y) -> exists z . S(y, z)\nS(x, y), R(w, x) -> T(w, y)\n")
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data]) == 0
        output = capsys.readouterr().out
        assert "terminates" in output
        assert "size bound" not in output


class TestChase:
    def test_chase_to_stdout(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["chase", rules, data]) == 0
        output = capsys.readouterr().out
        assert "WorksIn(alice" in output
        assert "Dept(" in output

    def test_chase_to_file(self, files, tmp_path, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        out_file = tmp_path / "materialised.facts"
        assert main(["chase", rules, data, "--output", str(out_file)]) == 0
        assert "Dept(" in out_file.read_text()

    def test_chase_budget_exceeded_returns_nonzero(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-atoms", "50"]) == 1

    def test_chase_variants(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        for variant in ["restricted", "oblivious", "semi-oblivious"]:
            assert main(["chase", rules, data, "--variant", variant]) == 0

    def test_chase_max_depth_budget(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-depth", "3"]) == 1
        assert "depth_budget_exceeded" in capsys.readouterr().err

    def test_chase_max_rounds_budget(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-rounds", "2"]) == 1
        assert "round_budget_exceeded" in capsys.readouterr().err

    def test_chase_max_seconds_budget(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-seconds", "0.0"]) == 1
        assert "time_budget_exceeded" in capsys.readouterr().err

    def test_chase_json_format(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["chase", rules, data, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["outcome"] == "terminated"
        assert "Dept(" in document["instance"]

    def test_chase_json_format_with_output_file(self, files, tmp_path, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        out_file = tmp_path / "chase.facts"
        assert main(["chase", rules, data, "--format", "json", "--output", str(out_file)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["instance"] is None
        assert "Dept(" in out_file.read_text()

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestBatch:
    @pytest.fixture
    def manifest(self, tmp_path):
        lines = [
            {"id": "ok", "program": RULES_TERMINATING, "database": FACTS},
            {"id": "loop", "program": RULES_LOOPING, "database": FACTS_R},
            {
                "id": "explicit",
                "program": RULES_TERMINATING,
                "database": FACTS,
                "budget": {"max_atoms": 100},
                "variant": "restricted",
            },
        ]
        path = tmp_path / "manifest.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return path

    def _parse_results(self, text):
        return [json.loads(line) for line in text.strip().splitlines()]

    def test_batch_to_stdout(self, manifest, capsys):
        assert main(["batch", str(manifest)]) == 0
        captured = capsys.readouterr()
        rows = self._parse_results(captured.out)
        assert {row["id"] for row in rows} == {"ok", "loop", "explicit"}
        by_id = {row["id"]: row for row in rows}
        assert by_id["ok"]["outcome"] == "terminated"
        assert by_id["loop"]["outcome"] == "depth_budget_exceeded"
        assert by_id["loop"]["budget"]["source"] == "paper-bound"
        assert by_id["explicit"]["budget"]["source"] == "explicit"
        assert "3 jobs: 3 ok" in captured.err

    def test_batch_with_cache_and_output_file(self, manifest, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        out = tmp_path / "results.jsonl"
        args = ["batch", str(manifest), "--cache", str(cache), "--output", str(out)]
        assert main(args) == 0
        cold = {r["id"]: r for r in self._parse_results(out.read_text())}
        assert not any(r["cache"]["hit"] for r in cold.values())
        capsys.readouterr()
        assert main(args) == 0
        warm = {r["id"]: r for r in self._parse_results(out.read_text())}
        # Deterministic outcomes replay from cache, byte-identically.
        for job_id in ("ok", "loop", "explicit"):
            assert warm[job_id]["cache"]["hit"]
            assert json.dumps(warm[job_id]["summary"], sort_keys=True) == json.dumps(
                cold[job_id]["summary"], sort_keys=True
            )
        assert "from cache" in capsys.readouterr().err

    def test_batch_pool_workers(self, manifest, capsys):
        assert main(["batch", str(manifest), "--workers", "2"]) == 0
        rows = self._parse_results(capsys.readouterr().out)
        assert {row["id"] for row in rows} == {"ok", "loop", "explicit"}

    def test_batch_error_job_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "manifest.jsonl"
        path.write_text(json.dumps({"id": "bad", "program": "R(x -> ", "database": "R(a)."}) + "\n")
        assert main(["batch", str(path)]) == 1
        row = self._parse_results(capsys.readouterr().out)[0]
        assert row["status"] == "error"


class TestBenchRuntime:
    @pytest.mark.slow
    def test_bench_runtime_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_runtime.json"
        args = [
            "bench-runtime", "--output", str(out),
            "--jobs", "12", "--workers", "2", "--repeats", "1",
            "--no-history",  # keep test runs out of benchmarks/history.jsonl
        ]
        assert main(args) == 0
        report = json.loads(out.read_text())
        assert report["summary"]["cache_hits_byte_identical"] is True
        assert report["summary"]["auto_budgeted_sl_l_within_budget"] is True


class TestSnapshotCommand:
    def test_dump_inspect_restore_round_trip(self, files, tmp_path, capsys):
        facts = files("db.facts", FACTS)
        snap = tmp_path / "db.snap"
        assert main(["snapshot", "dump", facts, "--output", str(snap)]) == 0
        assert snap.read_bytes().startswith(b"RSNP1")
        assert main(["snapshot", "inspect", str(snap)]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["facts"] == 2
        assert header["predicates"] == {"Employee/1": 2}
        assert main(["snapshot", "restore", str(snap)]) == 0
        restored = capsys.readouterr().out.strip().splitlines()
        assert sorted(restored) == ["Employee(alice)", "Employee(bob)"]

    def test_dump_with_rules_snapshots_the_chase_result(self, files, tmp_path, capsys):
        rules = files("r.rules", RULES_TERMINATING)
        facts = files("db.facts", FACTS)
        snap = tmp_path / "chased.snap"
        assert (
            main(
                ["snapshot", "dump", facts, "--rules", rules, "--output", str(snap)]
            )
            == 0
        )
        assert main(["snapshot", "inspect", str(snap)]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["facts"] == 6  # 2 Employee + 2 WorksIn + 2 Dept
        assert header["nulls"] == 2

    def test_restore_to_file(self, files, tmp_path, capsys):
        facts = files("db.facts", FACTS)
        snap = tmp_path / "db.snap"
        out = tmp_path / "restored.facts"
        main(["snapshot", "dump", facts, "--output", str(snap)])
        assert main(["snapshot", "restore", str(snap), "--output", str(out)]) == 0
        assert "Employee(alice)" in out.read_text()


class TestChaseResume:
    def test_save_snapshot_then_resume(self, files, tmp_path, capsys):
        rules = files("r.rules", RULES_TERMINATING)
        base_facts = files("base.facts", "Employee(alice).\n")
        full_facts = files("full.facts", FACTS)
        snap = tmp_path / "base.snap"
        assert (
            main(["chase", rules, base_facts, "--save-snapshot", str(snap),
                  "--format", "json"])
            == 0
        )
        capsys.readouterr()
        assert (
            main(["chase", rules, full_facts, "--resume-from", str(snap),
                  "--format", "json"])
            == 0
        )
        resumed = json.loads(capsys.readouterr().out)
        capsys.readouterr()
        assert main(["chase", rules, full_facts, "--format", "json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert resumed["summary"]["size"] == cold["summary"]["size"]
        assert resumed["summary"]["database_size"] == cold["summary"]["database_size"]
        assert sorted(resumed["instance"].splitlines()) == sorted(
            cold["instance"].splitlines()
        )

    def test_save_snapshot_requires_store_engine(self, files, tmp_path, capsys):
        rules = files("r.rules", RULES_TERMINATING)
        facts = files("db.facts", FACTS)
        snap = tmp_path / "x.snap"
        assert (
            main(["chase", rules, facts, "--engine", "plans",
                  "--save-snapshot", str(snap)])
            == 2
        )
        assert not snap.exists()


class TestBatchIncremental:
    def test_incremental_resumes_grown_manifest(self, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        base_manifest = tmp_path / "base.jsonl"
        base_manifest.write_text(
            json.dumps(
                {"id": "base", "program": RULES_TERMINATING.strip(),
                 "database": "Employee(alice)."}
            )
            + "\n"
        )
        grown_manifest = tmp_path / "grown.jsonl"
        grown_manifest.write_text(
            json.dumps(
                {"id": "grown", "program": RULES_TERMINATING.strip(),
                 "database": FACTS.strip()}
            )
            + "\n"
        )
        out1 = tmp_path / "r1.jsonl"
        out2 = tmp_path / "r2.jsonl"
        assert (
            main(["batch", str(base_manifest), "--cache", str(cache),
                  "--incremental", "--output", str(out1)])
            == 0
        )
        assert (
            main(["batch", str(grown_manifest), "--cache", str(cache),
                  "--incremental", "--output", str(out2)])
            == 0
        )
        base_row = json.loads(out1.read_text().splitlines()[0])
        grown_row = json.loads(out2.read_text().splitlines()[0])
        assert base_row["resumed_from"] is None
        assert grown_row["resumed_from"] == base_row["cache"]["key"]
        assert grown_row["summary"]["outcome"] == "terminated"
        assert grown_row["summary"]["database_size"] == 2

    def test_resume_refuses_incomplete_snapshots(self, files, tmp_path, capsys):
        rules = files("loop.rules", RULES_LOOPING)
        facts = files("db.facts", FACTS_R)
        snap = tmp_path / "prefix.snap"
        # A budget-stopped run refuses to save a resume snapshot at all.
        assert (
            main(["chase", rules, facts, "--max-rounds", "1",
                  "--save-snapshot", str(snap)])
            == 2
        )
        assert not snap.exists()
        # A chased dump of a non-terminating program is marked incomplete
        # and --resume-from refuses it.
        assert (
            main(["snapshot", "dump", facts, "--rules", rules, "--output", str(snap)])
            == 0
        )
        capsys.readouterr()
        assert main(["snapshot", "inspect", str(snap)]) == 0
        assert json.loads(capsys.readouterr().out)["complete"] is False
        assert (
            main(["chase", rules, facts, "--resume-from", str(snap)]) == 2
        )
        # A plain database dump is no chase result either.
        db_snap = tmp_path / "db.snap"
        main(["snapshot", "dump", facts, "--output", str(db_snap)])
        assert main(["chase", rules, facts, "--resume-from", str(db_snap)]) == 2
