"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main

RULES_TERMINATING = "Employee(x) -> exists d . WorksIn(x, d)\nWorksIn(x, d) -> Dept(d)\n"
RULES_LOOPING = "R(x, y) -> exists z . R(y, z)\n"
FACTS = "Employee(alice).\nEmployee(bob).\n"
FACTS_R = "R(a, b).\n"


@pytest.fixture
def files(tmp_path):
    def write(name, content):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestClassify:
    def test_classify_simple_linear(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        assert main(["classify", rules]) == 0
        output = capsys.readouterr().out
        assert "class: SL" in output
        assert "depth bound" in output

    def test_classify_arbitrary(self, files, capsys):
        rules = files("onto.rules", "R(x, y), R(y, z) -> S(x, z)\n")
        assert main(["classify", rules]) == 0
        assert "class: TGD" in capsys.readouterr().out


class TestDecide:
    def test_decide_terminating(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["decide", rules, data]) == 0
        assert "terminates" in capsys.readouterr().out

    def test_decide_nonterminating(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data]) == 1
        assert "does not terminate" in capsys.readouterr().out

    def test_decide_with_explicit_method(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["decide", rules, data, "--method", "ucq"]) == 1


class TestChase:
    def test_chase_to_stdout(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        assert main(["chase", rules, data]) == 0
        output = capsys.readouterr().out
        assert "WorksIn(alice" in output
        assert "Dept(" in output

    def test_chase_to_file(self, files, tmp_path, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        out_file = tmp_path / "materialised.facts"
        assert main(["chase", rules, data, "--output", str(out_file)]) == 0
        assert "Dept(" in out_file.read_text()

    def test_chase_budget_exceeded_returns_nonzero(self, files, capsys):
        rules = files("onto.rules", RULES_LOOPING)
        data = files("db.facts", FACTS_R)
        assert main(["chase", rules, data, "--max-atoms", "50"]) == 1

    def test_chase_variants(self, files, capsys):
        rules = files("onto.rules", RULES_TERMINATING)
        data = files("db.facts", FACTS)
        for variant in ["restricted", "oblivious", "semi-oblivious"]:
            assert main(["chase", rules, data, "--variant", variant]) == 0

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])
