"""Integration tests: every shipped example runs end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_present():
    assert {
        "quickstart.py",
        "obda_materialization.py",
        "data_exchange.py",
        "termination_audit.py",
        "paper_experiments.py",
        "batch_service.py",
        "chase_service_client.py",
    } <= set(EXAMPLE_SCRIPTS)


@pytest.mark.parametrize("script", [s for s in EXAMPLE_SCRIPTS if s != "paper_experiments.py"])
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} should print something"


@pytest.mark.slow
def test_paper_experiments_example_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "paper_experiments.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "E1" in output and "E12" in output
