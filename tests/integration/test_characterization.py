"""Integration tests: the three-way characterisation on curated workloads.

For every curated (database, ontology) pair the syntactic verdict, the
size/depth bounds and the materialised chase must tell a single
coherent story (Theorems 6.4, 7.5, 8.3).
"""

import pytest

from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import depth_bound, size_bound_factor
from repro.core.decision import syntactic_decision
from repro.core.termination import certify
from repro.model.parser import parse_database, parse_program
from repro.generators.families import (
    example_7_1,
    guarded_lower_bound,
    intro_nonterminating_example,
    linear_lower_bound,
    sl_lower_bound,
)
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario

CURATED = [
    ("intro", *intro_nonterminating_example(), False),
    ("example_7_1", *example_7_1(), True),
    ("sl_family", *sl_lower_bound(2, 2, 2), True),
    ("linear_family", *linear_lower_bound(1, 2, 1), True),
    (
        "reflexive_loop",
        parse_database("R(a, a)."),
        parse_program("R(x, x) -> exists z . R(x, z), R(z, z)"),
        False,
    ),
    (
        "non_reflexive_loop",
        parse_database("R(a, b)."),
        parse_program("R(x, x) -> exists z . R(x, z), R(z, z)"),
        True,
    ),
    (
        "guarded_supported",
        parse_database("R(a, b).\nP(a)."),
        parse_program("R(x, y), P(x) -> exists z . R(y, z), P(y)"),
        False,
    ),
    (
        "guarded_unsupported",
        parse_database("R(a, b)."),
        parse_program("R(x, y), P(x) -> exists z . R(y, z), P(y)"),
        True,
    ),
]


@pytest.mark.parametrize(
    "name,database,tgds,expected", CURATED, ids=[case[0] for case in CURATED]
)
def test_syntactic_verdict_matches_chase(name, database, tgds, expected):
    verdict = syntactic_decision(database, tgds)
    assert verdict.terminates is expected
    result = semi_oblivious_chase(
        database, tgds, budget=ChaseBudget(max_atoms=20_000), record_derivation=False
    )
    assert result.terminated is expected
    if expected:
        assert result.size <= len(database) * size_bound_factor(tgds)
        assert result.max_depth <= depth_bound(tgds)


@pytest.mark.parametrize(
    "name,database,tgds,expected", CURATED, ids=[case[0] for case in CURATED]
)
def test_certificates_are_consistent(name, database, tgds, expected):
    certificate = certify(database, tgds)
    assert certificate.verdict.terminates is expected
    assert certificate.consistent


def test_guarded_lower_bound_family_certificate():
    database, tgds = guarded_lower_bound(1, 1, 1)
    result = semi_oblivious_chase(
        database, tgds, budget=ChaseBudget(max_atoms=100_000), record_derivation=False
    )
    assert result.terminated
    assert result.max_depth <= depth_bound(tgds)


def test_scenarios_round_trip_through_the_full_api():
    university = university_ontology_scenario(students=15, courses=4, professors=3)
    exchange = data_exchange_scenario(employees=15, departments=3, weakly_acyclic=False)
    for scenario, expected in [(university, True), (exchange, False)]:
        verdict = syntactic_decision(scenario.database, scenario.tgds)
        assert verdict.terminates is expected
        result = semi_oblivious_chase(
            scenario.database, scenario.tgds, budget=ChaseBudget(max_atoms=20_000),
            record_derivation=False,
        )
        assert result.terminated is expected
