"""Property tests for the fact store's intern/decode round trips.

The store's contract is that packing an instance into id tuples and
decoding it back is the identity, that decoded nulls are *equal* (same
intern uid) to the structurally labelled nulls the legacy engine
builds, and that the canonical fingerprint machinery cannot tell a
store-produced instance from a legacy-produced one — in particular
under consistent relabelling of nulls.
"""

from hypothesis import given, settings, strategies as st

from repro.chase.engine import ChaseBudget
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_simple_linear_program,
)
from repro.model.serialization import (
    canonical_instance_text,
    fire_invariant_instance_key,
)
from repro.model.store import FactStore

BUDGET = ChaseBudget(max_atoms=2_000, max_rounds=500)

program_seeds = st.integers(min_value=0, max_value=150)
database_seeds = st.integers(min_value=0, max_value=150)


def chase_instance(program_seed: int, database_seed: int, guarded: bool = False):
    make = random_guarded_program if guarded else random_simple_linear_program
    tgds = make(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    result = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    return result.instance


@settings(max_examples=25, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_intern_decode_round_trip(program_seed, database_seed):
    """Re-interning a decoded chase result and decoding again is the
    identity — including the nulls invented by the store."""
    instance = chase_instance(program_seed, database_seed)
    store = FactStore()
    packed = [store.add_atom(a) for a in instance]
    assert len(store) == len(instance)
    assert store.to_instance() == instance
    for (pid, ids), original in zip(packed, instance):
        assert store.decode_fact(pid, ids) == original


@settings(max_examples=25, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_store_nulls_equal_legacy_nulls(program_seed, database_seed):
    """The store's lazily decoded nulls carry the same structural label
    — hence the same intern uid — as the legacy engine's."""
    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    store_run = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    legacy_run = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="legacy"
    )
    assert store_run.terminated == legacy_run.terminated
    if store_run.terminated:
        # Only a fixpoint is order-independent: a budget-stopped run is
        # whatever prefix of the round fit, which legitimately differs
        # with trigger order between engines.
        assert store_run.instance == legacy_run.instance


@settings(max_examples=15, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_fingerprint_invariant_under_null_relabelling(program_seed, database_seed):
    """Chasing the same input twice in fresh processes would relabel
    every null uid; the canonical fingerprint must not notice.  Here
    the relabelling is simulated by re-interning through a fresh store
    (which reassigns every dense id) and by comparing against the
    legacy engine's independently labelled run."""
    tgds = random_guarded_program(program_seed, rule_count=3)
    database = random_database(tgds, database_seed, fact_count=5)
    store_run = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    if not store_run.terminated or store_run.size > 200:
        return
    legacy_run = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="legacy"
    )
    fingerprint = canonical_instance_text(store_run.instance)
    assert fingerprint == canonical_instance_text(legacy_run.instance)
    reinterned = FactStore()
    for a in store_run.instance:
        reinterned.add_atom(a)
    assert canonical_instance_text(reinterned.to_instance()) == fingerprint


@settings(max_examples=15, deadline=None)
@given(
    chain_length=st.integers(min_value=2, max_value=10),
    payloads=st.integers(min_value=1, max_value=5),
)
def test_restricted_fire_key_is_engine_invariant(chain_length, payloads):
    """On the order-invariant restricted-heavy family, the fire-invariant
    key identifies restricted results across engines even though fire
    numbering differs with trigger order."""
    from repro.generators.workloads import restricted_heavy

    database, tgds = restricted_heavy(chain_length, payloads)
    store_run = restricted_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    legacy_run = restricted_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="legacy"
    )
    assert store_run.terminated and legacy_run.terminated
    assert store_run.size == legacy_run.size
    assert store_run.statistics.triggers_applied == legacy_run.statistics.triggers_applied
    assert fire_invariant_instance_key(store_run.instance) == (
        fire_invariant_instance_key(legacy_run.instance)
    )


@settings(max_examples=20, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_snapshot_round_trip_preserves_everything(program_seed, database_seed):
    """restore(snapshot(s)) preserves fingerprints, posting lists and
    null decode recipes, for chase-result stores full of invented
    nulls."""
    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    result = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    snapshot = result.store_snapshot()
    assert snapshot is not None
    restored = FactStore.restore(snapshot)
    assert len(restored) == result.size
    assert restored.max_depth() == result.max_depth
    instance = result.instance
    assert restored.to_instance() == instance
    assert canonical_instance_text(restored.to_instance()) == (
        canonical_instance_text(instance)
    )
    # Per-predicate posting lists decode to the same fact sets.
    for pid in range(len(restored._pred_of)):
        predicate = restored.predicate_of(pid)
        assert restored.count(pid) == sum(
            1 for a in instance if a.predicate == predicate
        )


@settings(max_examples=20, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_snapshot_round_trip_is_layout_agnostic(program_seed, database_seed):
    """A snapshot taken from either layout restores into either layout
    with identical decoded content and a byte-identical re-snapshot."""
    instance = chase_instance(program_seed, database_seed)
    source = FactStore(layout="sets")
    for a in instance:
        source.add_atom(a)
    blob = source.snapshot()
    arrays_restore = FactStore.restore(blob, layout="arrays")
    sets_restore = FactStore.restore(blob, layout="sets")
    assert arrays_restore.to_instance() == sets_restore.to_instance() == instance
    # The arrays layout preserves fact order exactly, so re-encoding is
    # byte-stable; the sets layout re-encodes in its own bucket order,
    # which must still restore to the same content.
    assert arrays_restore.snapshot() == blob
    assert FactStore.restore(sets_restore.snapshot()).to_instance() == instance


@settings(max_examples=15, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_resume_from_prefix_matches_cold_chase(program_seed, database_seed):
    """Property form of incremental re-chase: for a random terminating
    run, chase(D) == resume(chase(prefix), D) atom for atom."""
    from repro.model.instance import Database
    from repro.model.serialization import atom_to_text

    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=8)
    cold = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    if not cold.terminated:
        return
    facts = sorted(database, key=atom_to_text)
    prefix = Database(facts[: max(1, len(facts) * 2 // 3)])
    base = semi_oblivious_chase(
        prefix, tgds, budget=BUDGET, record_derivation=False, engine="store"
    )
    if not base.terminated:
        return
    resumed = semi_oblivious_chase(
        database, tgds, budget=BUDGET, record_derivation=False, engine="store",
        resume_from=base.store_snapshot(),
    )
    assert resumed.terminated
    assert resumed.database_size == cold.database_size
    assert resumed.instance == cold.instance
    assert canonical_instance_text(resumed.instance) == (
        canonical_instance_text(cold.instance)
    )
