"""Property-based tests for simplification and linearization.

Propositions 7.3 and 8.1: the transformations preserve chase finiteness
and the maximal term depth.  Finiteness is checked against a budgeted
chase run, depth equality only on runs where both sides terminated.
"""

from hypothesis import given, settings, strategies as st

from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.linearization import linearize
from repro.core.simplification import simplify_database, simplify_program
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
)

BUDGET = ChaseBudget(max_atoms=4_000, max_rounds=3_000)

program_seeds = st.integers(min_value=0, max_value=200)
database_seeds = st.integers(min_value=0, max_value=100)


@settings(max_examples=30, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_simplification_preserves_finiteness_and_depth(program_seed, database_seed):
    tgds = random_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=5)
    original = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    simplified = semi_oblivious_chase(
        simplify_database(database),
        simplify_program(tgds),
        budget=BUDGET,
        record_derivation=False,
    )
    assert original.terminated == simplified.terminated
    if original.terminated:
        assert original.max_depth == simplified.max_depth


@settings(max_examples=12, deadline=None)
@given(program_seed=st.integers(min_value=0, max_value=120), database_seed=database_seeds)
def test_linearization_preserves_finiteness_and_depth(program_seed, database_seed):
    tgds = random_guarded_program(program_seed, predicate_count=3, max_arity=2, rule_count=3)
    database = random_database(tgds, database_seed, fact_count=3, constant_count=3)
    original = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    linearized_input = linearize(database, tgds)
    linearized = semi_oblivious_chase(
        linearized_input.database,
        linearized_input.program,
        budget=BUDGET,
        record_derivation=False,
    )
    assert original.terminated == linearized.terminated
    if original.terminated:
        assert original.max_depth == linearized.max_depth
