"""Differential verdict-vs-chase harness for the termination analysis.

The one property that matters is *soundness*: a ``terminating`` verdict
for a variant means the variant's chase reaches a fixpoint — and does
so without a term ever exceeding the analysis' depth bound, so running
with ``max_depth = bound`` must end in ``TERMINATED``, never in a
budget stop.  Dually, a ``diverging`` verdict means the chase blows
straight through a generous budget.  ``undetermined`` asserts nothing.

The harness sweeps well over 200 randomized programs (three generator
families x seeds x two databases each) plus the repo's known-diverging
families, and additionally pins that verdicts are invariant under rule
reordering and consistent predicate renaming — the analysis looks at
structure, not at spellings or file order.
"""

import random

import pytest

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget, ChaseOutcome
from repro.core.termination_analysis import (
    ANALYSIS_VARIANTS,
    DIVERGING,
    TERMINATING,
    analyze_termination,
)
from repro.generators.families import fairness_example, intro_nonterminating_example
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)
from repro.generators.scenarios import data_exchange_scenario
from repro.generators.turing import looping_machine, machine_database, sigma_star
from repro.model.atoms import Atom, Predicate
from repro.model.tgd import TGD, TGDSet

GENERATORS = {
    "sl": random_simple_linear_program,
    "linear": random_linear_program,
    "guarded": random_guarded_program,
}

#: 3 generators x 35 seeds = 105 programs per sweep; each sweep checks
#: two databases, so one parametrized run covers 210 (program, database)
#: pairs — and the three variant sweeps share them.
SEEDS = range(35)

#: A ``terminating`` chase must end without tripping any budget; the
#: atom/round limits here are pure runaway protection and sit far above
#: anything these tiny programs can produce when they do terminate.
TERMINATING_GUARD = {"max_atoms": 200_000, "max_rounds": 100_000}

#: A ``diverging`` chase must still be growing when this generous
#: budget runs out; for 5-rule programs a real fixpoint fits easily.
DIVERGING_BUDGET = ChaseBudget(max_atoms=4_000, max_rounds=2_000)


def _sweep_cases():
    for family, generator in GENERATORS.items():
        for seed in SEEDS:
            yield family, generator, seed


def _check_verdict(database, tgds, variant):
    """Differential check for one (program, database, variant) case."""
    report = analyze_termination(database, tgds, variant)
    runner = VARIANT_RUNNERS[variant]
    if report.verdict == TERMINATING:
        assert report.depth_bound is not None, (
            f"terminating verdict without a depth bound via {report.method}"
        )
        budget = ChaseBudget(max_depth=report.depth_bound, **TERMINATING_GUARD)
        result = runner(database, tgds, budget=budget, record_derivation=False)
        assert result.outcome is ChaseOutcome.TERMINATED, (
            f"unsound terminating verdict via {report.method} "
            f"(bound {report.depth_bound}, stopped on {result.outcome.value}) for\n"
            f"{tgds}\non {sorted(str(a) for a in database)}"
        )
    elif report.verdict == DIVERGING:
        result = runner(database, tgds, budget=DIVERGING_BUDGET, record_derivation=False)
        assert not result.terminated, (
            f"unsound diverging verdict via {report.method} "
            f"(chase terminated with {result.size} atoms) for\n"
            f"{tgds}\non {sorted(str(a) for a in database)}"
        )
    return report.verdict


@pytest.mark.parametrize("variant", ANALYSIS_VARIANTS)
@pytest.mark.parametrize(
    "family,generator,seed",
    [pytest.param(f, g, s, id=f"{f}-{s}") for f, g, s in _sweep_cases()],
)
def test_verdicts_are_sound_on_random_programs(family, generator, seed, variant):
    tgds = generator(seed)
    for database_seed in (seed, seed + 1000):
        database = random_database(tgds, database_seed, fact_count=6)
        _check_verdict(database, tgds, variant)


def test_sweep_actually_resolves_programs():
    """The differential sweep must not pass vacuously: across the same
    program pool, the analysis has to commit to a healthy number of
    ``terminating`` and at least some ``diverging`` verdicts."""
    resolved = {TERMINATING: 0, DIVERGING: 0}
    for _, generator, seed in _sweep_cases():
        tgds = generator(seed)
        database = random_database(tgds, seed, fact_count=6)
        report = analyze_termination(database, tgds, "semi-oblivious")
        if report.verdict in resolved:
            resolved[report.verdict] += 1
    assert resolved[TERMINATING] >= 40
    assert resolved[DIVERGING] >= 10


# --------------------------------------------------------------------------
# Known-diverging families must never be called terminating.
# --------------------------------------------------------------------------


def _diverging_families():
    yield "intro", intro_nonterminating_example()
    yield "fairness", fairness_example()
    scenario = data_exchange_scenario(employees=6, departments=2, weakly_acyclic=False)
    yield "data_exchange_cyclic", (scenario.database, scenario.tgds)
    yield "turing_looping", (machine_database(looping_machine()), sigma_star())


@pytest.mark.parametrize(
    "name,case", [pytest.param(n, c, id=n) for n, c in _diverging_families()]
)
def test_known_diverging_families_are_never_terminating(name, case):
    database, tgds = case
    for variant in ANALYSIS_VARIANTS:
        report = analyze_termination(database, tgds, variant)
        assert report.verdict != TERMINATING, (
            f"{name}/{variant}: known-diverging family judged terminating "
            f"via {report.method}"
        )


# --------------------------------------------------------------------------
# Verdict invariance under renaming and reordering.
# --------------------------------------------------------------------------


def _rename_predicate(predicate, suffix):
    return Predicate(f"{predicate.name}_{suffix}", predicate.arity)


def _rename_program(tgds, suffix="rn"):
    renamed = []
    for tgd in tgds:
        body = tuple(
            Atom(_rename_predicate(atom.predicate, suffix), atom.args) for atom in tgd.body
        )
        head = tuple(
            Atom(_rename_predicate(atom.predicate, suffix), atom.args) for atom in tgd.head
        )
        renamed.append(TGD(body=body, head=head, rule_id=f"{suffix}_{tgd.rule_id}"))
    return TGDSet(renamed, name=f"{tgds.name}|{suffix}")


def _rename_database(database, suffix="rn"):
    from repro.model.instance import Database

    renamed = Database()
    for atom in database:
        renamed.add(Atom(_rename_predicate(atom.predicate, suffix), atom.args))
    return renamed


@pytest.mark.parametrize("variant", ("semi-oblivious", "oblivious"))
def test_verdicts_are_invariant_under_reordering_and_renaming(variant):
    rng = random.Random(99)
    for family, generator in GENERATORS.items():
        for seed in range(8):
            tgds = generator(seed)
            database = random_database(tgds, seed, fact_count=6)
            baseline = analyze_termination(database, tgds, variant)

            shuffled_rules = list(tgds)
            rng.shuffle(shuffled_rules)
            reordered = TGDSet(shuffled_rules, name=f"{tgds.name}|shuffled")
            assert (
                analyze_termination(database, reordered, variant).verdict
                == baseline.verdict
            ), f"{family}-{seed}/{variant}: verdict changed under rule reordering"

            renamed = analyze_termination(
                _rename_database(database), _rename_program(tgds), variant
            )
            assert renamed.verdict == baseline.verdict, (
                f"{family}-{seed}/{variant}: verdict changed under predicate renaming"
            )
