"""Property-based tests for the chase engine invariants.

The strategies generate small random simple-linear / guarded programs
and databases (via the seeded generators, so shrinking stays
meaningful) and check the structural invariants the paper relies on:
the chase result contains the database, satisfies the TGDs when it
terminates, is insensitive to the order in which facts are supplied,
and never shrinks the database.
"""

from hypothesis import given, settings, strategies as st

from repro.model.homomorphism import extend_homomorphism, find_homomorphisms
from repro.model.instance import Database
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_simple_linear_program,
)

BUDGET = ChaseBudget(max_atoms=3_000, max_rounds=2_000)

program_seeds = st.integers(min_value=0, max_value=200)
database_seeds = st.integers(min_value=0, max_value=200)


def satisfies(instance, tgds) -> bool:
    for tgd in tgds:
        for body_match in find_homomorphisms(tgd.body, instance):
            frontier_binding = {v: body_match[v] for v in tgd.frontier()}
            if extend_homomorphism(tgd.head, instance, frontier_binding) is None:
                return False
    return True


@settings(max_examples=30, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_chase_result_contains_database(program_seed, database_seed):
    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    result = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    assert all(a in result.instance for a in database)
    assert result.size >= len(database)


@settings(max_examples=30, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_terminated_chase_satisfies_the_tgds(program_seed, database_seed):
    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    result = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    if result.terminated:
        assert satisfies(result.instance, tgds)


@settings(max_examples=20, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_guarded_chase_satisfies_the_tgds(program_seed, database_seed):
    tgds = random_guarded_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    result = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    if result.terminated:
        assert satisfies(result.instance, tgds)


@settings(max_examples=20, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_chase_is_insensitive_to_fact_order(program_seed, database_seed):
    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=6)
    forward = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    reversed_database = Database(reversed(sorted(database, key=str)))
    backward = semi_oblivious_chase(reversed_database, tgds, budget=BUDGET, record_derivation=False)
    if forward.terminated and backward.terminated:
        assert forward.instance == backward.instance
        assert forward.max_depth == backward.max_depth


@settings(max_examples=20, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_chase_is_monotone_in_the_database(program_seed, database_seed):
    """Adding facts never removes chase atoms (semi-oblivious monotonicity)."""
    tgds = random_simple_linear_program(program_seed)
    small = random_database(tgds, database_seed, fact_count=4)
    large = Database(small)
    for atom in random_database(tgds, database_seed + 1, fact_count=3):
        large.add(atom)
    small_result = semi_oblivious_chase(small, tgds, budget=BUDGET, record_derivation=False)
    large_result = semi_oblivious_chase(large, tgds, budget=BUDGET, record_derivation=False)
    if small_result.terminated and large_result.terminated:
        assert set(small_result.instance) <= set(large_result.instance)
