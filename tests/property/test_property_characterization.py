"""Property-based tests of the paper's characterisations.

For random simple-linear, linear and guarded programs the syntactic
verdict (items (3) of Theorems 6.4 / 7.5 / 8.3) must agree with the
observable behaviour of the semi-oblivious chase: a positive verdict
means the chase reaches a fixpoint, a negative verdict means it keeps
growing past a generous budget.  The budget makes the negative
direction an approximation, but for the tiny programs generated here a
finite chase always fits comfortably, so a disagreement is a real bug.
"""

from hypothesis import given, settings, strategies as st

from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import depth_bound, size_bound_factor
from repro.core.decision import syntactic_decision, ucq_decision
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)

BUDGET = ChaseBudget(max_atoms=5_000, max_rounds=3_000)

program_seeds = st.integers(min_value=0, max_value=300)
database_seeds = st.integers(min_value=0, max_value=100)


def check_agreement(database, tgds):
    verdict = syntactic_decision(database, tgds)
    result = semi_oblivious_chase(database, tgds, budget=BUDGET, record_derivation=False)
    if verdict.terminates:
        assert result.terminated, (
            f"verdict says CT_D but the chase exceeded the budget for\n{tgds}\n"
            f"on {sorted(str(a) for a in database)}"
        )
    else:
        assert not result.terminated, (
            f"verdict says not CT_D but the chase terminated with "
            f"{result.size} atoms for\n{tgds}\non {sorted(str(a) for a in database)}"
        )
    return verdict, result


@settings(max_examples=40, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_simple_linear_characterisation(program_seed, database_seed):
    tgds = random_simple_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=5)
    verdict, result = check_agreement(database, tgds)
    if verdict.terminates:
        assert result.size <= len(database) * size_bound_factor(tgds)
        assert result.max_depth <= depth_bound(tgds)


@settings(max_examples=30, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_linear_characterisation(program_seed, database_seed):
    tgds = random_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=5)
    verdict, result = check_agreement(database, tgds)
    if verdict.terminates:
        assert result.size <= len(database) * size_bound_factor(tgds)
        assert result.max_depth <= depth_bound(tgds)


@settings(max_examples=15, deadline=None)
@given(program_seed=st.integers(min_value=0, max_value=150), database_seed=database_seeds)
def test_guarded_characterisation(program_seed, database_seed):
    tgds = random_guarded_program(program_seed, predicate_count=3, max_arity=2, rule_count=4)
    database = random_database(tgds, database_seed, fact_count=4, constant_count=3)
    verdict, result = check_agreement(database, tgds)
    if verdict.terminates:
        assert result.max_depth <= depth_bound(tgds)


@settings(max_examples=30, deadline=None)
@given(program_seed=program_seeds, database_seed=database_seeds)
def test_ucq_decision_matches_syntactic_decision(program_seed, database_seed):
    """Theorems 6.6 / 7.7: the UCQ procedure computes the same answer."""
    tgds = random_linear_program(program_seed)
    database = random_database(tgds, database_seed, fact_count=5)
    syntactic = syntactic_decision(database, tgds)
    ucq = ucq_decision(database, tgds)
    assert syntactic.terminates == ucq.terminates
