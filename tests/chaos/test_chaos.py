"""Chaos suite: seeded fault schedules over the 200-job mixed batch.

Each test replays the same deterministic 200-job manifest
(:func:`repro.generators.workloads.mixed_workload_jobs`) under a named
:class:`~repro.runtime.faults.FaultPlan` and asserts the two invariants
the fault-injection layer promises:

* **zero lost jobs** — every submitted job id comes back with a row;
* **byte-identical summaries** — every job that completes ``ok`` both
  with and without faults produces exactly the fault-free summary
  bytes.

The only tolerated divergence is ``ok`` <-> ``timeout`` flips on the
``random-*`` families, whose 2-second wall-clock budgets are genuinely
timing-sensitive even without faults (the fault-free baseline itself
flips a job across back-to-back runs).  A job that comes back
``error``, or not at all, fails the suite.
"""

from __future__ import annotations

import contextlib
import json
import os
import random

import pytest

from repro.generators.workloads import mixed_workload_jobs
from repro.runtime.executor import BatchExecutor
from repro.runtime.cache import ResultCache
from repro.runtime.faults import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    get_injector,
    reset_injector,
)

JOB_COUNT = 200
WORKLOAD_SEED = 7

#: Statuses a wall-clock-budgeted job may legitimately flip between.
_SOFT_STATUSES = {"ok", "timeout"}


def _run_batch(**executor_kwargs):
    """Run the canonical 200-job manifest; map id -> (status, summary)."""
    jobs = mixed_workload_jobs(job_count=JOB_COUNT, seed=WORKLOAD_SEED)
    executor = BatchExecutor(**executor_kwargs)
    rows = {}
    for result in executor.run(jobs):
        row = result.as_dict()
        rows[row["id"]] = (row["status"], json.dumps(row.get("summary"), sort_keys=True))
    return rows, executor


@contextlib.contextmanager
def active_plan(plan: FaultPlan):
    """Arm ``plan`` via the environment for the with-block, then disarm."""
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan.to_env()
    reset_injector()
    try:
        yield get_injector()
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        reset_injector()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference run (faults explicitly disarmed)."""
    previous = os.environ.pop(ENV_VAR, None)
    reset_injector()
    try:
        rows, _ = _run_batch(workers=2)
    finally:
        if previous is not None:
            os.environ[ENV_VAR] = previous
        reset_injector()
    return rows


def assert_matches_baseline(chaos_rows, baseline):
    """Zero lost jobs; byte-identical summaries for deterministic jobs."""
    assert set(chaos_rows) == set(baseline), (
        f"lost jobs: {sorted(set(baseline) - set(chaos_rows))[:5]} "
        f"extra jobs: {sorted(set(chaos_rows) - set(baseline))[:5]}"
    )
    flips = []
    for job_id in sorted(baseline):
        base_status, base_summary = baseline[job_id]
        chaos_status, chaos_summary = chaos_rows[job_id]
        if base_status == chaos_status == "ok":
            assert chaos_summary == base_summary, (
                f"{job_id}: summary diverged under faults"
            )
        elif base_status == chaos_status:
            # Same non-ok verdict (e.g. both timeout): the partial
            # summaries are wall-clock shaped; status equality is the
            # meaningful invariant.
            continue
        else:
            assert {base_status, chaos_status} <= _SOFT_STATUSES, (
                f"{job_id}: {base_status!r} -> {chaos_status!r} under faults"
            )
            assert job_id.startswith("random-"), (
                f"{job_id}: status flip on a job without a wall-clock budget"
            )
            flips.append(job_id)
    # The soft allowance is for borderline stragglers, not a loophole
    # big enough to hide a broken recovery path.
    assert len(flips) <= 5, f"too many ok/timeout flips: {flips}"


def test_worker_kills_recover_with_checkpoints(tmp_path, baseline):
    """Two hard worker kills at round 2: pool respawns, jobs resume."""
    state = tmp_path / "state"
    plan = FaultPlan(
        faults=(
            FaultSpec(point="worker.round", action="kill", at_round=2, times=2),
        ),
        seed=101,
        state_dir=str(state),
    )
    with active_plan(plan) as injector:
        rows, executor = _run_batch(
            workers=2,
            max_retries=2,
            checkpoint_every_rounds=2,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        assert injector.fired_counts().get("worker.round", 0) == 2
    assert_matches_baseline(rows, baseline)
    assert executor.fault_stats.get("pool_respawns", 0) >= 1
    log = state / "fault_log.jsonl"
    assert log.exists() and len(log.read_text().splitlines()) == 2


def test_spill_and_checkpoint_faults_degrade_gracefully(tmp_path, baseline):
    """ENOSPC on spill + torn checkpoint + a transient round error.

    The cache degrades to memory-only, the truncated checkpoint is
    rejected (the retry starts cold), and the batch output is still
    byte-identical.
    """
    plan = FaultPlan(
        faults=(
            FaultSpec(point="cache.spill_write", action="enospc", times=1, after=3),
            FaultSpec(point="checkpoint.write", action="truncate", times=1),
            FaultSpec(point="worker.round", action="error", times=1, at_round=4),
        ),
        seed=202,
        state_dir=str(tmp_path / "state"),
    )
    cache = ResultCache(path=str(tmp_path / "spill.jsonl"))
    with active_plan(plan) as injector:
        rows, executor = _run_batch(
            workers=2,
            cache=cache,
            max_retries=2,
            checkpoint_every_rounds=2,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        fired = injector.fired_counts()
        assert fired.get("cache.spill_write", 0) == 1
    assert_matches_baseline(rows, baseline)
    assert cache.degraded is True
    assert cache.stats()["degraded"] == 1


def test_randomized_seeded_schedule_is_survivable(tmp_path, baseline):
    """A seeded generator mixes kills and transient errors; no job lost."""
    rng = random.Random(31337)
    faults = tuple(
        FaultSpec(
            point="worker.round",
            action=rng.choice(("error", "kill")),
            times=1,
            after=rng.randint(0, 120),
        )
        for _ in range(5)
    )
    plan = FaultPlan(faults=faults, seed=31337, state_dir=str(tmp_path / "state"))
    with active_plan(plan) as injector:
        rows, executor = _run_batch(
            workers=2,
            max_retries=3,
            checkpoint_every_rounds=3,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        assert injector.fired_total() >= 1
    assert_matches_baseline(rows, baseline)
    recovered = (
        executor.fault_stats.get("retries", 0)
        + executor.fault_stats.get("pool_respawns", 0)
    )
    assert recovered >= 1


def test_stuck_worker_is_recycled(tmp_path, baseline):
    """A worker hanging mid-round trips the watchdog and is replaced."""
    plan = FaultPlan(
        faults=(
            FaultSpec(
                point="worker.round", action="hang", seconds=8.0, times=1, at_round=1
            ),
        ),
        seed=404,
        state_dir=str(tmp_path / "state"),
    )
    # The watchdog threshold must clear the longest *legitimate* job
    # (the random-* families chase for up to 2 wall seconds) or healthy
    # workers get recycled as stuck.
    with active_plan(plan) as injector:
        rows, executor = _run_batch(
            workers=2,
            max_retries=2,
            stuck_timeout_seconds=3.0,
        )
        assert injector.fired_counts().get("worker.round", 0) == 1
    assert_matches_baseline(rows, baseline)
    assert executor.fault_stats.get("stuck_recycles", 0) >= 1
    assert executor.fault_stats.get("pool_respawns", 0) >= 1


def test_faults_off_plan_object_is_inert(tmp_path):
    """An armed-then-disarmed environment leaves the injector disabled."""
    plan = FaultPlan(
        faults=(FaultSpec(point="worker.round", action="error"),),
        seed=1,
        state_dir=str(tmp_path / "state"),
    )
    with active_plan(plan) as injector:
        assert injector.enabled
    assert not get_injector().enabled
    assert get_injector().fire("worker.round", job="x", round=1) is None
