"""Tests for the ChTrm decision procedures (Theorems 6.6, 7.7, 8.5)."""

import pytest

from repro.model.parser import parse_database, parse_program
from repro.core.classify import TGDClass
from repro.core.decision import (
    DecisionMethod,
    decide_termination,
    naive_decision,
    syntactic_decision,
    ucq_decision,
)
from repro.core.ucq import build_termination_ucq
from repro.generators.families import (
    example_7_1,
    intro_nonterminating_example,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)


class TestSyntacticDecision:
    def test_simple_linear_yes(self):
        database, tgds = sl_lower_bound(1, 2, 1)
        verdict = syntactic_decision(database, tgds)
        assert verdict.terminates is True
        assert verdict.method is DecisionMethod.WEAK_ACYCLICITY
        assert verdict.tgd_class is TGDClass.SIMPLE_LINEAR

    def test_simple_linear_no(self):
        database, tgds = intro_nonterminating_example()
        verdict = syntactic_decision(database, tgds)
        assert verdict.terminates is False

    def test_linear_example_7_1_is_positive(self):
        """Example 7.1 needs simplification: plain weak-acyclicity says no."""
        database, tgds = example_7_1()
        verdict = syntactic_decision(database, tgds)
        assert verdict.terminates is True
        assert verdict.method is DecisionMethod.SIMPLIFICATION

    def test_linear_family_is_positive(self):
        database, tgds = linear_lower_bound(1, 2, 1)
        verdict = syntactic_decision(database, tgds)
        assert verdict.terminates is True

    def test_guarded_database_dependence(
        self, guarded_program, guarded_supported_database, guarded_unsupported_database
    ):
        positive = syntactic_decision(guarded_unsupported_database, guarded_program)
        negative = syntactic_decision(guarded_supported_database, guarded_program)
        assert positive.terminates is True
        assert negative.terminates is False
        assert positive.method is DecisionMethod.LINEARIZATION
        assert "type_count" in positive.details

    def test_arbitrary_tgds_are_rejected(self):
        database, tgds = prop45_family(3)
        with pytest.raises(ValueError):
            syntactic_decision(database, tgds)


class TestNaiveDecision:
    def test_positive_case_materialises(self):
        database, tgds = sl_lower_bound(1, 2, 1)
        verdict = naive_decision(database, tgds)
        assert verdict.terminates is True
        assert verdict.details["chase_result"].terminated

    def test_unknown_when_cap_is_below_theoretical_bound(self):
        database, tgds = intro_nonterminating_example()
        verdict = naive_decision(database, tgds, practical_cap=100)
        assert verdict.terminates is None

    def test_arbitrary_tgds_are_supported(self):
        database, tgds = prop45_family(4)
        verdict = naive_decision(database, tgds)
        assert verdict.terminates is True
        assert verdict.details["theoretical_bound"] is None


class TestUCQDecision:
    def test_matches_syntactic_for_simple_linear(self):
        database, tgds = intro_nonterminating_example()
        assert ucq_decision(database, tgds).terminates is False

    def test_prebuilt_query_can_be_reused(self):
        database, tgds = example_7_1()
        ucq = build_termination_ucq(tgds)
        verdict = ucq_decision(database, tgds, ucq=ucq)
        assert verdict.terminates is True
        assert verdict.method is DecisionMethod.UCQ


class TestDispatch:
    def test_auto_uses_syntactic_for_guarded_classes(self):
        database, tgds = example_7_1()
        assert decide_termination(database, tgds).method is DecisionMethod.SIMPLIFICATION

    def test_auto_falls_back_to_naive_for_arbitrary(self):
        database, tgds = prop45_family(3)
        verdict = decide_termination(database, tgds)
        assert verdict.method is DecisionMethod.NAIVE_CHASE
        assert verdict.terminates is True

    def test_explicit_methods(self):
        database, tgds = example_7_1()
        assert decide_termination(database, tgds, method="naive").terminates is True
        assert decide_termination(database, tgds, method="ucq").terminates is True
        assert decide_termination(database, tgds, method="syntactic").terminates is True

    def test_unknown_method_is_rejected(self):
        database, tgds = example_7_1()
        with pytest.raises(ValueError):
            decide_termination(database, tgds, method="magic")
