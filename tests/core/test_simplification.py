"""Tests for the simplification transformation (Definition 7.2, Prop. 7.3)."""

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.parser import parse_database, parse_program
from repro.model.terms import Constant, Variable
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.simplification import (
    id_tuple,
    simplify_atom,
    simplify_database,
    simplify_program,
    simplify_tgd,
    specializations,
    unique_tuple,
)

A, B, C = Constant("a"), Constant("b"), Constant("c")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTupleHelpers:
    def test_unique_keeps_first_occurrences(self):
        assert unique_tuple((X, Y, X, Z, Y)) == (X, Y, Z)

    def test_id_tuple_matches_paper_example(self):
        # Paper: id((x, y, x, z, y)) = (1, 2, 1, 3, 2).
        assert id_tuple((X, Y, X, Z, Y)) == (1, 2, 1, 3, 2)

    def test_all_distinct(self):
        assert unique_tuple((X, Y)) == (X, Y)
        assert id_tuple((X, Y)) == (1, 2)

    def test_all_equal(self):
        assert unique_tuple((A, A, A)) == (A,)
        assert id_tuple((A, A, A)) == (1, 1, 1)


class TestSimplifyAtom:
    def test_repeated_terms_move_into_predicate(self):
        simplified = simplify_atom(atom("R", A, A, B, C))
        assert simplified.predicate.name == "R[1,1,2,3]"
        assert simplified.predicate.arity == 3
        assert simplified.args == (A, B, C)

    def test_distinct_terms(self):
        simplified = simplify_atom(atom("R", A, B))
        assert simplified.predicate.name == "R[1,2]"
        assert simplified.args == (A, B)

    def test_equal_simplifications_for_equal_equality_types(self):
        first = simplify_atom(atom("R", A, A))
        second = simplify_atom(atom("R", B, B))
        assert first.predicate == second.predicate


class TestSpecializations:
    @pytest.mark.parametrize(
        "count,expected", [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15)]
    )
    def test_number_of_specializations_is_a_bell_number(self, count, expected):
        variables = [Variable(f"v{i}") for i in range(count)]
        assert len(list(specializations(variables))) == expected

    def test_first_variable_is_fixed(self):
        for mapping in specializations([X, Y]):
            assert mapping[X] == X

    def test_specializations_only_identify_with_earlier_variables(self):
        for mapping in specializations([X, Y, Z]):
            assert mapping[Y] in {X, Y}
            assert mapping[Z] in {X, Y, Z}

    def test_repeated_input_variables_are_deduplicated(self):
        assert len(list(specializations([X, Y, X]))) == 2


class TestSimplifyTGD:
    def test_rejects_non_linear(self):
        [tgd] = parse_program("R(x, y), P(x) -> S(x, y)")
        with pytest.raises(ValueError):
            simplify_tgd(tgd)

    def test_example_7_1(self):
        [tgd] = parse_program("R(x, x) -> exists z . R(z, x)")
        simplified = simplify_tgd(tgd)
        assert len(simplified) == 1
        [rule] = simplified
        assert rule.body[0].predicate.name == "R[1,1]"
        assert rule.head[0].predicate.name == "R[1,2]"
        assert rule.is_simple_linear

    def test_simple_body_generates_bell_many_rules(self):
        [tgd] = parse_program("R(x, y) -> exists z . S(y, z)")
        simplified = simplify_tgd(tgd)
        assert len(simplified) == 2  # identity and x = y specialisations
        assert all(rule.is_simple_linear for rule in simplified)

    def test_head_repetitions_are_simplified_too(self):
        [tgd] = parse_program("R(x, y) -> S(y, y)")
        identity_rule = simplify_tgd(tgd)[0]
        assert identity_rule.head[0].predicate.name == "S[1,1]"

    def test_program_and_database_simplification(self):
        program = parse_program("R(x, x) -> exists z . R(z, x)")
        database = parse_database("R(a, b).\nR(c, c).")
        simple_program = simplify_program(program)
        simple_database = simplify_database(database)
        assert simple_program.is_simple_linear
        names = {a.predicate.name for a in simple_database}
        assert names == {"R[1,2]", "R[1,1]"}


class TestProposition73:
    """Simplification preserves finiteness and maximal depth."""

    CASES = [
        ("R(x, x) -> exists z . R(z, x)", "R(a, b)."),
        ("R(x, x) -> exists z . R(z, x)", "R(a, a)."),
        ("R(x, y) -> exists z . S(y, z)\nS(x, x) -> exists w . R(w, x)", "R(a, b).\nS(c, c)."),
        ("R(x, y) -> exists z . R(y, z)", "R(a, a)."),
        ("T(x, y, x) -> exists z . T(y, z, y)", "T(a, b, a).\nT(c, c, c)."),
    ]

    @pytest.mark.parametrize("program_text,database_text", CASES)
    def test_preserves_finiteness_and_depth(self, program_text, database_text):
        program = parse_program(program_text)
        database = parse_database(database_text)
        budget = ChaseBudget(max_atoms=2_000)
        original = semi_oblivious_chase(database, program, budget=budget)
        simplified = semi_oblivious_chase(
            simplify_database(database), simplify_program(program), budget=budget
        )
        assert original.terminated == simplified.terminated
        if original.terminated:
            assert original.max_depth == simplified.max_depth
