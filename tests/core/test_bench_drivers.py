"""Tests for the benchmark drivers (they back EXPERIMENTS.md and examples)."""

from repro.bench.drivers import (
    SweepRow,
    chase_size_sweep,
    decision_scaling_sweep,
    depth_bound_rows,
    depth_sweep,
    format_table,
    lower_bound_rows,
    ucq_data_complexity_rows,
    variant_comparison_rows,
)
from repro.core.bounds import magnitude
from repro.generators.families import example_7_1, sl_lower_bound
from repro.generators.scenarios import data_exchange_scenario


class TestFormatting:
    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_has_header_and_rows(self):
        rows = [
            SweepRow(label="x", parameters={"n": 1}, measured={"value": 10}),
            SweepRow(label="x", parameters={"n": 2}, measured={"value": 20, "extra": "yes"}),
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "value" in lines[0] and "extra" in lines[0]

    def test_magnitude_small_and_large(self):
        assert magnitude(12345) == "12345"
        assert magnitude(10 ** 100).startswith("~10^")


class TestSweeps:
    def test_chase_size_sweep_ratio_is_flat(self):
        rows = chase_size_sweep(lambda size: sl_lower_bound(1, 2, size), [1, 2, 4])
        ratios = {row.measured["ratio"] for row in rows}
        assert len(ratios) == 1
        assert all(row.measured["terminated"] for row in rows)

    def test_lower_bound_rows_meet_bounds(self):
        rows = lower_bound_rows("sl", [(1, 1, 1), (1, 2, 1)])
        assert all(row.measured["meets_bound"] for row in rows)

    def test_depth_sweep_matches_prop45(self):
        rows = depth_sweep([2, 3, 4])
        assert [row.measured["maxdepth"] for row in rows] == [1, 2, 3]

    def test_depth_bound_rows(self):
        rows = depth_bound_rows([("example_7_1", *example_7_1())])
        assert rows[0].measured["within_bound"]

    def test_decision_scaling_sweep_reports_both_methods(self):
        rows = decision_scaling_sweep(lambda size: sl_lower_bound(1, 1, size), [1, 2])
        for row in rows:
            assert "syntactic_seconds" in row.measured
            assert "naive_seconds" in row.measured

    def test_ucq_data_complexity_rows(self):
        scenario = data_exchange_scenario(employees=3, departments=2, weakly_acyclic=False)
        rows = ucq_data_complexity_rows(scenario.tgds, [(len(scenario.database), scenario.database)])
        assert rows[0].measured["terminates"] is False

    def test_variant_comparison_rows(self):
        scenario = data_exchange_scenario(employees=5, departments=2)
        rows = variant_comparison_rows([("exchange", scenario.database, scenario.tgds)])
        measured = rows[0].measured
        assert measured["restricted_size"] <= measured["semi_oblivious_size"]
        assert measured["semi_oblivious_size"] <= measured["oblivious_size"]
