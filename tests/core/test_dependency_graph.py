"""Tests for the dependency graph and the predicate graph (Section 6)."""

from repro.model.atoms import Position, Predicate
from repro.model.parser import parse_program
from repro.core.dependency_graph import DependencyGraph, PredicateGraph

R = Predicate("R", 2)
S = Predicate("S", 2)
P = Predicate("P", 1)


def position(predicate, index):
    return Position(predicate, index)


class TestDependencyGraphEdges:
    def test_normal_edges_follow_frontier_variables(self):
        graph = DependencyGraph(parse_program("R(x, y) -> S(y, x)"))
        normal = {(e.source, e.target) for e in graph.normal_edges()}
        assert (position(R, 1), position(S, 2)) in normal
        assert (position(R, 2), position(S, 1)) in normal
        assert not graph.special_edges()

    def test_special_edges_point_at_existential_positions(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . S(y, z)"))
        special = {(e.source, e.target) for e in graph.special_edges()}
        assert special == {(position(R, 2), position(S, 2))}
        normal = {(e.source, e.target) for e in graph.normal_edges()}
        assert normal == {(position(R, 2), position(S, 1))}

    def test_non_frontier_body_variables_produce_no_edges(self):
        graph = DependencyGraph(parse_program("R(x, y) -> P(x)"))
        assert all(e.source != position(R, 2) for e in graph.edges)

    def test_multiple_head_atoms(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . S(y, z), P(y)"))
        targets = {e.target for e in graph.edges if e.source == position(R, 2)}
        assert targets == {position(S, 1), position(S, 2), position(P, 1)}

    def test_nodes_cover_whole_schema(self):
        graph = DependencyGraph(parse_program("R(x, y) -> P(x)"))
        assert graph.nodes == {position(R, 1), position(R, 2), position(P, 1)}


class TestSpecialCycles:
    def test_self_loop_special_edge(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . R(y, z)"))
        flagged = graph.positions_on_special_cycle()
        assert position(R, 2) in flagged
        assert graph.has_special_cycle()

    def test_weakly_acyclic_program_has_no_special_cycle(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . S(y, z)"))
        assert not graph.has_special_cycle()
        assert graph.positions_on_special_cycle() == set()

    def test_cycle_through_two_rules(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> R(x, y)")
        graph = DependencyGraph(program)
        assert graph.has_special_cycle()

    def test_normal_only_cycle_is_not_flagged(self):
        program = parse_program("R(x, y) -> S(y, x)\nS(x, y) -> R(y, x)")
        graph = DependencyGraph(program)
        assert not graph.has_special_cycle()

    def test_witness_cycle_contains_a_special_edge(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . R(y, z)"))
        witness = graph.witness_special_cycle()
        assert witness is not None
        assert any(e.special for e in witness)
        # The witness is a cycle: each edge's target feeds the next source.
        for first, second in zip(witness, witness[1:]):
            assert first.target == second.source
        assert witness[-1].target == witness[0].source

    def test_witness_is_none_when_acyclic(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . S(y, z)"))
        assert graph.witness_special_cycle() is None

    def test_strongly_connected_components_partition_nodes(self):
        graph = DependencyGraph(parse_program("R(x, y) -> exists z . R(y, z)"))
        components = graph.strongly_connected_components()
        covered = set().union(*components)
        assert covered == graph.nodes
        assert sum(len(c) for c in components) == len(graph.nodes)


class TestPredicateGraph:
    def test_successors(self):
        graph = PredicateGraph(parse_program("R(x, y) -> exists z . S(y, z), P(y)"))
        assert graph.successors(R) == {S, P}
        assert graph.successors(S) == set()

    def test_reachability_is_reflexive(self):
        graph = PredicateGraph(parse_program("R(x, y) -> S(y, x)"))
        assert graph.reaches(R, R)
        assert graph.reaches(S, S)

    def test_reachability_is_transitive(self):
        program = parse_program("R(x, y) -> S(y, x)\nS(x, y) -> P(x)")
        graph = PredicateGraph(program)
        assert graph.reaches(R, P)
        assert not graph.reaches(P, R)

    def test_reachable_from(self):
        program = parse_program("R(x, y) -> S(y, x)\nS(x, y) -> P(x)")
        graph = PredicateGraph(program)
        assert graph.reachable_from(R) == {R, S, P}
        assert graph.reachable_from(P) == {P}

    def test_predicates_reaching(self):
        program = parse_program("R(x, y) -> S(y, x)\nS(x, y) -> P(x)")
        graph = PredicateGraph(program)
        assert graph.predicates_reaching({P}) == {R, S, P}
        assert graph.predicates_reaching({R}) == {R}
