"""Unit tests and golden verdicts for the static termination analysis.

The analysis stack is three modules deep — augmented/classic rank
machinery (:mod:`repro.core.stratification`), the critical-instance MFA
check (:mod:`repro.core.acyclicity`), and the layered verdict front end
(:mod:`repro.core.termination_analysis`).  The golden table at the
bottom pins a verdict per (family, variant) for every generator family
and scenario in the repo, and spot-checks each ``terminating`` verdict
against an actual chase run bounded by the derived depth.
"""

import pytest

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget, ChaseOutcome
from repro.core.acyclicity import (
    MFA_ACYCLIC,
    MFA_CYCLIC,
    MFA_UNDETERMINED,
    critical_instance_facts,
    mfa_check,
)
from repro.core.dependency_graph import DependencyGraph
from repro.core.stratification import (
    AugmentedDependencyGraph,
    chase_graph_edges,
    is_augmented_weakly_acyclic,
    position_ranks,
    rank_depth_bound,
    stratification_report,
)
from repro.core.termination_analysis import (
    ANALYSIS_VARIANTS,
    DIVERGING,
    TERMINATING,
    UNDETERMINED,
    TerminationAnalyzer,
    analyze_termination,
)
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.generators.families import (
    example_7_1,
    fairness_example,
    guarded_lower_bound,
    intro_nonterminating_example,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)
from repro.generators.scenarios import (
    data_exchange_scenario,
    university_ontology_scenario,
)
from repro.generators.turing import (
    halting_machine,
    looping_machine,
    machine_database,
    sigma_star,
)
from repro.generators.workloads import restricted_heavy
from repro.model.parser import parse_database, parse_program

# The canonical gap between the labelling disciplines: weakly acyclic
# (the semi-oblivious chase reuses the per-x null), yet the oblivious
# chase invents a fresh null per (x, y) binding and diverges.
NON_FRONTIER_FEED = "R(x, y) -> exists z . R(x, z)"


class TestAugmentedGraph:
    def test_non_frontier_feed_separates_the_disciplines(self):
        program = parse_program(NON_FRONTIER_FEED)
        assert is_weakly_acyclic(program)
        assert not is_augmented_weakly_acyclic(program)

    def test_augmented_adds_special_sources_only(self):
        program = parse_program(NON_FRONTIER_FEED)
        classic = DependencyGraph(program)
        augmented = AugmentedDependencyGraph(program)
        classic_special = {(e.source, e.target) for e in classic.edges if e.special}
        augmented_special = {(e.source, e.target) for e in augmented.edges if e.special}
        assert classic_special < augmented_special
        # The non-frontier position R[2] now feeds the existential.
        sources = {source.index for source, _ in augmented_special}
        assert sources == {1, 2}

    def test_augmented_acyclic_on_plain_chain(self):
        program = parse_program("P(x) -> exists z . Q(x, z)\nQ(x, y) -> S(y)")
        assert is_augmented_weakly_acyclic(program)


class TestPositionRanks:
    def test_rank_counts_special_edges_along_paths(self):
        program = parse_program(
            "P(x) -> exists z . Q(x, z)\nQ(x, y) -> exists w . S(y, w)"
        )
        ranks = position_ranks(DependencyGraph(program))
        assert ranks is not None
        by_name = {f"{p.predicate.name}[{p.index}]": r for p, r in ranks.items()}
        assert by_name["P[1]"] == 0
        assert by_name["Q[2]"] == 1  # one existential invention
        assert by_name["S[2]"] == 2  # nested inventions stack
        assert rank_depth_bound(DependencyGraph(program)) == 2

    def test_special_cycle_has_no_ranks(self):
        database, tgds = intro_nonterminating_example()
        assert position_ranks(DependencyGraph(tgds)) is None
        assert rank_depth_bound(DependencyGraph(tgds)) is None

    def test_within_restricts_to_reachable_positions(self):
        # The special cycle lives entirely on T; restricting to P's and
        # Q's positions leaves an acyclic (indeed edgeless) subgraph.
        program = parse_program(
            "P(x) -> Q(x)\nT(x, y) -> exists z . T(y, z)"
        )
        graph = DependencyGraph(program)
        assert rank_depth_bound(graph) is None
        schema = {p for p in program.schema() if p.name in ("P", "Q")}
        within = {pos for pred in schema for pos in pred.positions()}
        assert rank_depth_bound(graph, within=within) == 0


class TestChaseGraph:
    def test_example_7_1_refinement_prunes_the_self_edge(self):
        # R(x, x) -> exists z . R(z, x): the produced atom R(⊥, x) can
        # never re-match the repeated body R(x, x), because the fresh
        # null equals nothing else.
        _, tgds = example_7_1()
        edges = chase_graph_edges(tgds)
        for rule_id, targets in edges.items():
            assert rule_id not in targets, f"{rule_id} should not feed itself"

    def test_unrepeated_body_keeps_the_edge(self):
        program = parse_program("R(x, y) -> exists z . R(z, x)")
        (rule,) = list(program)
        edges = chase_graph_edges(program)
        assert rule.rule_id in edges[rule.rule_id]

    def test_stratification_bounds_example_7_1_for_the_oblivious_chase(self):
        _, tgds = example_7_1()
        # The augmented graph alone rejects it...
        assert not is_augmented_weakly_acyclic(tgds)
        # ...but every stratum is a singleton without a self-edge.
        report = stratification_report(tgds, augmented=True)
        assert report.stratified
        assert report.failed_stratum is None
        assert report.depth_bound == 1
        assert all(len(s) == 1 for s in report.strata)

    def test_intro_example_is_not_stratified(self):
        _, tgds = intro_nonterminating_example()
        report = stratification_report(tgds)
        assert not report.stratified
        assert report.failed_stratum is not None
        assert report.depth_bound is None


class TestMFA:
    def test_critical_instance_skips_head_only_predicates(self):
        program = parse_program("P(x) -> exists z . Q(x, z)")
        facts = critical_instance_facts(program)
        assert [p.name for p, _ in facts] == ["P"]

    def test_frontier_mode_accepts_the_non_frontier_feed(self):
        # Classic MFA: the semi-oblivious chase reuses the per-x null,
        # so the critical chase saturates at depth 1.
        program = parse_program(NON_FRONTIER_FEED)
        result = mfa_check(program, mode="frontier")
        assert result.status == MFA_ACYCLIC
        assert result.depth_bound == 1

    def test_full_mode_rejects_the_non_frontier_feed(self):
        # Oblivious labelling: each fresh null is a new binding for y,
        # so the rule re-nests its own existential — cyclic.
        program = parse_program(NON_FRONTIER_FEED)
        result = mfa_check(program, mode="full")
        assert result.status == MFA_CYCLIC
        assert result.cyclic_rule_id is not None

    def test_acyclic_saturation_reports_a_depth_bound(self):
        program = parse_program("P(x) -> exists z . Q(x, z)\nQ(x, y) -> exists w . S(y, w)")
        result = mfa_check(program, mode="full")
        assert result.status == MFA_ACYCLIC
        assert result.depth_bound == 2

    def test_caps_degrade_to_undetermined(self):
        _, tgds = sl_lower_bound(2, 2, 2)
        result = mfa_check(tgds, mode="frontier", max_facts=3)
        assert result.status == MFA_UNDETERMINED
        assert result.reason is not None
        result = mfa_check(tgds, mode="frontier", max_triggers=2)
        assert result.status == MFA_UNDETERMINED


class TestAnalyzeTermination:
    def test_unknown_variant_is_an_error(self):
        program = parse_program(NON_FRONTIER_FEED)
        with pytest.raises(ValueError):
            analyze_termination(None, program, variant="standard")

    def test_uniform_verdict_skips_database_layers(self):
        database, tgds = intro_nonterminating_example()
        uniform = analyze_termination(None, tgds, "semi-oblivious")
        # Without a database the characterization cannot fire, and the
        # set is not uniformly terminating: undetermined, not diverging.
        assert uniform.verdict == UNDETERMINED
        aware = analyze_termination(database, tgds, "semi-oblivious")
        assert aware.verdict == DIVERGING

    def test_classic_criteria_never_leak_into_the_oblivious_verdict(self):
        # NON_FRONTIER_FEED terminates semi-obliviously but the
        # oblivious chase diverges on R(a, b); a "terminating" oblivious
        # verdict here would be unsound.
        program = parse_program(NON_FRONTIER_FEED)
        database = parse_database("R(a, b).")
        semi = analyze_termination(database, program, "semi-oblivious")
        assert semi.verdict == TERMINATING
        oblivious = analyze_termination(database, program, "oblivious")
        assert oblivious.verdict == UNDETERMINED
        runner = VARIANT_RUNNERS["oblivious"]
        result = runner(
            database,
            program,
            budget=ChaseBudget(max_atoms=500, max_rounds=500),
            record_derivation=False,
        )
        assert not result.terminated

    def test_diverging_is_never_issued_for_the_restricted_chase(self):
        database, tgds = intro_nonterminating_example()
        report = analyze_termination(database, tgds, "restricted")
        assert report.verdict == UNDETERMINED

    def test_trace_records_every_layer_tried(self):
        database, tgds = prop45_family(3)
        report = analyze_termination(database, tgds, "semi-oblivious")
        assert report.verdict == UNDETERMINED
        joined = "\n".join(report.trace)
        assert "weak-acyclicity" in joined
        assert "stratification" in joined
        assert "mfa" in joined

    def test_as_dict_is_json_friendly_even_for_huge_bounds(self):
        import json

        database, tgds = linear_lower_bound(2, 2, 2)
        report = analyze_termination(database, tgds, "semi-oblivious")
        document = json.dumps(report.as_dict(), sort_keys=True)
        assert '"verdict": "terminating"' in document


class TestAnalyzerMemo:
    def test_memo_hits_on_repeat_and_respects_variants(self):
        analyzer = TerminationAnalyzer()
        database, tgds = sl_lower_bound(2, 2, 2)
        first = analyzer.analyze(database, tgds, "semi-oblivious")
        again = analyzer.analyze(database, tgds, "semi-oblivious")
        assert again is first
        other = analyzer.analyze(database, tgds, "oblivious")
        assert other.variant == "oblivious"
        assert analyzer.hits == 1
        assert analyzer.misses == 2

    def test_memo_is_invariant_under_rule_reordering(self):
        from repro.model.tgd import TGDSet

        analyzer = TerminationAnalyzer()
        database, tgds = sl_lower_bound(2, 2, 2)
        analyzer.analyze(database, tgds, "semi-oblivious")
        reordered = TGDSet(list(reversed(list(tgds))), name="reordered")
        report = analyzer.analyze(database, reordered, "semi-oblivious")
        assert analyzer.hits == 1
        assert report.verdict == TERMINATING

    def test_memo_is_bounded(self):
        analyzer = TerminationAnalyzer(max_entries=2)
        for n in (1, 2, 3):
            database, tgds = sl_lower_bound(n, 1, 1)
            analyzer.analyze(database, tgds, "semi-oblivious")
        assert len(analyzer._memo) == 2


# --------------------------------------------------------------------------
# Golden verdict table: every family and scenario in the repo, pinned
# per variant.  A changed verdict is a soundness-relevant event and must
# be reviewed against the transfer matrix in termination_analysis.
# --------------------------------------------------------------------------


def _scenario(maker, **kwargs):
    scenario = maker(**kwargs)
    return scenario.database, scenario.tgds


def _turing(machine):
    return machine_database(machine), sigma_star()


GOLDEN = [
    # (name, case factory, oblivious, semi-oblivious, restricted)
    ("intro", intro_nonterminating_example, DIVERGING, DIVERGING, UNDETERMINED),
    ("fairness", fairness_example, DIVERGING, DIVERGING, UNDETERMINED),
    ("example_7_1", example_7_1, TERMINATING, TERMINATING, TERMINATING),
    ("prop45_3", lambda: prop45_family(3), UNDETERMINED, UNDETERMINED, UNDETERMINED),
    ("sl_lower_222", lambda: sl_lower_bound(2, 2, 2), TERMINATING, TERMINATING, TERMINATING),
    (
        "linear_lower_222",
        lambda: linear_lower_bound(2, 2, 2),
        UNDETERMINED,
        TERMINATING,
        TERMINATING,
    ),
    (
        "guarded_lower_111",
        lambda: guarded_lower_bound(1, 1, 1),
        UNDETERMINED,
        UNDETERMINED,
        UNDETERMINED,
    ),
    ("restricted_heavy_32", lambda: restricted_heavy(3, 2), UNDETERMINED, TERMINATING, TERMINATING),
    (
        "university",
        lambda: _scenario(university_ontology_scenario, students=5, courses=3, professors=2),
        TERMINATING,
        TERMINATING,
        TERMINATING,
    ),
    (
        "data_exchange_wa",
        lambda: _scenario(data_exchange_scenario, employees=6, departments=2),
        TERMINATING,
        TERMINATING,
        TERMINATING,
    ),
    (
        "data_exchange_cyclic",
        lambda: _scenario(
            data_exchange_scenario, employees=6, departments=2, weakly_acyclic=False
        ),
        DIVERGING,
        DIVERGING,
        UNDETERMINED,
    ),
    ("turing_halting", lambda: _turing(halting_machine()), UNDETERMINED, UNDETERMINED, UNDETERMINED),
    ("turing_looping", lambda: _turing(looping_machine()), UNDETERMINED, UNDETERMINED, UNDETERMINED),
]

#: Verification budget for golden ``terminating`` verdicts whose chase
#: is cheap enough to actually run (skip the big lower-bound families).
GOLDEN_RUNNABLE = {
    "example_7_1",
    "sl_lower_222",
    "restricted_heavy_32",
    "university",
    "data_exchange_wa",
}


@pytest.mark.parametrize(
    "name,case,expected",
    [
        pytest.param(name, case, dict(zip(ANALYSIS_VARIANTS, (obl, semi, restr))), id=name)
        for name, case, obl, semi, restr in GOLDEN
    ],
)
def test_golden_verdicts(name, case, expected):
    database, tgds = case()
    for variant in ANALYSIS_VARIANTS:
        report = analyze_termination(database, tgds, variant)
        assert report.verdict == expected[variant], (
            f"{name}/{variant}: expected {expected[variant]}, got {report.verdict} "
            f"via {report.method}\n" + "\n".join(report.trace)
        )
        if report.verdict == TERMINATING:
            assert report.depth_bound is not None
        if report.verdict == TERMINATING and name in GOLDEN_RUNNABLE:
            runner = VARIANT_RUNNERS[variant]
            result = runner(
                database,
                tgds,
                budget=ChaseBudget(max_atoms=200_000, max_depth=report.depth_bound),
                record_derivation=False,
            )
            assert result.outcome is ChaseOutcome.TERMINATED, (
                f"{name}/{variant}: verdict terminating (bound "
                f"{report.depth_bound}) but the chase stopped on {result.outcome}"
            )


def test_golden_diverging_verdicts_match_the_chase():
    small = ChaseBudget(max_atoms=4_000, max_rounds=2_000)
    for name, case, *verdicts in GOLDEN:
        expected = dict(zip(ANALYSIS_VARIANTS, verdicts))
        for variant, verdict in expected.items():
            if verdict != DIVERGING:
                continue
            database, tgds = case()
            result = VARIANT_RUNNERS[variant](
                database, tgds, budget=small, record_derivation=False
            )
            assert not result.terminated, (
                f"{name}/{variant}: verdict diverging but the chase terminated "
                f"with {result.size} atoms"
            )


def test_analysis_coverage_beats_the_weak_acyclicity_baseline():
    """Acceptance floor: on the standard 200-job manifest the layered
    analysis must resolve (terminating or diverging) strictly more jobs
    than uniform classic weak acyclicity alone — the whole point of the
    characterization / rank / stratification / MFA stack."""
    from repro.core.weak_acyclicity import is_weakly_acyclic
    from repro.generators.workloads import mixed_workload_jobs

    jobs = mixed_workload_jobs(200, seed=7)
    wa_resolved = sum(1 for job in jobs if is_weakly_acyclic(job.program))
    verdicts = {TERMINATING: 0, DIVERGING: 0, UNDETERMINED: 0}
    for job in jobs:
        report = analyze_termination(job.database, job.program, job.variant)
        verdicts[report.verdict] += 1
    resolved = verdicts[TERMINATING] + verdicts[DIVERGING]
    assert resolved > wa_resolved
    # Pin the measured coverage (EXPERIMENTS.md quotes these numbers);
    # small drifts from generator changes are fine, silent collapses
    # of a whole layer are not.
    assert wa_resolved == 75
    assert resolved >= 150
    assert verdicts[DIVERGING] >= 40
