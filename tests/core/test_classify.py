"""Tests for the syntactic classifier."""

from repro.model.parser import parse_program
from repro.core.classify import TGDClass, classify
from repro.generators.families import (
    guarded_lower_bound,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)
from repro.generators.turing import sigma_star


class TestClassify:
    def test_simple_linear(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        assert classify(program) is TGDClass.SIMPLE_LINEAR

    def test_linear_but_not_simple(self):
        program = parse_program("R(x, x) -> exists z . R(z, x)")
        assert classify(program) is TGDClass.LINEAR

    def test_guarded_but_not_linear(self):
        program = parse_program("R(x, y), P(x) -> exists z . R(y, z)")
        assert classify(program) is TGDClass.GUARDED

    def test_arbitrary(self):
        program = parse_program("R(x, y), R(y, z) -> S(x, z)")
        assert classify(program) is TGDClass.ARBITRARY

    def test_mixed_set_takes_least_restrictive(self):
        program = parse_program(
            "R(x, y) -> exists z . S(y, z)\nR(x, x) -> exists z . R(z, x)"
        )
        assert classify(program) is TGDClass.LINEAR

    def test_class_ordering(self):
        assert TGDClass.SIMPLE_LINEAR.is_subclass_of(TGDClass.GUARDED)
        assert TGDClass.LINEAR.is_subclass_of(TGDClass.ARBITRARY)
        assert not TGDClass.GUARDED.is_subclass_of(TGDClass.LINEAR)
        assert TGDClass.GUARDED.is_subclass_of(TGDClass.GUARDED)


class TestPaperFamilies:
    def test_sl_family_is_simple_linear(self):
        _, tgds = sl_lower_bound(2, 2)
        assert classify(tgds) is TGDClass.SIMPLE_LINEAR

    def test_linear_family_is_linear_not_simple(self):
        _, tgds = linear_lower_bound(1, 2)
        assert classify(tgds) is TGDClass.LINEAR

    def test_guarded_family_is_guarded_not_linear(self):
        _, tgds = guarded_lower_bound(1, 1)
        assert classify(tgds) is TGDClass.GUARDED

    def test_prop45_family_is_arbitrary(self):
        _, tgds = prop45_family(3)
        assert classify(tgds) is TGDClass.ARBITRARY

    def test_sigma_star_is_arbitrary(self):
        assert classify(sigma_star()) is TGDClass.ARBITRARY
