"""Tests for uniform and non-uniform weak-acyclicity (Definition 6.1)."""

from repro.model.parser import parse_database, parse_program
from repro.core.weak_acyclicity import (
    is_weakly_acyclic,
    is_weakly_acyclic_wrt,
    supporting_database_predicates,
    weak_acyclicity_report,
)


class TestUniformWeakAcyclicity:
    def test_acyclic_program(self):
        assert is_weakly_acyclic(parse_program("R(x, y) -> exists z . S(y, z)"))

    def test_self_loop(self):
        assert not is_weakly_acyclic(parse_program("R(x, y) -> exists z . R(y, z)"))

    def test_normal_cycle_is_fine(self):
        program = parse_program("R(x, y) -> S(y, x)\nS(x, y) -> R(y, x)")
        assert is_weakly_acyclic(program)

    def test_two_rule_special_cycle(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> R(x, y)")
        assert not is_weakly_acyclic(program)


class TestNonUniformWeakAcyclicity:
    def test_supported_cycle(self):
        program = parse_program("R(x, y) -> exists z . R(y, z)")
        database = parse_database("R(a, b).")
        assert not is_weakly_acyclic_wrt(database, program)

    def test_unsupported_cycle(self):
        """The cycle exists but no database atom can ever reach it."""
        program = parse_program(
            "R(x, y) -> exists z . R(y, z)\nP(x) -> Q(x)"
        )
        database = parse_database("P(a).")
        assert not is_weakly_acyclic(program)
        assert is_weakly_acyclic_wrt(database, program)

    def test_support_through_reachability(self):
        """A predicate supports the cycle through a chain of rules."""
        program = parse_program(
            "Start(x) -> exists y . Mid(x, y)\n"
            "Mid(x, y) -> R(x, y)\n"
            "R(x, y) -> exists z . R(y, z)"
        )
        database = parse_database("Start(a).")
        assert not is_weakly_acyclic_wrt(database, program)

    def test_empty_database_is_always_weakly_acyclic(self):
        program = parse_program("R(x, y) -> exists z . R(y, z)")
        database = parse_database("% empty\n")
        assert is_weakly_acyclic_wrt(database, program)

    def test_uniformly_acyclic_implies_non_uniformly_acyclic(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        database = parse_database("R(a, b).\nS(a, a).")
        assert is_weakly_acyclic_wrt(database, program)

    def test_supporting_predicates(self):
        program = parse_program(
            "Start(x) -> R(x, x)\nR(x, y) -> exists z . R(y, z)\nP(x) -> Q(x)"
        )
        database = parse_database("Start(a).\nP(b).")
        supporting = supporting_database_predicates(database, program)
        assert {p.name for p in supporting} == {"Start"}


class TestReport:
    def test_report_without_database(self):
        report = weak_acyclicity_report(parse_program("R(x, y) -> exists z . R(y, z)"))
        assert not report.uniformly_weakly_acyclic
        assert report.weakly_acyclic_wrt_database is None
        assert report.witness_cycle is not None
        assert report.positions_on_special_cycles

    def test_report_with_database(self):
        program = parse_program("R(x, y) -> exists z . R(y, z)\nP(x) -> Q(x)")
        report = weak_acyclicity_report(program, parse_database("P(a)."))
        assert not report.uniformly_weakly_acyclic
        assert report.weakly_acyclic_wrt_database is True
        assert report.supporting_predicates == frozenset()

    def test_report_for_acyclic_program(self):
        report = weak_acyclicity_report(
            parse_program("R(x, y) -> exists z . S(y, z)"), parse_database("R(a, b).")
        )
        assert report.uniformly_weakly_acyclic
        assert report.weakly_acyclic_wrt_database is True
        assert report.witness_cycle is None
