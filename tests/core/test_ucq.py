"""Tests for the UCQ-based data-complexity procedure (Theorems 6.6 / 7.7)."""

import pytest

from repro.model.parser import parse_database, parse_program
from repro.core.ucq import ConjunctiveQuery, build_termination_ucq
from repro.core.simplification import simplify_database, simplify_program
from repro.core.weak_acyclicity import is_weakly_acyclic_wrt


class TestConjunctiveQuery:
    def test_holds_in(self):
        program = parse_program("R(x, y) -> exists z . R(y, z)")
        query = build_termination_ucq(program).disjuncts[0]
        assert isinstance(query, ConjunctiveQuery)
        assert query.holds_in(parse_database("R(a, b)."))
        assert not query.holds_in(parse_database("S(a)."))


class TestSimpleLinearUCQ:
    PROGRAM = (
        "Start(x) -> R(x, x)\n"
        "R(x, y) -> exists z . R(y, z)\n"
        "P(x) -> Q(x)"
    )

    def test_ucq_ranges_over_supporting_predicates(self):
        ucq = build_termination_ucq(parse_program(self.PROGRAM))
        names = {p.name for p in ucq.violating_predicates}
        assert names == {"Start", "R"}
        assert len(ucq) == 2

    @pytest.mark.parametrize(
        "database_text,expected_violation",
        [
            ("R(a, b).", True),
            ("Start(a).", True),
            ("P(a).", False),
            ("Q(a).", False),
            ("P(a).\nStart(b).", True),
        ],
    )
    def test_ucq_agrees_with_weak_acyclicity(self, database_text, expected_violation):
        program = parse_program(self.PROGRAM)
        database = parse_database(database_text)
        ucq = build_termination_ucq(program)
        assert ucq.evaluate(database) is expected_violation
        assert ucq.witnessed_by(database) is expected_violation
        assert is_weakly_acyclic_wrt(database, program) is (not expected_violation)

    def test_acyclic_program_yields_empty_ucq(self):
        ucq = build_termination_ucq(parse_program("R(x, y) -> exists z . S(y, z)"))
        assert len(ucq) == 0
        assert not ucq.evaluate(parse_database("R(a, b)."))


class TestLinearUCQ:
    # R(x, x) → ∃z R(z, z): a reflexive R atom regenerates itself forever,
    # a non-reflexive one never fires the rule.
    PROGRAM = "R(x, x) -> exists z . R(x, z), R(z, z)"

    def test_equality_pattern_matters(self):
        """Only databases with a reflexive R atom diverge."""
        program = parse_program(self.PROGRAM)
        ucq = build_termination_ucq(program)
        assert ucq.witnessed_by(parse_database("R(a, a).")) is True
        assert ucq.witnessed_by(parse_database("R(a, b).")) is False
        assert ucq.evaluate(parse_database("R(a, a).")) is True
        assert ucq.evaluate(parse_database("R(a, b).")) is False

    def test_agrees_with_simplified_weak_acyclicity(self):
        program = parse_program(self.PROGRAM)
        ucq = build_termination_ucq(program)
        for database_text in ["R(a, a).", "R(a, b).", "R(a, b).\nR(c, c).", "S(a)."]:
            database = parse_database(database_text)
            expected = not is_weakly_acyclic_wrt(
                simplify_database(database), simplify_program(program)
            )
            assert ucq.witnessed_by(database) is expected

    def test_ucq_is_database_independent(self):
        """Building the query does not look at any database (data complexity)."""
        program = parse_program(self.PROGRAM)
        first = build_termination_ucq(program)
        second = build_termination_ucq(program)
        assert [str(q) for q in first.disjuncts] == [str(q) for q in second.disjuncts]

    def test_guarded_program_is_rejected(self):
        program = parse_program("R(x, y), P(x) -> exists z . R(y, z)")
        with pytest.raises(ValueError):
            build_termination_ucq(program)
