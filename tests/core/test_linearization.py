"""Tests for the linearization transformation (Section 8, Appendix E)."""

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.parser import parse_database, parse_program
from repro.model.terms import Constant, Variable
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.classify import TGDClass, classify
from repro.core.linearization import (
    SigmaType,
    canonicalize_type,
    completion,
    linearize,
    linearize_database,
    linearize_program,
    type_of,
)

A, B, C = Constant("a"), Constant("b"), Constant("c")


class TestSigmaType:
    def test_canonicalization_follows_first_occurrence(self):
        guard = atom("R", A, A, B, C)
        sigma_type = canonicalize_type(guard, [atom("Q", A, C)])
        assert sigma_type.guard == atom("R", Constant("#1"), Constant("#1"), Constant("#2"), Constant("#3"))
        assert sigma_type.others == frozenset({atom("Q", Constant("#1"), Constant("#3"))})

    def test_predicate_is_canonical(self):
        first = canonicalize_type(atom("R", A, B), [atom("P", A)])
        second = canonicalize_type(atom("R", B, C), [atom("P", B)])
        assert first.predicate() == second.predicate()
        assert first.predicate().arity == 2

    def test_different_types_get_different_predicates(self):
        plain = canonicalize_type(atom("R", A, B), [])
        typed = canonicalize_type(atom("R", A, B), [atom("P", A)])
        assert plain.predicate() != typed.predicate()

    def test_type_atom_outside_guard_domain_is_rejected(self):
        with pytest.raises(ValueError):
            canonicalize_type(atom("R", A, B), [atom("P", C)])

    def test_instantiate(self):
        sigma_type = canonicalize_type(atom("R", A, A, B), [atom("P", B)])
        instantiated = sigma_type.instantiate((C, C, A))
        assert instantiated == {atom("R", C, C, A), atom("P", A)}

    def test_instantiate_rejects_pattern_mismatch(self):
        sigma_type = canonicalize_type(atom("R", A, A), [])
        with pytest.raises(ValueError):
            sigma_type.instantiate((A, B))


class TestCompletion:
    def test_completion_contains_only_domain_atoms(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> P(x)")
        database = parse_database("R(a, b).")
        completed = completion(database.as_instance(), program)
        domain = database.active_domain()
        assert all(set(a.args) <= domain for a in completed)

    def test_completion_recovers_atoms_derived_through_nulls(self):
        # P(b) is only derivable via the null invented for S(b, z).
        program = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> P(x)")
        database = parse_database("R(a, b).")
        completed = completion(database.as_instance(), program)
        assert atom("P", B) in completed

    def test_completion_of_terminating_chase_matches_direct_restriction(self):
        program = parse_program(
            "R(x, y), P(x) -> exists z . R(y, z)\nR(x, y) -> Q(x)"
        )
        database = parse_database("R(a, b).\nQ(b).")
        completed = completion(database.as_instance(), program)
        chase = semi_oblivious_chase(database, program)
        assert chase.terminated
        domain = database.active_domain()
        expected = {a for a in chase.instance if set(a.args) <= domain}
        assert set(completed) == expected

    def test_type_of_restricts_to_atom_terms(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> P(x)")
        database = parse_database("R(a, b).\nP(a).")
        completed = completion(database.as_instance(), program)
        result = type_of(atom("R", A, B), completed)
        assert atom("R", A, B) in result
        assert atom("P", A) in result
        assert all(set(a.args) <= {A, B} for a in result)


class TestDatabaseLinearization:
    def test_example_e9_shape(self):
        """Example E.9: one [τ]-fact per database atom, carrying its type."""
        program = parse_program(
            "P(x, y, x, u, w), S(x, u) -> exists z1, z2 . R(u, y, x, z1), T(z1, z2, x)\n"
            "R(x, x, y, z) -> Q(x, z)"
        )
        database = parse_database("R(a, a, b, c).")
        linear_database, assignment = linearize_database(database, program)
        assert len(linear_database) == 1
        [fact] = list(linear_database)
        assert fact.args == (A, A, B, C)
        [(original, sigma_type)] = assignment.items()
        assert original == atom("R", A, A, B, C)
        # The type contains the guard pattern R(1,1,2,3) and Q(1,3).
        assert sigma_type.guard.predicate.name == "R"
        assert atom("Q", Constant("#1"), Constant("#3")) in sigma_type.others

    def test_atoms_with_same_type_share_a_predicate(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        database = parse_database("R(a, b).\nR(b, c).")
        linear_database, assignment = linearize_database(database, program)
        predicates = {a.predicate for a in linear_database}
        assert len(predicates) == 1
        assert len(linear_database) == 2


class TestProgramLinearization:
    def test_rejects_unguarded_programs(self):
        program = parse_program("R(x, y), R(y, z) -> S(x, z)")
        with pytest.raises(ValueError):
            linearize_program(program, [])

    def test_linearized_program_is_linear(self):
        program = parse_program("R(x, y), P(x) -> exists z . R(y, z), P(y)")
        database = parse_database("R(a, b).\nP(a).")
        result = linearize(database, program)
        assert classify(result.program) in (TGDClass.LINEAR, TGDClass.SIMPLE_LINEAR)

    def test_type_budget_is_enforced(self):
        program = parse_program("R(x, y), P(x) -> exists z . R(y, z), P(y)")
        database = parse_database("R(a, b).\nP(a).")
        with pytest.raises(RuntimeError):
            linearize(database, program, max_types=0)


class TestProposition81:
    """Linearization preserves finiteness and maximal depth."""

    CASES = [
        # (program, database, expected_termination)
        ("R(x, y), P(x) -> exists z . R(y, z), P(y)", "R(a, b).", True),
        ("R(x, y), P(x) -> exists z . R(y, z), P(y)", "R(a, b).\nP(a).", False),
        ("R(x, y), P(x) -> exists z . R(y, z)", "R(a, b).\nP(a).", True),
        ("R(x, y) -> exists z . S(y, z)\nS(x, y), Q(x) -> R(x, x)", "R(a, b).\nQ(b).", True),
    ]

    @pytest.mark.parametrize("program_text,database_text,expected", CASES)
    def test_preserves_finiteness_and_depth(self, program_text, database_text, expected):
        program = parse_program(program_text)
        database = parse_database(database_text)
        budget = ChaseBudget(max_atoms=2_000)
        original = semi_oblivious_chase(database, program, budget=budget)
        assert original.terminated == expected
        result = linearize(database, program)
        linearized = semi_oblivious_chase(result.database, result.program, budget=budget)
        assert linearized.terminated == original.terminated
        if original.terminated:
            # Prop. 8.1 (2): the maximal term depth is preserved.  (The
            # number of atoms may differ: several [τ]-atoms can encode
            # the same original atom.)
            assert linearized.max_depth == original.max_depth
