"""Tests for the high-level termination API (certificates, size bounds)."""

from repro.model.parser import parse_database, parse_program
from repro.chase.engine import ChaseBudget
from repro.core.bounds import size_bound_factor
from repro.core.termination import certify, chase_size_bound
from repro.generators.families import example_7_1, intro_nonterminating_example, sl_lower_bound


class TestChaseSizeBound:
    def test_bound_is_linear_in_database(self):
        database, tgds = sl_lower_bound(1, 2, 3)
        assert chase_size_bound(database, tgds) == len(database) * size_bound_factor(tgds)

    def test_bound_scales_with_database_size(self):
        small_db, tgds = sl_lower_bound(1, 2, 1)
        large_db, _ = sl_lower_bound(1, 2, 5)
        assert chase_size_bound(large_db, tgds) == 5 * chase_size_bound(small_db, tgds)


class TestCertify:
    def test_positive_certificate_is_consistent(self):
        database, tgds = sl_lower_bound(1, 2, 2)
        certificate = certify(database, tgds)
        assert certificate.verdict.terminates is True
        assert certificate.chase_result is not None and certificate.chase_result.terminated
        assert certificate.size_within_bound is True
        assert certificate.depth_within_bound is True
        assert certificate.consistent

    def test_negative_certificate_skips_chase_by_default(self):
        database, tgds = intro_nonterminating_example()
        certificate = certify(database, tgds)
        assert certificate.verdict.terminates is False
        assert certificate.chase_result is None
        assert certificate.consistent

    def test_negative_certificate_with_explicit_budget(self):
        database, tgds = intro_nonterminating_example()
        certificate = certify(database, tgds, chase_budget=ChaseBudget(max_atoms=100))
        assert certificate.chase_result is not None
        assert not certificate.chase_result.terminated
        assert certificate.consistent

    def test_example_7_1_certificate(self):
        database, tgds = example_7_1()
        certificate = certify(database, tgds)
        assert certificate.verdict.terminates is True
        assert certificate.consistent

    def test_run_chase_can_be_disabled(self):
        database, tgds = example_7_1()
        certificate = certify(database, tgds, run_chase=False)
        assert certificate.chase_result is None

    def test_guarded_certificate(self, guarded_program, guarded_unsupported_database):
        certificate = certify(guarded_unsupported_database, guarded_program)
        assert certificate.verdict.terminates is True
        assert certificate.consistent
