"""Tests for uniform termination and the critical database (Section 4 / [8])."""

import pytest

from repro.model.atoms import Predicate
from repro.model.parser import parse_program
from repro.model.terms import Constant
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.uniform import (
    critical_database,
    is_uniformly_terminating,
    uniform_verdict,
    uniform_weak_acyclicity_agrees,
)
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.generators.families import prop45_family


class TestCriticalDatabase:
    def test_one_fact_per_predicate(self):
        schema = [Predicate("R", 2), Predicate("P", 1)]
        database = critical_database(schema)
        assert len(database) == 2
        assert {a.predicate for a in database} == set(schema)

    def test_single_constant(self):
        database = critical_database([Predicate("R", 3)], constant=Constant("c"))
        [fact] = list(database)
        assert set(fact.args) == {Constant("c")}

    def test_zero_arity_predicates(self):
        database = critical_database([Predicate("Halt", 0)])
        assert len(database) == 1


class TestUniformTermination:
    def test_weakly_acyclic_program_is_uniformly_terminating(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        assert is_uniformly_terminating(program)
        assert uniform_weak_acyclicity_agrees(program)

    def test_cyclic_program_is_not_uniformly_terminating(self):
        program = parse_program("R(x, y) -> exists z . R(y, z)")
        assert not is_uniformly_terminating(program)
        assert uniform_weak_acyclicity_agrees(program)

    def test_example_7_1_is_uniformly_terminating_but_not_weakly_acyclic(self):
        """The gap between weak-acyclicity and uniform termination for L."""
        program = parse_program("R(x, x) -> exists z . R(z, x)")
        assert not is_weakly_acyclic(program)
        assert is_uniformly_terminating(program)
        assert not uniform_weak_acyclicity_agrees(program)

    def test_uniform_implies_non_uniform_on_critical_database(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> R(x, y)")
        assert not is_uniformly_terminating(program)
        verdict = uniform_verdict(program)
        assert verdict.terminates is False

    def test_uniform_answer_matches_chase_on_critical_database(self):
        for text, expected in [
            ("R(x, y) -> exists z . S(y, z)", True),
            ("R(x, y) -> exists z . R(y, z)", False),
            ("R(x, x) -> exists z . R(z, x)", True),
            ("R(x, y), P(x) -> exists z . R(y, z), P(y)", False),
        ]:
            program = parse_program(text)
            database = critical_database(program.schema())
            result = semi_oblivious_chase(
                database, program, budget=ChaseBudget(max_atoms=5_000), record_derivation=False
            )
            assert is_uniformly_terminating(program) is expected
            assert result.terminated is expected

    def test_arbitrary_tgds_rejected(self):
        _, tgds = prop45_family(3)
        with pytest.raises(ValueError):
            is_uniformly_terminating(tgds)
