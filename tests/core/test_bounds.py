"""Tests for the depth/size bound formulas (Sections 5-8)."""

import pytest

from repro.model.parser import parse_database, parse_program
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import (
    depth_bound,
    generic_size_bound,
    guarded_lower_bound_value,
    linear_lower_bound_value,
    per_tree_depth_slice_bound,
    size_bound_factor,
    sl_lower_bound_value,
)
from repro.core.classify import TGDClass
from repro.generators.families import sl_lower_bound


class TestDepthBound:
    def test_simple_linear_formula(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        # |sch| = 2, ar = 2  ->  d_SL = 4.
        assert depth_bound(program, TGDClass.SIMPLE_LINEAR) == 4

    def test_linear_formula(self):
        program = parse_program("R(x, x) -> exists z . R(z, x)")
        # |sch| = 1, ar = 2  ->  d_L = 1 * 2^3 = 8.
        assert depth_bound(program, TGDClass.LINEAR) == 8

    def test_guarded_formula(self):
        program = parse_program("R(x, y), P(x) -> exists z . R(y, z)")
        # |sch| = 2, ar = 2  ->  d_G = 2 * 2^5 * 2^(2*4) = 2 * 32 * 256.
        assert depth_bound(program, TGDClass.GUARDED) == 2 * 32 * 256

    def test_bounds_are_monotone_across_classes(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        assert (
            depth_bound(program, TGDClass.SIMPLE_LINEAR)
            <= depth_bound(program, TGDClass.LINEAR)
            <= depth_bound(program, TGDClass.GUARDED)
        )

    def test_arbitrary_class_is_rejected(self):
        program = parse_program("R(x, y), R(y, z) -> S(x, z)")
        with pytest.raises(ValueError):
            depth_bound(program)

    def test_class_is_inferred_when_not_given(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        assert depth_bound(program) == depth_bound(program, TGDClass.SIMPLE_LINEAR)


class TestSizeBounds:
    def test_size_bound_factor_formula(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        depth = depth_bound(program)
        norm = program.norm()
        assert size_bound_factor(program) == (depth + 1) * norm ** (2 * 2 * (depth + 1))

    def test_generic_size_bound_grows_with_database(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        assert generic_size_bound(10, program, 1) == 10 * generic_size_bound(1, program, 1)

    def test_per_tree_depth_slice_bound_monotone_in_depth(self):
        program = parse_program("R(x, y) -> exists z . S(y, z)")
        assert per_tree_depth_slice_bound(program, 0) < per_tree_depth_slice_bound(program, 1)

    def test_measured_chase_respects_characterisation_bound(self):
        database, tgds = sl_lower_bound(1, 2, 2)
        result = semi_oblivious_chase(database, tgds)
        assert result.terminated
        assert result.size <= len(database) * size_bound_factor(tgds)
        assert result.max_depth <= depth_bound(tgds)


class TestLowerBoundFormulas:
    def test_sl_value(self):
        assert sl_lower_bound_value(2, 3, 2) == 2 * 2 ** 6

    def test_linear_value(self):
        assert linear_lower_bound_value(1, 2, 2) == 2 ** (2 * 3)

    def test_guarded_value(self):
        assert guarded_lower_bound_value(1, 1, 1) == 2 ** (2 * 3)

    def test_lower_bounds_are_below_upper_bounds(self):
        """The worst-case families stay below |D| · f_C(Σ) (consistency check)."""
        database, tgds = sl_lower_bound(2, 2, 1)
        assert sl_lower_bound_value(1, 2, 2) <= len(database) * size_bound_factor(tgds)
