"""Per-rule attribution profiling (obs/profile.py).

The profiler's contract has two halves.  Invisibility: with
``profile=None`` every driver stays on its seed code path, so
summaries are byte-identical with and without the feature compiled in
— cache keys, fingerprints and payloads unchanged.  Attribution: with
a profiler attached, per-rule counters are exact and attributed wall
time covers ≥ 90% of the driver window, at single-digit overhead.
"""

import json

import pytest

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ENGINES, ChaseBudget
from repro.generators.families import sl_lower_bound
from repro.model.parser import parse_database, parse_program
from repro.obs.profile import RuleProfiler, format_profile_table, top_rules
from repro.runtime.cache import ResultCache
from repro.runtime.executor import BatchExecutor
from repro.runtime.jobs import ChaseJob

BUDGET = ChaseBudget(max_atoms=100_000)

RULES = "P(x) -> exists z . Q(x, z)\nQ(x, z) -> R(z)\nR(z) -> S(z)"
FACTS = "P(a)\nP(b)\nP(c)"


def _run(variant, engine, profiler=None):
    return VARIANT_RUNNERS[variant](
        parse_database(FACTS),
        parse_program(RULES),
        budget=BUDGET,
        record_derivation=False,
        engine=engine,
        profile=profiler,
    )


def _summary_bytes(result):
    return json.dumps(result.summary(), sort_keys=True).encode()


class TestInvisibility:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("variant", sorted(VARIANT_RUNNERS))
    def test_profile_off_is_byte_identical(self, variant, engine):
        """Seed behaviour: two profile-off runs produce identical bytes,
        and a profiled run differs only by its 'profile' key."""
        off_a = _summary_bytes(_run(variant, engine))
        off_b = _summary_bytes(_run(variant, engine))
        assert off_a == off_b
        assert b'"profile"' not in off_a

        profiled = _run(variant, engine, profiler=RuleProfiler())
        summary = profiled.summary()
        payload = summary.pop("profile")
        assert json.dumps(summary, sort_keys=True).encode() == off_a
        assert payload["runs"] == 1

    def test_cached_summaries_are_stripped(self):
        """The executor must strip profile payloads before cache.put, so
        profiled and unprofiled batches share byte-identical entries."""
        job = ChaseJob(
            program=parse_program(RULES),
            database=parse_database(FACTS),
            job_id="p1",
            variant="semi-oblivious",
        )
        cache = ResultCache(None)
        executor = BatchExecutor(workers=1, cache=cache, profile=True)
        result = executor.run_all([job])[0]
        assert "profile" in result.summary
        entry = cache.get(result.cache_key)
        assert entry is not None
        assert "profile" not in entry.summary

        replay = executor.run_all([job])[0]
        assert replay.cache_hit
        assert "profile" not in replay.summary


class TestAttribution:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_counters_are_exact(self, engine):
        profiler = RuleProfiler()
        result = _run("semi-oblivious", engine, profiler=profiler)
        stats = result.statistics
        assert sum(profiler.fired) == stats.triggers_applied
        assert sum(profiler.considered) == stats.triggers_considered
        assert sum(profiler.facts) == stats.atoms_created
        # One null per P fact from the single existential rule.
        assert sum(profiler.nulls) == 3
        payload = profiler.as_dict()
        assert {row["rule"] for row in payload["rules"]} == {
            t.rule_id for t in parse_program(RULES)
        }

    def test_attributed_fraction_meets_the_floor(self):
        """≥ 90% of driver wall time lands on rules on a workload big
        enough for the clock to resolve (the acceptance criterion's
        200-job batch measures 0.92; this is the in-suite proxy)."""
        database, tgds = sl_lower_bound(2, 3, 2)
        profiler = RuleProfiler()
        VARIANT_RUNNERS["semi-oblivious"](
            database, tgds, budget=BUDGET, record_derivation=False,
            engine="store", profile=profiler,
        )
        payload = profiler.as_dict()
        assert payload["attributed_fraction"] >= 0.9
        assert payload["driver_seconds"] > 0

    def test_store_observation_carries_index_and_memory(self):
        profiler = RuleProfiler()
        _run("semi-oblivious", "store", profiler=profiler)
        payload = profiler.as_dict()
        assert payload["engine"] == "store"
        assert payload.get("posting_memory_bytes")

    def test_aggregates_across_repeated_runs(self):
        profiler = RuleProfiler()
        _run("semi-oblivious", "store", profiler=profiler)
        _run("semi-oblivious", "store", profiler=profiler)
        payload = profiler.as_dict()
        assert payload["runs"] == 2
        assert sum(profiler.nulls) == 6


class TestRendering:
    def _payload(self):
        profiler = RuleProfiler()
        _run("semi-oblivious", "store", profiler=profiler)
        return profiler.as_dict()

    def test_top_rules_is_a_ranked_prefix(self):
        payload = self._payload()
        ranked = top_rules(payload, top=2)
        assert len(ranked) == 2
        totals = [r["seconds"] + r["compile_seconds"] for r in payload["rules"]]
        assert totals == sorted(totals, reverse=True)

    def test_table_renders_every_requested_row(self):
        payload = self._payload()
        table = format_profile_table(payload, top=10)
        for row in payload["rules"]:
            assert row["rule"] in table
        assert "attributed" in table
