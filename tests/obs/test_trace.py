"""Trace recorder tests: Chrome-trace events, export/load, executor spans."""

import json
import threading

import pytest

from repro.model.parser import parse_database, parse_program
from repro.obs.trace import TraceRecorder, load_trace, summarize_trace
from repro.runtime import BatchExecutor, ChaseJob, ResultCache


def make_job(tag: str, job_id: str = "") -> ChaseJob:
    return ChaseJob(
        program=parse_program(f"R_{tag}(x, y) -> exists z . S_{tag}(y, z)"),
        database=parse_database(f"R_{tag}(a, b)."),
        job_id=job_id or tag,
    )


class TestRecorder:
    def test_add_span_produces_complete_events(self):
        recorder = TraceRecorder(process_name="test")
        start = recorder.now()
        recorder.add_span("job.execute", start, start + 0.5, args={"job": "j1"})
        (event,) = recorder.events()
        assert event["ph"] == "X"
        assert event["name"] == "job.execute"
        assert event["dur"] == pytest.approx(0.5e6, rel=1e-3)
        assert event["pid"] == "test"
        assert event["args"] == {"job": "j1"}

    def test_span_context_manager_attaches_results(self):
        recorder = TraceRecorder()
        with recorder.span("cache.lookup") as args:
            args["hit"] = True
        (event,) = recorder.events()
        assert event["name"] == "cache.lookup" and event["args"] == {"hit": True}

    def test_negative_duration_clamped(self):
        recorder = TraceRecorder()
        recorder.add_span("x", 2.0, 1.0)
        assert recorder.events()[0]["dur"] == 0.0

    def test_thread_safe_appends(self):
        recorder = TraceRecorder()

        def emit():
            for _ in range(500):
                start = recorder.now()
                recorder.add_span("tick", start, recorder.now())

        workers = [threading.Thread(target=emit) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(recorder) == 2000

    def test_export_load_roundtrip(self, tmp_path):
        recorder = TraceRecorder()
        start = recorder.now()
        recorder.add_span("a", start, start + 0.1)
        recorder.counter("queue", {"depth": 3})
        path = str(tmp_path / "trace.jsonl")
        assert recorder.export_jsonl(path) == 2
        events = load_trace(path)
        assert [e["ph"] for e in events] == ["X", "C"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x", "ph": "X"}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(str(path))
        path.write_text('["not", "an", "event"]\n')
        with pytest.raises(ValueError, match="not a trace event"):
            load_trace(str(path))

    def test_summarize(self):
        recorder = TraceRecorder()
        recorder.add_span("a", 0.0, 0.2)
        recorder.add_span("a", 0.3, 0.4)
        recorder.add_span("b", 0.0, 1.0)
        summary = summarize_trace(recorder.events())
        assert summary["events"] == 3
        assert summary["spans"]["a"]["count"] == 2
        assert summary["spans"]["a"]["total_ms"] == pytest.approx(300.0)
        assert summary["spans"]["a"]["max_ms"] == pytest.approx(200.0)
        assert summary["wall_seconds"] == pytest.approx(1.0)
        assert "top_spans" not in summary

    def test_summarize_top_ranking(self):
        recorder = TraceRecorder()
        recorder.add_span("a", 0.0, 0.2)
        recorder.add_span("b", 0.0, 1.0)
        recorder.add_span("c", 0.0, 0.5)
        summary = summarize_trace(recorder.events(), top=2)
        assert [row["name"] for row in summary["top_spans"]] == ["b", "c"]


class TestExecutorSpans:
    def test_serial_run_emits_lifecycle_spans(self):
        tracer = TraceRecorder()
        executor = BatchExecutor(
            workers=1, cache=ResultCache(), tracer=tracer, telemetry=True
        )
        executor.run_all([make_job("a"), make_job("b")])
        names = {event["name"] for event in tracer.events()}
        assert {"job.admission", "cache.lookup", "snapshot.encode",
                "job.execute", "cache.write"} <= names
        executes = [e for e in tracer.events() if e["name"] == "job.execute"]
        assert {e["args"]["job"] for e in executes} == {"a", "b"}
        assert all(e["args"]["status"] == "ok" for e in executes)

    def test_cache_hit_skips_execute_span(self):
        tracer = TraceRecorder()
        executor = BatchExecutor(workers=1, cache=ResultCache(), tracer=tracer)
        executor.run_all([make_job("hit", job_id="cold")])
        before = len([e for e in tracer.events() if e["name"] == "job.execute"])
        executor.run_all([make_job("hit", job_id="warm")])
        lookups = [e for e in tracer.events() if e["name"] == "cache.lookup"]
        assert [e["args"]["hit"] for e in lookups] == [False, True]
        after = len([e for e in tracer.events() if e["name"] == "job.execute"])
        assert after == before  # the warm job never executed

    def test_telemetry_stripped_from_cache_but_kept_in_result(self):
        cache = ResultCache()
        telemetric = BatchExecutor(workers=1, cache=cache, telemetry=True)
        (result,) = telemetric.run_all([make_job("strip")])
        assert "telemetry" in result.summary
        assert result.summary["telemetry"]["rounds"] > 0
        (entry,) = list(cache)
        assert "telemetry" not in entry.summary
        # The cached summary is byte-identical to an untelemetered run's.
        plain = BatchExecutor(workers=1)
        (bare,) = plain.run_all([make_job("strip")])
        assert json.dumps(entry.summary, sort_keys=True) == (
            json.dumps(bare.summary, sort_keys=True)
        )

    def test_cache_replay_unaffected_by_telemetry_flag(self):
        cache = ResultCache()
        writer = BatchExecutor(workers=1, cache=cache, telemetry=True)
        writer.run_all([make_job("replay", job_id="first")])
        reader = BatchExecutor(workers=1, cache=cache)
        (hit,) = reader.run_all([make_job("replay", job_id="second")])
        assert hit.cache_hit and "telemetry" not in hit.summary
