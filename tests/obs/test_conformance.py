"""Paper-bound conformance monitoring (obs/conformance.py).

Two directions: terminated runs of correctly classified SL/L programs
must land *under* their d_C/f_C bounds (utilization ≤ 1.0, no
violations), and an intentionally misclassified program whose observed
depth exceeds the wrong class's bound must raise the structured
violation counter — that is the signal the monitor exists for.
"""

import pytest

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget
from repro.core.classify import TGDClass, classify
from repro.generators.families import (
    example_7_1,
    linear_lower_bound,
    sl_lower_bound,
)
from repro.model.parser import parse_database, parse_program
from repro.obs.conformance import conformance_report, record_conformance
from repro.obs.metrics import MetricsRegistry

BUDGET = ChaseBudget(max_atoms=200_000, max_rounds=100_000)

#: Terminating SL/L golden-table families (name -> case factory).
TERMINATING_FAMILIES = {
    "example_7_1": example_7_1,
    "sl_lower_222": lambda: sl_lower_bound(2, 2, 2),
    "linear_lower_222": lambda: linear_lower_bound(2, 2, 2),
}


class TestConformingRuns:
    @pytest.mark.parametrize("name", sorted(TERMINATING_FAMILIES))
    @pytest.mark.parametrize("variant", ["semi-oblivious", "restricted"])
    def test_terminating_families_stay_under_their_bounds(self, name, variant):
        database, tgds = TERMINATING_FAMILIES[name]()
        assert classify(tgds).has_paper_bounds
        result = VARIANT_RUNNERS[variant](
            database, tgds, budget=BUDGET, record_derivation=False, engine="store"
        )
        assert result.terminated
        report = conformance_report(result.summary(), tgds)
        assert report is not None
        assert report["terminated"] is True
        assert report["violations"] == []
        assert 0.0 <= report["size_utilization"] <= 1.0
        assert 0.0 <= report["depth_utilization"] <= 1.0
        # A materialised bound must actually dominate the observation.
        if report["size_bound"] is not None:
            assert result.size <= report["size_bound"]
        if report["depth_bound"] is not None:
            assert result.max_depth <= report["depth_bound"]

    def test_arbitrary_class_has_no_report(self):
        tgds = parse_program("R(x, y), S(y, z) -> exists w . R(z, w)\nR(x, y) -> S(x, y)")
        assert not classify(tgds).has_paper_bounds
        summary = {"size": 5, "database_size": 2, "max_depth": 1, "terminated": True}
        assert conformance_report(summary, tgds) is None

    def test_budget_stopped_runs_never_count_as_violations(self):
        # Even an observation far above the bound is not a violation
        # when the run was stopped by a budget: a prefix of a diverging
        # chase is not a counterexample to a termination bound.
        tgds = parse_program("P(x) -> Q(x)")
        report = conformance_report(
            {
                "size": 10**9,
                "database_size": 1,
                "max_depth": 10**6,
                "terminated": False,
            },
            tgds,
        )
        assert report is not None
        assert report["violations"] == []


#: A terminating program whose null chain grows with the *database*
#: (depth k for a k-link chain): each step passes the previous null
#: through the frontier, so depths stack.  Not simple-linear (two body
#: atoms) — which is the point of the misclassification fixture below.
_DEEP_CHAIN_RULES = "Step(x, y), P(x, u) -> exists v . P(y, v), Link(u, v)"


def _deep_chain(links: int):
    facts = [f"Step(a{i}, a{i + 1})" for i in range(links)]
    facts.append("P(a0, c)")
    return parse_database("\n".join(facts)), parse_program(_DEEP_CHAIN_RULES)


class TestMisclassification:
    def test_deep_chain_exceeds_the_sl_depth_bound(self):
        database, tgds = _deep_chain(links=10)
        result = VARIANT_RUNNERS["semi-oblivious"](
            database, tgds, budget=BUDGET, record_derivation=False, engine="store"
        )
        assert result.terminated
        # d_SL = |sch| * ar = 3 * 2 = 6, but the chain reaches depth 10.
        assert result.max_depth > 6
        report = conformance_report(
            result.summary(), tgds, tgd_class=TGDClass.SIMPLE_LINEAR
        )
        assert report is not None
        assert report["class"] == str(TGDClass.SIMPLE_LINEAR)
        assert "depth" in report["violations"]
        assert report["depth_utilization"] > 1.0

    def test_violation_fires_the_warning_counter(self):
        database, tgds = _deep_chain(links=10)
        result = VARIANT_RUNNERS["semi-oblivious"](
            database, tgds, budget=BUDGET, record_derivation=False, engine="store"
        )
        report = conformance_report(
            result.summary(), tgds, tgd_class=TGDClass.SIMPLE_LINEAR
        )
        registry = MetricsRegistry()
        record_conformance(registry, report)
        rendered = registry.render()
        assert "repro_bound_violations_total 1" in rendered
        assert 'repro_bound_utilization{kind="depth"}' in rendered

    def test_conforming_run_keeps_the_counter_at_zero(self):
        database, tgds = TERMINATING_FAMILIES["example_7_1"]()
        result = VARIANT_RUNNERS["semi-oblivious"](
            database, tgds, budget=BUDGET, record_derivation=False, engine="store"
        )
        report = conformance_report(result.summary(), tgds)
        registry = MetricsRegistry()
        record_conformance(registry, report)
        rendered = registry.render()
        # The counter exists (dashboards can alert on it) but is zero.
        assert "repro_bound_violations_total 0" in rendered

    def test_none_report_is_a_noop(self):
        registry = MetricsRegistry()
        record_conformance(registry, None)
        assert "repro_bound" not in registry.render()
