"""Metrics registry and Prometheus exposition tests.

The exposition tests parse the rendered text back
(:func:`parse_prometheus_text`) and assert the invariants a real
scraper depends on: label escaping round-trips, histogram buckets are
cumulative and monotone, ``_count`` equals the ``+Inf`` bucket, and
``_sum`` is present.  The concurrency test hammers one registry from a
thread pool and checks no increments are lost.
"""

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    histogram_consistency_errors,
    parse_prometheus_text,
)


def flat_samples(families):
    """``{(sample_name, label_tuple): value}`` across all families."""
    out = {}
    for family in families.values():
        out.update(family["samples"])
    return out


class TestRegistryBasics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_inc(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("jobs_total").inc(-1)

    def test_counter_mirror_rejects_regression(self):
        registry = MetricsRegistry()
        counter = registry.counter("executed_total")
        counter.set_to(10)
        counter.set_to(10)  # equal is fine
        with pytest.raises(ValueError):
            counter.set_to(9)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5

    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", labels={"route": "/jobs"})
        b = registry.counter("hits_total", labels={"route": "/jobs"})
        c = registry.counter("hits_total", labels={"route": "/stats"})
        assert a is b and a is not c

    def test_name_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError):
            registry.gauge("thing_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("1leading_digit", "has space", "has-dash", ""):
            with pytest.raises(ValueError):
                registry.counter(bad)
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels={"bad-key": "v"})

    def test_null_registry_is_inert(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x_total").inc()
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z_seconds").observe(0.1)
        assert NULL_REGISTRY.render() == ""


class TestExposition:
    def test_parser_roundtrip_with_escaping(self):
        registry = MetricsRegistry()
        nasty = 'quote:" backslash:\\ newline:\n end'
        registry.counter("events_total", "Events.", labels={"src": nasty}).inc(3)
        registry.gauge("depth", "Depth.", labels={"q": "main"}).set(2.5)
        samples = flat_samples(parse_prometheus_text(registry.render()))
        assert samples[("events_total", (("src", nasty),))] == 3
        assert samples[("depth", (("q", "main"),))] == 2.5

    def test_families_carry_type_and_help(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "Event count.").inc()
        families = parse_prometheus_text(registry.render())
        assert families["events_total"]["type"] == "counter"
        assert families["events_total"]["help"] == "Event count."

    def test_render_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", labels={"k": "2"}).inc()
            registry.counter("b_total", labels={"k": "1"}).inc()
            registry.gauge("a").set(1)
            return registry.render()

        assert build() == build()

    def test_histogram_exposition_invariants(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=DEFAULT_LATENCY_BUCKETS
        )
        for value in (0.0001, 0.003, 0.02, 0.02, 0.7, 9.0, 100.0):
            histogram.observe(value)
        families = parse_prometheus_text(registry.render())
        assert histogram_consistency_errors(families) == []
        samples = families["latency_seconds"]["samples"]
        buckets = sorted(
            (
                math.inf if dict(labels)["le"] == "+Inf" else float(dict(labels)["le"]),
                value,
            )
            for (name, labels), value in samples.items()
            if name == "latency_seconds_bucket"
        )
        values = [v for _, v in buckets]
        # Cumulative and monotone, ending at +Inf == observation count.
        assert values == sorted(values)
        assert buckets[-1][0] == math.inf and buckets[-1][1] == 7
        assert samples[("latency_seconds_count", ())] == 7
        assert samples[("latency_seconds_sum", ())] == pytest.approx(
            109.7431, rel=1e-6
        )

    def test_histogram_bucket_edges_are_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1" must include it
        samples = flat_samples(parse_prometheus_text(registry.render()))
        assert samples[("h_seconds_bucket", (("le", "1"),))] == 1

    def test_consistency_checker_flags_bad_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
        )
        errors = histogram_consistency_errors(parse_prometheus_text(text))
        # Non-monotone buckets, +Inf != _count, and no _sum at all.
        assert len(errors) == 3


class TestConcurrency:
    def test_thread_pool_hammer_loses_nothing(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2_000

        def hammer(i: int) -> None:
            counter = registry.counter("hammer_total", labels={"shared": "yes"})
            own = registry.counter("hammer_total", labels={"shared": f"t{i % 2}"})
            gauge = registry.gauge("hammer_gauge")
            histogram = registry.histogram("hammer_seconds")
            for j in range(per_thread):
                counter.inc()
                own.inc()
                gauge.inc()
                histogram.observe(j * 1e-6)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))

        families = parse_prometheus_text(registry.render())
        assert histogram_consistency_errors(families) == []
        samples = flat_samples(families)
        assert samples[("hammer_total", (("shared", "yes"),))] == threads * per_thread
        assert (
            samples[("hammer_total", (("shared", "t0"),))]
            + samples[("hammer_total", (("shared", "t1"),))]
            == threads * per_thread
        )
        assert samples[("hammer_gauge", ())] == threads * per_thread
        assert samples[("hammer_seconds_count", ())] == threads * per_thread
