"""Bench regression history (obs/benchhist.py).

The history log is the machine-readable perf trajectory: appends are
schema-versioned JSONL, loads tolerate foreign/corrupt lines, and the
comparison pairs rows by identity (label + workload parameters) so a
synthetic 2x slowdown on one row is flagged while re-ordered or
renamed rows surface as unmatched instead of silently vanishing.
"""

import json

from repro.obs.benchhist import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    compare_entries,
    format_comparison,
    format_history,
    git_sha,
    history_entry,
    load_history,
    row_metrics,
)


def _report(seconds=1.0, extra_row=None):
    rows = [
        {
            "label": "big-sl-l",
            "workload": "sl(3,3)",
            "engine": "store",
            "seconds": seconds,
            "store_seconds": seconds,
            "telemetry_overhead": 1.02,
            "equivalent": True,  # non-metric fields are ignored
        },
        {"label": "restricted-heavy", "workload": "rh(3,2)", "engine": "store", "seconds": 0.5},
    ]
    if extra_row is not None:
        rows.append(extra_row)
    return {
        "experiment": "engine-speed",
        "description": "store vs legacy",
        "python": "3.11",
        "rows": rows,
    }


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_report(), str(path), sha="abc1234", timestamp=10.0)
        append_history(_report(seconds=1.1), str(path), sha="def5678", timestamp=20.0)
        entries = load_history(str(path))
        assert len(entries) == 2
        assert entries[0]["schema"] == HISTORY_SCHEMA_VERSION
        assert entries[0]["git_sha"] == "abc1234"
        assert entries[1]["timestamp"] == 20.0
        assert len(entries[0]["rows"]) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "history.jsonl"
        append_history(_report(), str(path), sha=None, timestamp=1.0)
        assert len(load_history(str(path))) == 1

    def test_load_skips_corrupt_and_foreign_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_report(), str(path), sha="abc1234", timestamp=10.0)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"schema": 999, "experiment": "other"}) + "\n")
            handle.write(json.dumps({"no": "schema"}) + "\n")
        entries = load_history(str(path))
        assert len(entries) == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_row_metrics_selects_seconds_and_overheads(self):
        metrics = row_metrics(_report()["rows"][0])
        assert set(metrics) == {"seconds", "store_seconds", "telemetry_overhead"}

    def test_git_sha_tolerates_non_repos(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) is None


class TestCompare:
    def test_synthetic_2x_slowdown_is_flagged(self, tmp_path):
        baseline = history_entry(_report(seconds=1.0), sha="aaa", timestamp=1.0)
        current = history_entry(_report(seconds=2.0), sha="bbb", timestamp=2.0)
        comparison = compare_entries(baseline, current, threshold=0.15)
        assert comparison["rows_compared"] == 2
        regressions = comparison["regressions"]
        # Both slowed metrics of the one doctored row, nothing else.
        assert regressions and all("big-sl-l" in r["row"] for r in regressions)
        assert {r["metric"] for r in regressions} == {"seconds", "store_seconds"}
        rendered = format_comparison(comparison)
        assert "REGRESSIONS" in rendered

    def test_noise_below_threshold_is_not_a_regression(self):
        baseline = history_entry(_report(seconds=1.0), sha="aaa", timestamp=1.0)
        current = history_entry(_report(seconds=1.1), sha="bbb", timestamp=2.0)
        comparison = compare_entries(baseline, current, threshold=0.15)
        assert comparison["regressions"] == []
        assert comparison["deltas"]

    def test_structure_change_surfaces_as_unmatched(self):
        baseline = history_entry(_report(), sha="aaa", timestamp=1.0)
        current = history_entry(
            _report(extra_row={"label": "new-row", "workload": "x", "seconds": 0.1}),
            sha="bbb",
            timestamp=2.0,
        )
        comparison = compare_entries(baseline, current, threshold=0.15)
        assert any("new-row" in key for key in comparison["unmatched"])

    def test_format_history_lists_entries(self):
        entries = [
            history_entry(_report(), sha="aaa1111", timestamp=1.0),
            history_entry(_report(seconds=1.2), sha="bbb2222", timestamp=2.0),
        ]
        rendered = format_history(entries)
        assert "engine-speed" in rendered
        assert "aaa1111" in rendered and "bbb2222" in rendered
