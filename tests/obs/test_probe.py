"""Round-level chase instrumentation tests.

The core contract: attaching a :class:`ChaseProbe` changes *nothing*
about the chase result — the summary with the ``telemetry`` key popped
is identical to an unprobed run's summary — while the probe's totals
agree exactly with the engine's own statistics.
"""

import json

import pytest

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ENGINES
from repro.model.parser import parse_database, parse_program
from repro.obs.probe import ChaseProbe

PROGRAM = parse_program(
    "R(x, y) -> exists z . S(y, z)\n"
    "S(x, y) -> T(x)\n"
    "T(x) -> U(x)\n"
    "U(x) -> V(x)\n"
)
DATABASE = parse_database("R(a, b).\nR(b, c).\nR(c, d).")


class TestProbeMechanics:
    def test_totals_and_samples(self):
        probe = ChaseProbe()
        for i in range(5):
            probe.begin_round()
            probe.end_round(
                delta_size=i + 1, triggers_considered=10, triggers_applied=3,
                atoms_created=4, nulls_invented=2, index_builds=1,
            )
        document = probe.as_dict()
        assert document["rounds"] == 5
        assert document["triggers_considered"] == 50
        assert document["triggers_applied"] == 15
        assert document["atoms_created"] == 20
        assert document["nulls_invented"] == 10
        assert document["index_builds"] == 5
        assert [s["round"] for s in document["samples"]] == [0, 1, 2, 3, 4]
        assert document["sample_stride"] == 1
        assert json.dumps(document)  # JSON-serialisable as-is

    def test_decimation_keeps_totals_exact_and_memory_bounded(self):
        probe = ChaseProbe(max_samples=8)
        rounds = 1000
        for _ in range(rounds):
            probe.begin_round()
            probe.end_round(
                delta_size=1, triggers_considered=2, triggers_applied=1,
                atoms_created=1,
            )
        document = probe.as_dict()
        assert document["rounds"] == rounds
        assert document["triggers_considered"] == 2 * rounds  # totals never sampled
        assert len(document["samples"]) <= 8
        stride = document["sample_stride"]
        assert stride > 1 and stride & (stride - 1) == 0  # doubled each decimation
        indices = [s["round"] for s in document["samples"]]
        assert indices == sorted(indices)
        assert all(index % stride == 0 for index in indices)  # evenly spaced

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ChaseProbe(sample_every=0)
        with pytest.raises(ValueError):
            ChaseProbe(max_samples=1)


class TestEngineIntegration:
    @pytest.mark.parametrize("variant", sorted(VARIANT_RUNNERS))
    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_probe_is_invisible_and_exact(self, variant, engine):
        runner = VARIANT_RUNNERS[variant]
        plain = runner(DATABASE, PROGRAM, engine=engine, record_derivation=False)
        probe = ChaseProbe()
        probed = runner(
            DATABASE, PROGRAM, engine=engine, record_derivation=False, probe=probe
        )
        probed_summary = probed.summary()
        telemetry = probed_summary.pop("telemetry")
        assert probed_summary == plain.summary()
        assert telemetry["rounds"] == probed.statistics.rounds
        assert telemetry["triggers_considered"] == probed.statistics.triggers_considered
        assert telemetry["triggers_applied"] == probed.statistics.triggers_applied
        assert len(telemetry["samples"]) == probed.statistics.rounds
        assert sum(s["triggers_applied"] for s in telemetry["samples"]) == (
            probed.statistics.triggers_applied
        )

    def test_store_probe_counts_nulls_and_delta(self):
        probe = ChaseProbe()
        result = VARIANT_RUNNERS["semi-oblivious"](
            DATABASE, PROGRAM, engine="store", record_derivation=False, probe=probe
        )
        telemetry = result.telemetry
        # One null per R fact (the exists z), none later.
        assert telemetry["nulls_invented"] == 3
        assert telemetry["samples"][0]["delta_size"] == len(DATABASE)
        assert sum(s["atoms_created"] for s in telemetry["samples"]) == (
            result.size - len(DATABASE)
        )

    def test_unprobed_summary_has_no_telemetry_key(self):
        result = VARIANT_RUNNERS["semi-oblivious"](
            DATABASE, PROGRAM, engine="store", record_derivation=False
        )
        assert "telemetry" not in result.summary()
        assert result.telemetry is None


class TestResumeStamping:
    def test_resumed_run_reports_base_rounds(self):
        base = VARIANT_RUNNERS["semi-oblivious"](
            DATABASE, PROGRAM, engine="store", record_derivation=False
        )
        assert base.terminated
        snapshot = base.store_snapshot()
        grown = parse_database("R(a, b).\nR(b, c).\nR(c, d).\nR(d, e).")
        resumed = VARIANT_RUNNERS["semi-oblivious"](
            grown, PROGRAM, engine="store", record_derivation=False,
            resume_from=snapshot,
        )
        summary = resumed.summary()
        assert summary["resumed"] is True
        assert summary["base_rounds"] == base.statistics.rounds
        cold = VARIANT_RUNNERS["semi-oblivious"](
            grown, PROGRAM, engine="store", record_derivation=False
        )
        assert "resumed" not in cold.summary()
        assert "base_rounds" not in cold.summary()

    def test_resumed_snapshot_accumulates_rounds(self):
        from repro.model.store import inspect_snapshot

        base = VARIANT_RUNNERS["semi-oblivious"](
            DATABASE, PROGRAM, engine="store", record_derivation=False
        )
        grown = parse_database("R(a, b).\nR(b, c).\nR(c, d).\nR(d, e).")
        resumed = VARIANT_RUNNERS["semi-oblivious"](
            grown, PROGRAM, engine="store", record_derivation=False,
            resume_from=base.store_snapshot(),
        )
        header = inspect_snapshot(resumed.store_snapshot())
        assert header["rounds"] == base.statistics.rounds + resumed.statistics.rounds
