"""Fingerprint canonicalization: isomorphic inputs hash equal,
non-isomorphic inputs don't.

The property-based parts generate random programs/instances, apply a
random isomorphism (rule shuffling, variable renaming, fact shuffling,
labelled-null relabelling) and check the fingerprint is unchanged.
"""

import random

import pytest

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database, Instance
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import (
    canonical_instance_text,
    canonical_program_text,
    canonical_tgd_text,
)
from repro.model.terms import Constant, Variable, make_null
from repro.model.tgd import TGD, TGDSet
from repro.generators.random_programs import (
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)
from repro.runtime import database_fingerprint, program_fingerprint
from repro.chase.semi_oblivious import semi_oblivious_chase


def rename_variables(tgd: TGD, mapping, rule_id=None) -> TGD:
    return TGD(
        body=tuple(a.substitute(mapping) for a in tgd.body),
        head=tuple(a.substitute(mapping) for a in tgd.head),
        rule_id=rule_id or tgd.rule_id,
    )


def shuffled_renamed_copy(program: TGDSet, rng: random.Random) -> TGDSet:
    """A random isomorphic copy: shuffle rules and atoms, rename
    variables per rule, change every rule identifier."""
    rules = []
    for i, tgd in enumerate(program):
        variables = sorted(tgd.body_variables() | tgd.head_variables(), key=lambda v: v.name)
        fresh = [Variable(f"w{rng.randrange(10**9)}_{j}") for j in range(len(variables))]
        mapping = dict(zip(variables, fresh))
        body = list(tgd.body)
        head = list(tgd.head)
        rng.shuffle(body)
        rng.shuffle(head)
        renamed = TGD(
            body=tuple(a.substitute(mapping) for a in body),
            head=tuple(a.substitute(mapping) for a in head),
            rule_id=f"copy_{rng.randrange(10**9)}_{i}",
        )
        rules.append(renamed)
    rng.shuffle(rules)
    return TGDSet(rules, name="copy")


class TestProgramFingerprints:
    def test_rule_order_and_renaming_invariant(self):
        p1 = parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> T(x)")
        p2 = parse_program("S(a, b) -> T(a)\nR(u, v) -> exists w . S(v, w)")
        assert program_fingerprint(p1) == program_fingerprint(p2)

    def test_shared_variable_chain_invariant(self):
        chain1 = parse_program("R(x, y), R(y, z) -> S(x, z)")
        chain2 = parse_program("R(y, z), R(x, y) -> S(x, z)")
        chain3 = parse_program("R(a, b), R(b, c) -> S(a, c)")
        assert (
            program_fingerprint(chain1)
            == program_fingerprint(chain2)
            == program_fingerprint(chain3)
        )

    def test_fan_out_differs_from_fan_in(self):
        fan_out = parse_program("R(x, y), R(x, z) -> S(y, z)")
        fan_in = parse_program("R(y, x), R(z, x) -> S(y, z)")
        assert program_fingerprint(fan_out) != program_fingerprint(fan_in)

    def test_different_predicates_differ(self):
        assert program_fingerprint(parse_program("R(x) -> S(x)")) != program_fingerprint(
            parse_program("R(x) -> T(x)")
        )

    def test_repeated_variable_differs_from_simple(self):
        linear = parse_program("R(x, x) -> S(x)")
        simple = parse_program("R(x, y) -> S(x)")
        assert program_fingerprint(linear) != program_fingerprint(simple)

    def test_existential_position_matters(self):
        p1 = parse_program("R(x, y) -> exists z . S(x, z)")
        p2 = parse_program("R(x, y) -> exists z . S(z, x)")
        assert program_fingerprint(p1) != program_fingerprint(p2)

    @pytest.mark.parametrize("maker", [
        random_simple_linear_program,
        random_linear_program,
        random_guarded_program,
    ])
    @pytest.mark.parametrize("seed", range(8))
    def test_random_isomorphic_copies_hash_equal(self, maker, seed):
        rng = random.Random(seed * 31 + 1)
        program = maker(seed)
        copy = shuffled_renamed_copy(program, rng)
        assert program_fingerprint(program) == program_fingerprint(copy)

    def test_canonical_tgd_text_drops_rule_id(self):
        a = parse_program("R(x, y) -> S(y)", name="first")[0]
        b = parse_program("R(q, r) -> S(r)", name="second")[0]
        assert a.rule_id != b.rule_id
        assert canonical_tgd_text(a) == canonical_tgd_text(b)


class TestDatabaseFingerprints:
    def test_fact_order_invariant(self):
        d1 = parse_database("R(a, b).\nR(b, c).\nS(a).")
        d2 = parse_database("S(a).\nR(b, c).\nR(a, b).")
        assert database_fingerprint(d1) == database_fingerprint(d2)

    def test_different_facts_differ(self):
        d1 = parse_database("R(a, b).")
        d2 = parse_database("R(b, a).")
        assert database_fingerprint(d1) != database_fingerprint(d2)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_fact_shuffles_hash_equal(self, seed):
        rng = random.Random(seed)
        relation = Predicate("R", 2)
        constants = [Constant(f"c{i}") for i in range(6)]
        facts = [
            Atom(relation, (rng.choice(constants), rng.choice(constants)))
            for _ in range(12)
        ]
        shuffled = list(facts)
        rng.shuffle(shuffled)
        assert database_fingerprint(Database(facts)) == database_fingerprint(
            Database(shuffled)
        )


class TestNullRenamingInvariance:
    def _chain_instance(self, labels):
        """``R(a, n1), R(n1, n2)`` with nulls labelled per ``labels``."""
        relation = Predicate("R", 2)
        a = Constant("a")
        n1 = make_null(labels[0], "z", {"x": a})
        n2 = make_null(labels[1], "z", {"x": n1})
        return Instance([Atom(relation, (a, n1)), Atom(relation, (n1, n2))])

    def test_null_relabelling_invariant(self):
        i1 = self._chain_instance(("ruleA", "ruleA"))
        i2 = self._chain_instance(("completely_other", "completely_other"))
        assert canonical_instance_text(i1) == canonical_instance_text(i2)
        assert database_fingerprint(i1) == database_fingerprint(i2)

    def test_non_isomorphic_null_structure_differs(self):
        relation = Predicate("R", 2)
        a = Constant("a")
        n1 = make_null("r", "z", {"x": a})
        n2 = make_null("r", "w", {"x": a})
        fork = Instance([Atom(relation, (a, n1)), Atom(relation, (a, n2))])
        loop = Instance([Atom(relation, (a, n1)), Atom(relation, (n1, n1))])
        assert canonical_instance_text(fork) != canonical_instance_text(loop)

    def test_chase_results_from_isomorphic_inputs_hash_equal(self):
        """Nulls invented by different rule ids still canonicalise away."""
        from repro.generators.random_programs import random_database

        rng = random.Random(5)
        program = random_simple_linear_program(3)
        copy = shuffled_renamed_copy(program, rng)
        database = random_database(program, 17, fact_count=5)
        r1 = semi_oblivious_chase(database, program, record_derivation=False)
        r2 = semi_oblivious_chase(database, copy, record_derivation=False)
        assert r1.terminated and r2.terminated
        assert canonical_instance_text(r1.instance) == canonical_instance_text(r2.instance)
