"""Auto-budget derivation from the paper's depth and size bounds."""

import pytest

from repro.chase.engine import ChaseBudget, ChaseOutcome
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import depth_bound, size_bound, size_bound_within
from repro.core.classify import TGDClass, classify
from repro.core.termination_analysis import TerminationAnalyzer
from repro.model.parser import parse_database, parse_program
from repro.generators.families import (
    guarded_lower_bound,
    intro_nonterminating_example,
    prop45_family,
    sl_lower_bound,
)
from repro.runtime import BatchExecutor, BudgetPolicy
from repro.runtime.jobs import ChaseJob


# One unary rule: d_SL = 2, f_SL = 3 · 4^6 = 12288, so |D| · f_SL fits
# under practical caps and the size-bound path is actually exercised.
TINY_SL = "P(x) -> Q(x)"


class TestBoundsHelpers:
    def test_size_bound_matches_factor_product(self):
        program = parse_program(TINY_SL)
        database = parse_database("P(a).\nP(b).")
        assert size_bound(len(database), program) == 2 * size_bound(1, program)

    def test_size_bound_within_returns_value_under_cap(self):
        program = parse_program(TINY_SL)
        value = size_bound_within(2, program, cap=10**9)
        assert value is not None
        assert value == size_bound(2, program)

    def test_size_bound_within_rejects_guarded_without_materialising(self):
        _, tgds = guarded_lower_bound(2, 2, 1)
        # d_G is astronomically large; this must return fast, not hang.
        assert size_bound_within(1, tgds, cap=10**9) is None

    def test_has_paper_bounds(self):
        assert TGDClass.SIMPLE_LINEAR.has_paper_bounds
        assert TGDClass.LINEAR.has_paper_bounds
        assert TGDClass.GUARDED.has_paper_bounds
        assert not TGDClass.ARBITRARY.has_paper_bounds


class TestBudgetPolicy:
    def test_auto_sets_depth_and_size_bounds_for_tiny_sl(self):
        program = parse_program(TINY_SL)
        decision = BudgetPolicy().derive(program, database_size=2)
        assert decision.source == "paper-bound"
        assert decision.tgd_class is TGDClass.SIMPLE_LINEAR
        assert decision.budget.max_depth == depth_bound(program)
        assert decision.max_depth_source == "depth-bound"
        assert decision.max_atoms_source == "size-bound"
        assert decision.budget.max_atoms == size_bound(2, program)

    def test_auto_falls_back_to_default_atoms_when_size_bound_over_cap(self):
        database, tgds = sl_lower_bound(2, 2, 1)
        decision = BudgetPolicy().derive(tgds, database_size=len(database))
        assert decision.max_atoms_source == "default"
        assert decision.budget.max_atoms == ChaseBudget().max_atoms
        assert decision.max_depth_source == "depth-bound"  # d_SL is small
        assert decision.size_bound_magnitude == "over-cap"

    def test_auto_skips_astronomical_guarded_depth_bound(self):
        _, tgds = guarded_lower_bound(1, 1, 1)
        decision = BudgetPolicy().derive(tgds, database_size=1)
        assert decision.tgd_class is TGDClass.GUARDED
        assert decision.budget.max_depth is None
        assert decision.max_depth_source == "unset"
        assert decision.source == "default"

    def test_arbitrary_class_uses_default(self):
        program = parse_program("R(x, y), S(y, z) -> T(x, z)")
        assert classify(program) is TGDClass.ARBITRARY
        decision = BudgetPolicy().derive(program, database_size=10)
        assert decision.source == "default"
        assert decision.budget == ChaseBudget()

    def test_resolve_explicit_and_default_modes(self):
        program = parse_program(TINY_SL)
        explicit = ChaseBudget(max_atoms=123)
        policy = BudgetPolicy()
        resolved = policy.resolve(program, 1, "explicit", explicit)
        assert resolved.budget is explicit
        assert resolved.source == "explicit"
        assert policy.resolve(program, 1, "default").budget == policy.default
        with pytest.raises(ValueError):
            policy.resolve(program, 1, "explicit")
        with pytest.raises(ValueError):
            policy.resolve(program, 1, "bogus")

    def test_provenance_is_json_friendly(self):
        import json

        program = parse_program(TINY_SL)
        decision = BudgetPolicy().derive(program, 2)
        encoded = json.dumps(decision.provenance(), sort_keys=True)
        assert '"class": "SL"' in encoded


class TestAutoBudgetedRuns:
    def test_terminating_sl_never_trips_auto_budget(self):
        program = parse_program(TINY_SL)
        database = parse_database("P(a).\nP(b).\nP(c).")
        decision = BudgetPolicy().derive(program, len(database))
        result = semi_oblivious_chase(
            database, program, budget=decision.budget, record_derivation=False
        )
        assert result.outcome is ChaseOutcome.TERMINATED

    def test_nonterminating_sl_trips_depth_budget_fast(self):
        database, tgds = intro_nonterminating_example()
        decision = BudgetPolicy().derive(tgds, len(database))
        result = semi_oblivious_chase(
            database, tgds, budget=decision.budget, record_derivation=False
        )
        assert result.outcome is ChaseOutcome.DEPTH_BUDGET_EXCEEDED
        # The depth bound d_SL = 2 cuts the run after a handful of
        # atoms — not after the default million-atom budget.
        assert result.size < 10

    def test_terminating_sl_family_within_auto_budget(self):
        database, tgds = sl_lower_bound(2, 2, 2)
        decision = BudgetPolicy().derive(tgds, len(database))
        result = semi_oblivious_chase(
            database, tgds, budget=decision.budget, record_derivation=False
        )
        assert result.outcome is ChaseOutcome.TERMINATED
        assert result.max_depth <= depth_bound(tgds)


# An arbitrary (class TGD) set the analysis can still prove terminating:
# no paper bounds exist, so the depth budget can only come from the
# analysis-derived rank bound.
ARBITRARY_TERMINATING = "R(x, y), S(y, z) -> exists w . T(x, w)"


class TestAnalysisAwarePolicy:
    def analysis_policy(self, **kwargs):
        return BudgetPolicy(analyzer=TerminationAnalyzer(), **kwargs)

    def test_default_policy_has_no_analyzer_and_no_verdict(self):
        program = parse_program(TINY_SL)
        decision = BudgetPolicy().derive(program, 2)
        assert decision.verdict is None
        assert "verdict" not in decision.provenance()

    def test_diverging_job_gets_the_clamp_budget(self):
        database, tgds = intro_nonterminating_example()
        decision = self.analysis_policy().derive(
            tgds, len(database), database=database
        )
        assert decision.verdict == "diverging"
        assert decision.source == "analysis-clamp"
        assert decision.max_atoms_source == "analysis-clamp"
        assert decision.budget.max_atoms == 50_000
        assert decision.budget.max_rounds == 5_000
        assert decision.provenance()["verdict"]["value"] == "diverging"

    def test_clamp_never_loosens_an_already_tight_default(self):
        database, tgds = intro_nonterminating_example()
        tight = ChaseBudget(max_atoms=100, max_rounds=10)
        decision = self.analysis_policy(default=tight).derive(
            tgds, len(database), database=database
        )
        assert decision.budget.max_atoms == 100
        assert decision.budget.max_rounds == 10

    def test_terminating_arbitrary_set_gains_the_analysis_depth_bound(self):
        program = parse_program(ARBITRARY_TERMINATING)
        assert classify(program) is TGDClass.ARBITRARY
        database = parse_database("R(a, b).\nS(b, c).")
        decision = self.analysis_policy().derive(
            program, len(database), database=database
        )
        assert decision.verdict == "terminating"
        assert decision.source == "analysis"
        assert decision.max_depth_source == "analysis-depth-bound"
        assert decision.budget.max_depth == 1
        result = semi_oblivious_chase(
            database, program, budget=decision.budget, record_derivation=False
        )
        assert result.outcome is ChaseOutcome.TERMINATED

    def test_terminating_paper_class_keeps_the_paper_budget(self):
        # For SL/L/G the paper's d_C/f_C budgets already apply; the
        # verdict rides along but the budget must not change.
        program = parse_program(TINY_SL)
        database = parse_database("P(a).\nP(b).")
        plain = BudgetPolicy().derive(program, len(database))
        aware = self.analysis_policy().derive(
            program, len(database), database=database
        )
        assert aware.verdict == "terminating"
        assert aware.budget == plain.budget
        assert aware.source == plain.source
        assert aware.max_atoms_source == plain.max_atoms_source

    def test_undetermined_job_is_byte_identical_to_the_plain_policy(self):
        import json

        database, tgds = prop45_family(3)
        plain = BudgetPolicy().derive(tgds, len(database))
        aware = self.analysis_policy().derive(tgds, len(database), database=database)
        assert aware.verdict == "undetermined"
        assert aware.budget == plain.budget
        provenance = aware.provenance()
        verdict = provenance.pop("verdict")
        assert verdict == {"value": "undetermined", "method": None}
        assert json.dumps(provenance, sort_keys=True) == json.dumps(
            plain.provenance(), sort_keys=True
        )

    def test_analyzer_failure_degrades_to_the_plain_derivation(self):
        class ExplodingAnalyzer:
            def analyze(self, database, tgds, variant):
                raise RuntimeError("boom")

        program = parse_program(TINY_SL)
        database = parse_database("P(a).")
        policy = BudgetPolicy(analyzer=ExplodingAnalyzer())
        decision = policy.derive(program, len(database), database=database)
        assert decision.verdict is None
        assert decision.budget == BudgetPolicy().derive(program, 1).budget


class TestExecutorWallLift:
    def make_executor(self, analyzer=True, per_job_timeout=30.0):
        policy = (
            BudgetPolicy(analyzer=TerminationAnalyzer()) if analyzer else BudgetPolicy()
        )
        return BatchExecutor(workers=1, policy=policy, per_job_timeout=per_job_timeout)

    def test_terminating_verdict_lifts_the_daemon_ceiling(self):
        database, tgds = sl_lower_bound(2, 2, 2)
        job = ChaseJob(program=tgds, database=database, job_id="lift")
        decision, effective, key = self.make_executor()._resolve(job)
        assert decision.verdict == "terminating"
        assert effective.max_seconds is None
        # Without the analyzer the same job is wall-bounded...
        plain_decision, plain_effective, plain_key = self.make_executor(
            analyzer=False
        )._resolve(job)
        assert plain_effective.max_seconds == 30.0
        # ...and the cache key is unaffected by the lift (same budget).
        assert key == plain_key

    def test_non_terminating_verdicts_keep_the_ceiling(self):
        database, tgds = prop45_family(3)
        job = ChaseJob(program=tgds, database=database, job_id="keep")
        decision, effective, _ = self.make_executor()._resolve(job)
        assert decision.verdict == "undetermined"
        assert effective.max_seconds == 30.0

    def test_explicit_budgets_never_consult_the_analysis(self):
        database, tgds = sl_lower_bound(2, 2, 2)
        job = ChaseJob(
            program=tgds,
            database=database,
            job_id="explicit",
            budget_mode="explicit",
            budget=ChaseBudget(max_atoms=10**12),
        )
        decision, effective, _ = self.make_executor()._resolve(job)
        assert decision.verdict is None
        assert effective.max_seconds == 30.0

    def test_job_level_timeout_survives_the_lift(self):
        database, tgds = sl_lower_bound(2, 2, 2)
        job = ChaseJob(
            program=tgds, database=database, job_id="job-timeout", timeout_seconds=5.0
        )
        decision, effective, _ = self.make_executor()._resolve(job)
        assert decision.verdict == "terminating"
        assert effective.max_seconds == 5.0
