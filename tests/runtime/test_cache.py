"""Result cache: keys, persistence, byte-identical replay."""

import json

from repro.chase.engine import ChaseBudget
from repro.model.parser import parse_database, parse_program
from repro.runtime import (
    BatchExecutor,
    ChaseJob,
    ResultCache,
    result_cache_key,
)


def make_job(**kwargs):
    defaults = dict(
        program=parse_program("R(x, y) -> exists z . S(y, z)"),
        database=parse_database("R(a, b)."),
    )
    defaults.update(kwargs)
    return ChaseJob(**defaults)


class TestCacheKey:
    def test_key_covers_fingerprints_variant_and_budget(self):
        job = make_job()
        budget = ChaseBudget(max_atoms=100)
        key = result_cache_key(job, budget)
        pfp, dfp = job.fingerprint
        assert pfp in key and dfp in key
        assert ":semi-oblivious:" in key and ":a100:" in key

    def test_key_ignores_max_seconds(self):
        job = make_job()
        assert result_cache_key(job, ChaseBudget(max_seconds=1.0)) == result_cache_key(
            job, ChaseBudget(max_seconds=9.0)
        )

    def test_key_differs_by_variant_and_budget(self):
        job = make_job()
        other = make_job(variant="restricted")
        budget = ChaseBudget()
        assert result_cache_key(job, budget) != result_cache_key(other, budget)
        assert result_cache_key(job, budget) != result_cache_key(
            job, budget.with_max_atoms(7)
        )

    def test_isomorphic_jobs_share_a_key(self):
        a = make_job()
        b = make_job(
            program=parse_program("R(u, v) -> exists q . S(v, q)"),
            database=parse_database("R(a, b)."),
        )
        assert result_cache_key(a, ChaseBudget()) == result_cache_key(b, ChaseBudget())


class TestResultCache:
    def test_put_get_roundtrip_and_stats(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"size": 3}, "R(a, b)")
        entry = cache.get("k")
        assert entry is not None and entry.summary == {"size": 3}
        assert entry.instance_text == "R(a, b)"
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "stores": 1}

    def test_get_require_instance_misses_instanceless_entries(self):
        cache = ResultCache()
        cache.put("k", {"size": 1}, None)
        assert cache.get("k", require_instance=True) is None
        cache.put("k", {"size": 1}, "R(a, b)")
        assert cache.get("k", require_instance=True) is not None

    def test_corrupt_jsonl_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("good", {"size": 1}, None)
        # Simulate a process killed mid-append: a truncated last line.
        with path.open("a") as handle:
            handle.write('{"key": "trunc", "summ')
        reloaded = ResultCache(path)
        assert len(reloaded) == 1
        assert reloaded.get("good") is not None

    def test_jsonl_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"size": 1}, None)
        cache.put("k2", {"size": 2}, "S(a)")
        reloaded = ResultCache(path)
        assert len(reloaded) == 2
        assert reloaded.get("k2").instance_text == "S(a)"
        # The file is line-oriented JSON.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["key"] == "k1"


class TestExecutorCacheIntegration:
    def test_hit_replays_byte_identical_summary(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache)
        job = make_job()
        cold = executor.run_all([job])[0]
        warm = executor.run_all([job])[0]
        assert not cold.cache_hit and warm.cache_hit
        assert warm.summary_json() == cold.summary_json()

    def test_isomorphic_job_hits_cache(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache)
        executor.run_all([make_job()])
        renamed = make_job(program=parse_program("R(p, q) -> exists n . S(q, n)"))
        result = executor.run_all([renamed])[0]
        assert result.cache_hit

    def test_timeouts_are_not_cached(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache)
        looping = make_job(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            budget_mode="explicit",
            budget=ChaseBudget(max_seconds=0.0),
        )
        result = executor.run_all([looping])[0]
        assert result.status == "timeout"
        assert len(cache) == 0
        # A rerun executes again rather than replaying the timeout.
        rerun = executor.run_all([looping])[0]
        assert not rerun.cache_hit

    def test_materializing_executor_reruns_instanceless_hits(self):
        cache = ResultCache()
        job = make_job()
        plain = BatchExecutor(workers=1, cache=cache).run_all([job])[0]
        assert plain.instance_text is None  # stored without the instance
        materialized = BatchExecutor(workers=1, cache=cache, materialize=True).run_all(
            [job]
        )[0]
        assert not materialized.cache_hit  # re-ran instead of replaying None
        assert "S(b, " in materialized.instance_text
        # The re-run upgraded the entry; a second materialising pass hits.
        again = BatchExecutor(workers=1, cache=cache, materialize=True).run_all([job])[0]
        assert again.cache_hit
        assert again.instance_text == materialized.instance_text

    def test_shared_jsonl_cache_across_executors(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        job = make_job()
        first = BatchExecutor(workers=1, cache=ResultCache(path)).run_all([job])[0]
        second = BatchExecutor(workers=1, cache=ResultCache(path)).run_all([job])[0]
        assert not first.cache_hit and second.cache_hit
        assert second.summary_json() == first.summary_json()
