"""Result cache: keys, persistence, byte-identical replay, LRU, versioning."""

import json

import pytest

from repro.chase.engine import ChaseBudget
from repro.model.parser import parse_database, parse_program
from repro.runtime import (
    BatchExecutor,
    ChaseJob,
    ResultCache,
    result_cache_key,
)
from repro.runtime.cache import SCHEMA_VERSION


def make_job(**kwargs):
    defaults = dict(
        program=parse_program("R(x, y) -> exists z . S(y, z)"),
        database=parse_database("R(a, b)."),
    )
    defaults.update(kwargs)
    return ChaseJob(**defaults)


class TestCacheKey:
    def test_key_covers_fingerprints_variant_and_budget(self):
        job = make_job()
        budget = ChaseBudget(max_atoms=100)
        key = result_cache_key(job, budget)
        pfp, dfp = job.fingerprint
        assert pfp in key and dfp in key
        assert ":semi-oblivious:" in key and ":a100:" in key

    def test_key_ignores_max_seconds(self):
        job = make_job()
        assert result_cache_key(job, ChaseBudget(max_seconds=1.0)) == result_cache_key(
            job, ChaseBudget(max_seconds=9.0)
        )

    def test_key_differs_by_variant_and_budget(self):
        job = make_job()
        other = make_job(variant="restricted")
        budget = ChaseBudget()
        assert result_cache_key(job, budget) != result_cache_key(other, budget)
        assert result_cache_key(job, budget) != result_cache_key(
            job, budget.with_max_atoms(7)
        )

    def test_isomorphic_jobs_share_a_key(self):
        a = make_job()
        b = make_job(
            program=parse_program("R(u, v) -> exists q . S(v, q)"),
            database=parse_database("R(a, b)."),
        )
        assert result_cache_key(a, ChaseBudget()) == result_cache_key(b, ChaseBudget())


class TestResultCache:
    def test_put_get_roundtrip_and_stats(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"size": 3}, "R(a, b)")
        entry = cache.get("k")
        assert entry is not None and entry.summary == {"size": 3}
        assert entry.instance_text == "R(a, b)"
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "evictions": 0,
            "version_skipped": 0,
            "torn_lines": 0,
            "crc_mismatches": 0,
            "degraded": 0,
        }

    def test_get_require_instance_misses_instanceless_entries(self):
        cache = ResultCache()
        cache.put("k", {"size": 1}, None)
        assert cache.get("k", require_instance=True) is None
        cache.put("k", {"size": 1}, "R(a, b)")
        assert cache.get("k", require_instance=True) is not None

    def test_corrupt_jsonl_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("good", {"size": 1}, None)
        # Simulate a process killed mid-append: a truncated last line.
        with path.open("a") as handle:
            handle.write('{"key": "trunc", "summ')
        reloaded = ResultCache(path)
        assert len(reloaded) == 1
        assert reloaded.get("good") is not None

    def test_jsonl_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"size": 1}, None)
        cache.put("k2", {"size": 2}, "S(a)")
        reloaded = ResultCache(path)
        assert len(reloaded) == 2
        assert reloaded.get("k2").instance_text == "S(a)"
        # The file is line-oriented JSON.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        payload = lines[0].rpartition("\tcrc32=")[0]
        assert json.loads(payload)["key"] == "k1"


class TestLRUEviction:
    def test_put_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"size": 1})
        cache.put("b", {"size": 2})
        cache.put("c", {"size": 3})
        assert len(cache) == 2
        assert cache.evictions == 1
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"size": 1})
        cache.put("b", {"size": 2})
        assert cache.get("a") is not None  # a is now the fresh one
        cache.put("c", {"size": 3})
        assert "a" in cache and "b" not in cache

    def test_restore_respects_cap_keeping_newest_lines(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        full = ResultCache(path)
        for index in range(5):
            full.put(f"k{index}", {"size": index})
        bounded = ResultCache(path, max_entries=2)
        assert len(bounded) == 2
        assert bounded.get("k4") is not None and bounded.get("k3") is not None
        assert bounded.get("k0") is None

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_eviction_is_memory_only_file_keeps_entries(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path, max_entries=1)
        cache.put("a", {"size": 1})
        cache.put("b", {"size": 2})
        assert "a" not in cache
        # The append-only spill still holds both committed entries.
        assert len(path.read_text().strip().splitlines()) == 2


class TestSchemaVersioning:
    def test_entries_are_stamped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ResultCache(path).put("k", {"size": 1})
        record = json.loads(path.read_text().rpartition("\tcrc32=")[0])
        assert record["schema_version"] == SCHEMA_VERSION

    def test_stale_version_lines_skipped_with_warning(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        stale = {"key": "old", "summary": {"size": 9}, "schema_version": SCHEMA_VERSION - 1}
        unversioned = {"key": "ancient", "summary": {"size": 8}}  # pre-stamp file
        current = {"key": "new", "summary": {"size": 1}, "schema_version": SCHEMA_VERSION}
        path.write_text("".join(json.dumps(r) + "\n" for r in (stale, unversioned, current)))
        with pytest.warns(UserWarning, match="schema version"):
            reloaded = ResultCache(path)
        assert len(reloaded) == 1
        assert reloaded.get("new") is not None
        assert reloaded.get("old") is None and reloaded.get("ancient") is None
        assert reloaded.stats()["version_skipped"] == 2

    def test_compact_drops_stale_and_superseded_lines(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with path.open("w") as handle:
            handle.write(json.dumps({"key": "old", "summary": {}, "schema_version": 0}) + "\n")
        with pytest.warns(UserWarning):
            cache = ResultCache(path)
        cache.put("k", {"size": 1})
        cache.put("k", {"size": 2})  # supersedes the first append
        assert len(path.read_text().strip().splitlines()) == 3
        assert cache.compact() == 1
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        payload = lines[0].rpartition("\tcrc32=")[0]
        assert json.loads(payload)["summary"] == {"size": 2}
        # A reload sees exactly the compacted state, warning-free.
        reloaded = ResultCache(path)
        assert len(reloaded) == 1 and reloaded.version_skipped == 0

    def test_load_restores_from_sidecar_after_crashed_compact(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"size": 1})
        cache.put("k2", {"size": 2})
        # Simulate a SIGKILL between compact()'s truncate and write:
        # the main file is empty, the sidecar holds the full content.
        sidecar = path.with_suffix(path.suffix + ".compacting")
        sidecar.write_text(path.read_text())
        path.write_text("")
        recovered = ResultCache(path)
        assert len(recovered) == 2
        assert recovered.get("k1") is not None and recovered.get("k2") is not None
        assert not sidecar.exists()  # restored and cleaned up
        assert len(path.read_text().strip().splitlines()) == 2

    def test_compact_preserves_entries_appended_by_other_writers(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        mine = ResultCache(path)
        mine.put("mine", {"size": 1})
        # A second process sharing the file commits its own entry...
        ResultCache(path).put("theirs", {"size": 2})
        # ...and an eviction drops "mine" from *memory* only.
        bounded = ResultCache(path, max_entries=1)
        assert "mine" not in bounded  # "theirs" is the fresher line
        assert bounded.compact() == 2  # both committed entries survive
        reloaded = ResultCache(path)
        assert reloaded.get("mine") is not None
        assert reloaded.get("theirs") is not None


class TestExecutorCacheIntegration:
    def test_hit_replays_byte_identical_summary(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache)
        job = make_job()
        cold = executor.run_all([job])[0]
        warm = executor.run_all([job])[0]
        assert not cold.cache_hit and warm.cache_hit
        assert warm.summary_json() == cold.summary_json()

    def test_isomorphic_job_hits_cache(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache)
        executor.run_all([make_job()])
        renamed = make_job(program=parse_program("R(p, q) -> exists n . S(q, n)"))
        result = executor.run_all([renamed])[0]
        assert result.cache_hit

    def test_timeouts_are_not_cached(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache)
        looping = make_job(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            budget_mode="explicit",
            budget=ChaseBudget(max_seconds=0.0),
        )
        result = executor.run_all([looping])[0]
        assert result.status == "timeout"
        assert len(cache) == 0
        # A rerun executes again rather than replaying the timeout.
        rerun = executor.run_all([looping])[0]
        assert not rerun.cache_hit

    def test_materializing_executor_reruns_instanceless_hits(self):
        cache = ResultCache()
        job = make_job()
        plain = BatchExecutor(workers=1, cache=cache).run_all([job])[0]
        assert plain.instance_text is None  # stored without the instance
        materialized = BatchExecutor(workers=1, cache=cache, materialize=True).run_all(
            [job]
        )[0]
        assert not materialized.cache_hit  # re-ran instead of replaying None
        assert "S(b, " in materialized.instance_text
        # The re-run upgraded the entry; a second materialising pass hits.
        again = BatchExecutor(workers=1, cache=cache, materialize=True).run_all([job])[0]
        assert again.cache_hit
        assert again.instance_text == materialized.instance_text

    def test_shared_jsonl_cache_across_executors(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        job = make_job()
        first = BatchExecutor(workers=1, cache=ResultCache(path)).run_all([job])[0]
        second = BatchExecutor(workers=1, cache=ResultCache(path)).run_all([job])[0]
        assert not first.cache_hit and second.cache_hit
        assert second.summary_json() == first.summary_json()


class TestSnapshotEntries:
    def _put_snapshot(self, cache, key="k1", lineage="lin1"):
        return cache.put(
            key,
            {"outcome": "terminated", "size": 3},
            snapshot=b"RSNP1\n fake bytes \x00\x01",
            database_lines=["R(a, b).", "R(b, c)."],
            lineage=lineage,
        )

    def test_snapshot_round_trips_through_jsonl(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        entry = self._put_snapshot(cache)
        reloaded = ResultCache(path)
        got = reloaded.get("k1")
        assert got is not None
        assert got.snapshot == entry.snapshot
        assert got.database_lines == entry.database_lines
        assert got.lineage == "lin1"
        assert reloaded.snapshot_for("lin1").key == "k1"

    def test_snapshot_survives_compaction(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        self._put_snapshot(cache)
        cache.put("plain", {"outcome": "terminated", "size": 1})
        cache.compact()
        reloaded = ResultCache(path)
        assert reloaded.get("k1").snapshot is not None
        assert reloaded.snapshot_for("lin1") is not None

    def test_lineage_tracks_freshest_entry(self):
        cache = ResultCache()
        self._put_snapshot(cache, key="old")
        self._put_snapshot(cache, key="new")
        assert cache.snapshot_for("lin1").key == "new"

    def test_lineage_cleared_on_eviction(self):
        cache = ResultCache(max_entries=2)
        self._put_snapshot(cache, key="base")
        cache.put("x1", {"s": 1})
        cache.put("x2", {"s": 2})  # evicts "base"
        assert cache.snapshot_for("lin1") is None

    def test_entries_without_snapshot_do_not_claim_lineage(self):
        cache = ResultCache()
        cache.put("plain", {"s": 1})
        assert cache.snapshot_for("lin1") is None

    def test_lineage_key_composition(self):
        from repro.chase.engine import ChaseBudget
        from repro.model.parser import parse_database, parse_program
        from repro.runtime.cache import lineage_cache_key
        from repro.runtime.jobs import ChaseJob

        program = parse_program("R(x, y) -> exists z . S(y, z)")
        small = ChaseJob(program=program, database=parse_database("R(a, b)."))
        grown = ChaseJob(
            program=program, database=parse_database("R(a, b).\nR(b, c).")
        )
        # Same program + variant + budget policy: same lineage even
        # though the databases (and auto-resolved budgets) differ.
        assert lineage_cache_key(small) == lineage_cache_key(grown)
        other_variant = ChaseJob(
            program=program, database=small.database, variant="oblivious"
        )
        assert lineage_cache_key(other_variant) != lineage_cache_key(small)
        explicit = ChaseJob(
            program=program,
            database=small.database,
            budget_mode="explicit",
            budget=ChaseBudget(max_atoms=7),
        )
        assert lineage_cache_key(explicit) != lineage_cache_key(small)
