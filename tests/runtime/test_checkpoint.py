"""Unit tests for mid-run chase checkpoints (encode/decode, torn blobs)."""

from __future__ import annotations

import pytest

from repro.runtime.checkpoint import (
    CheckpointError,
    RoundCheckpointer,
    decode_checkpoint,
    encode_checkpoint,
    load_checkpoint,
)
from repro.runtime.faults import FaultInjector, FaultPlan, FaultSpec


def blob(store_bytes: bytes = b"store-payload") -> bytes:
    return encode_checkpoint(
        store_bytes,
        marks=[3, 1, 4],
        rounds=7,
        considered=100,
        applied=42,
        created=17,
        database_size=9,
    )


class FakeStore:
    """Just enough of FactStore for the checkpointer's snapshot call."""

    def __init__(self, payload: bytes = b"fake-snapshot"):
        self.payload = payload

    def snapshot(self, complete: bool = True, rounds: int = 0) -> bytes:
        return self.payload


class TestEncodeDecode:
    def test_roundtrip(self):
        header, store = decode_checkpoint(blob())
        assert store == b"store-payload"
        assert header["marks"] == [3, 1, 4]
        assert header["rounds"] == 7
        assert header["considered"] == 100
        assert header["applied"] == 42
        assert header["created"] == 17
        assert header["database_size"] == 9

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError):
            decode_checkpoint(b"NOTACKPT" + blob())

    @pytest.mark.parametrize("keep", [4, 12, 30, -1])
    def test_truncation_anywhere_is_detected(self, keep):
        data = blob()
        with pytest.raises(CheckpointError):
            decode_checkpoint(data[:keep])

    def test_corrupt_header_rejected(self):
        data = bytearray(blob())
        data[20] ^= 0xFF  # flip a byte inside the header JSON
        with pytest.raises(CheckpointError):
            decode_checkpoint(bytes(data))


class TestLoadCheckpoint:
    def test_absent_file_is_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "missing.ckpt")) is None

    def test_valid_file_roundtrips(self, tmp_path):
        path = tmp_path / "ok.ckpt"
        path.write_bytes(blob())
        loaded = load_checkpoint(str(path))
        assert loaded is not None
        header, store = loaded
        assert header["rounds"] == 7 and store == b"store-payload"

    def test_damaged_file_is_none_not_raise(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        path.write_bytes(blob()[: len(blob()) // 2])
        assert load_checkpoint(str(path)) is None


class TestRoundCheckpointer:
    def test_writes_only_on_every_nth_round(self, tmp_path):
        path = tmp_path / "job.ckpt"
        checkpointer = RoundCheckpointer(str(path), every_rounds=3, database_size=5)
        store = FakeStore()
        for rounds in range(1, 7):
            checkpointer(rounds, store, [rounds], (rounds * 10, rounds, rounds))
        assert checkpointer.writes == 2  # rounds 3 and 6
        header, payload = load_checkpoint(str(path))
        assert header["rounds"] == 6 and header["marks"] == [6]
        assert header["database_size"] == 5
        assert payload == b"fake-snapshot"

    def test_skips_when_marks_unavailable(self, tmp_path):
        path = tmp_path / "job.ckpt"
        checkpointer = RoundCheckpointer(str(path), every_rounds=1)
        checkpointer(4, FakeStore(), None, (0, 0, 0))
        assert checkpointer.writes == 0 and not path.exists()

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RoundCheckpointer(str(tmp_path / "x.ckpt"), every_rounds=0)

    def test_injected_truncation_tears_the_write(self, tmp_path):
        path = tmp_path / "job.ckpt"
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(point="checkpoint.write", action="truncate"),))
        )
        checkpointer = RoundCheckpointer(str(path), every_rounds=1, injector=injector)
        checkpointer(1, FakeStore(), [1], (1, 1, 1))
        assert path.exists()
        # The torn blob is written — and rejected on load: the retry
        # that would have resumed from it starts cold instead.
        assert load_checkpoint(str(path)) is None
        # The next boundary (fault exhausted) overwrites it with a good one.
        checkpointer(2, FakeStore(), [2], (2, 2, 2))
        assert load_checkpoint(str(path)) is not None

    def test_discard_removes_the_file(self, tmp_path):
        path = tmp_path / "job.ckpt"
        checkpointer = RoundCheckpointer(str(path), every_rounds=1)
        checkpointer(1, FakeStore(), [1], (1, 1, 1))
        assert path.exists()
        checkpointer.discard()
        assert not path.exists()
        checkpointer.discard()  # idempotent
