"""Batch executor: serial/pool equivalence, streaming, errors, timeouts."""

import pytest

from repro.chase.engine import ChaseBudget
from repro.model.parser import parse_database, parse_program
from repro.runtime import (
    BatchExecutor,
    ChaseJob,
    ResultCache,
    execute_payload,
)
from repro.generators.workloads import mixed_workload_jobs


def small_batch():
    return [
        ChaseJob(
            program=parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> T(x)"),
            database=parse_database("R(a, b).\nR(b, c)."),
            job_id="terminating",
        ),
        ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
            job_id="looping",  # auto depth budget stops this instantly
        ),
        ChaseJob(
            program=parse_program("Emp(x) -> exists d . Dept(x, d)"),
            database=parse_database("Emp(e1).\nEmp(e2).\nEmp(e3)."),
            job_id="explicit",
            budget_mode="explicit",
            budget=ChaseBudget(max_atoms=50),
        ),
    ]


class TestSerialExecutor:
    def test_results_in_submission_order_with_provenance(self):
        results = BatchExecutor(workers=1).run_all(small_batch())
        assert [r.job_id for r in results] == ["terminating", "looping", "explicit"]
        by_id = {r.job_id: r for r in results}
        assert by_id["terminating"].summary["outcome"] == "terminated"
        assert by_id["looping"].summary["outcome"] == "depth_budget_exceeded"
        assert by_id["looping"].budget_provenance["source"] == "paper-bound"
        assert by_id["explicit"].budget_provenance["source"] == "explicit"
        assert all(r.status == "ok" for r in results)

    def test_streaming_yields_incrementally(self):
        executor = BatchExecutor(workers=1)
        stream = executor.run(small_batch())
        first = next(stream)
        assert first.job_id == "terminating"
        assert [r.job_id for r in stream] == ["looping", "explicit"]

    def test_materialize_includes_instance_text(self):
        executor = BatchExecutor(workers=1, materialize=True)
        result = executor.run_all(small_batch()[:1])[0]
        assert "S(b, " in result.instance_text

    def test_unparsable_program_becomes_error_result(self):
        payload = {
            "job_id": "bad",
            "program_text": "this is not a rule",
            "database_text": "R(a).",
            "variant": "semi-oblivious",
            "budget": ChaseBudget().as_dict(),
        }
        record = execute_payload(payload)
        assert record["status"] == "error"
        assert "ParseError" in record["error"]

    def test_per_job_timeout_is_reported(self):
        executor = BatchExecutor(workers=1, per_job_timeout=0.0)
        looping = ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
            budget_mode="default",  # no depth budget: only time stops it
        )
        result = executor.run_all([looping])[0]
        assert result.status == "timeout"
        assert result.summary["outcome"] == "time_budget_exceeded"


class TestPoolExecutor:
    def test_pool_matches_serial_byte_for_byte(self):
        jobs = small_batch()
        serial = {r.job_id: r for r in BatchExecutor(workers=1).run_all(jobs)}
        pooled = {r.job_id: r for r in BatchExecutor(workers=2).run_all(jobs)}
        assert set(serial) == set(pooled)
        for job_id in serial:
            assert serial[job_id].summary_json() == pooled[job_id].summary_json()

    def test_pool_with_cache_replays_duplicates(self):
        jobs = small_batch()
        duplicates = jobs + [
            ChaseJob(
                program=jobs[0].program,
                database=jobs[0].database,
                job_id="terminating-again",
            )
        ]
        cache = ResultCache()
        results = BatchExecutor(workers=2, cache=cache).run_all(duplicates)
        by_id = {r.job_id: r for r in results}
        assert len(by_id) == 4
        assert by_id["terminating-again"].cache_hit
        assert (
            by_id["terminating-again"].summary_json()
            == by_id["terminating"].summary_json()
        )

    def test_pool_on_mixed_workload_matches_serial(self):
        jobs = mixed_workload_jobs(job_count=20, seed=3)
        serial = {r.job_id: r for r in BatchExecutor(workers=1).run_all(jobs)}
        pooled = {r.job_id: r for r in BatchExecutor(workers=2).run_all(jobs)}
        assert set(serial) == set(pooled)
        agreeing = [
            job_id
            for job_id in serial
            if serial[job_id].status == "ok" and pooled[job_id].status == "ok"
        ]
        # Timeout-free jobs must agree byte for byte.
        for job_id in agreeing:
            assert serial[job_id].summary_json() == pooled[job_id].summary_json()


class TestMixedWorkload:
    def test_manifest_is_deterministic_and_mixed(self):
        a = mixed_workload_jobs(job_count=30, seed=11)
        b = mixed_workload_jobs(job_count=30, seed=11)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.fingerprint for j in a] == [j.fingerprint for j in b]
        families = {tag for j in a for tag in j.tags if tag.startswith("family:")}
        assert len(families) >= 8

    def test_auto_budgeted_terminating_sl_l_jobs_stay_within_budget(self):
        jobs = mixed_workload_jobs(job_count=30, seed=11)
        results = BatchExecutor(workers=1).run_all(jobs)
        for result in results:
            if (
                result.budget_provenance["source"] == "paper-bound"
                and result.budget_provenance["class"] in ("SL", "L")
                and "terminating" in result.tags
            ):
                assert result.summary["outcome"] == "terminated", result.job_id


class TestSnapshotPayloads:
    def test_ship_snapshots_matches_text_payloads_byte_for_byte(self):
        jobs = small_batch()
        with_snapshots = BatchExecutor(workers=1, ship_snapshots=True).run_all(jobs)
        with_text = BatchExecutor(workers=1, ship_snapshots=False).run_all(jobs)
        assert [r.summary_json() for r in with_snapshots] == [
            r.summary_json() for r in with_text
        ]

    def test_non_store_engine_falls_back_to_text(self):
        executor = BatchExecutor(workers=1, engine="plans")
        payload = executor._payload(*_resolved(executor, small_batch()[0]))
        assert "database_text" in payload and "database_snapshot" not in payload

    def test_store_engine_payload_carries_snapshot(self):
        executor = BatchExecutor(workers=1)
        job = small_batch()[0]
        payload = executor._payload(*_resolved(executor, job))
        assert "database_snapshot" not in payload or payload["database_snapshot"]
        assert payload.get("database_snapshot") == job.database_snapshot
        # The encoding is cached: a retry reuses the same bytes object.
        assert executor._payload(*_resolved(executor, job))[
            "database_snapshot"
        ] is payload["database_snapshot"]

    def test_snapshot_payload_executes_identically(self):
        job = small_batch()[0]
        executor = BatchExecutor(workers=1)
        decision, budget, key = executor._resolve(job)
        from repro.runtime.executor import execute_payload

        snap_record = execute_payload(executor._payload(job, budget))
        text_executor = BatchExecutor(workers=1, ship_snapshots=False)
        text_record = execute_payload(text_executor._payload(job, budget))
        assert snap_record["summary"] == text_record["summary"]


def _resolved(executor, job):
    decision, budget, key = executor._resolve(job)
    return job, budget


def _split_database(database, keep: int):
    from repro.model.instance import Database
    from repro.model.serialization import atom_to_text

    facts = sorted(database, key=atom_to_text)
    return Database(facts[:keep]), Database(facts)


class TestIncrementalRechase:
    def _grown_pair(self):
        from repro.generators.workloads import restricted_heavy

        full_db, tgds = restricted_heavy(30, 8)
        base_db, _ = restricted_heavy(30, 6)
        return tgds, base_db, full_db

    def test_resumes_from_cached_snapshot(self):
        tgds, base_db, full_db = self._grown_pair()
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache, incremental=True)
        base = executor.run_all([ChaseJob(program=tgds, database=base_db)])[0]
        assert base.status == "ok" and base.resumed_from is None
        entry = cache.get(base.cache_key)
        assert entry is not None and entry.snapshot is not None
        assert entry.lineage is not None and entry.database_lines

        grown = executor.run_all([ChaseJob(program=tgds, database=full_db)])[0]
        assert grown.status == "ok"
        assert grown.resumed_from == base.cache_key

        cold = BatchExecutor(workers=1).run_all(
            [ChaseJob(program=tgds, database=full_db)]
        )[0]
        for field in ("size", "database_size", "terminated", "outcome", "max_depth"):
            assert grown.summary[field] == cold.summary[field]

    def test_incremental_result_chains_without_polluting_replay(self):
        tgds, base_db, full_db = self._grown_pair()
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache, incremental=True)
        executor.run_all([ChaseJob(program=tgds, database=base_db)])
        grown = executor.run_all([ChaseJob(program=tgds, database=full_db)])[0]
        # The resumed run's snapshot becomes the lineage's freshest
        # base — under a "delta:" key, so the cold result key stays
        # unclaimed: a resumed run's statistics (and, under tight round
        # budgets, outcome) are not what a cold execution would report,
        # and must never be replayed as one.
        from repro.runtime.cache import lineage_cache_key

        job = ChaseJob(program=tgds, database=full_db)
        fresh = cache.snapshot_for(lineage_cache_key(job))
        assert fresh is not None and fresh.key == "delta:" + grown.cache_key
        assert cache.get(grown.cache_key) is None  # no replayable entry
        # Resubmitting the grown job misses the result cache and
        # resumes again — this time from its own delta entry.
        again = executor.run_all([ChaseJob(program=tgds, database=full_db)])[0]
        assert not again.cache_hit
        assert again.resumed_from == "delta:" + grown.cache_key
        assert again.summary["size"] == grown.summary["size"]

    def test_resume_survives_nulls_in_the_base_database(self):
        # A base instance that already contains labelled nulls (e.g. a
        # prior chase result used as input): the snapshot recipe-encodes
        # them, and re-interning the same null on the resumed run must
        # find the recipe id instead of inventing a duplicate — or the
        # delta-derived T(n) below would coexist with the base run's
        # T(n) as two distinct packed facts.
        from repro.model.atoms import Atom, Predicate
        from repro.model.instance import Instance
        from repro.model.terms import Constant, make_null
        from repro.chase.semi_oblivious import semi_oblivious_chase

        r = Predicate("R", 2)
        a, b = Constant("a"), Constant("b")
        null = make_null("seed_rule", "z", {"x": a})
        base_db = Instance([Atom(r, (a, null))])
        full_db = Instance([Atom(r, (a, null)), Atom(r, (b, null))])
        tgds = parse_program("R(x, y) -> T(y)")
        base = semi_oblivious_chase(base_db, tgds, record_derivation=False, engine="store")
        assert base.terminated
        resumed = semi_oblivious_chase(
            full_db, tgds, record_derivation=False, engine="store",
            resume_from=base.store_snapshot(),
        )
        cold = semi_oblivious_chase(full_db, tgds, record_derivation=False, engine="store")
        assert cold.terminated and resumed.terminated
        assert resumed.size == cold.size == 3  # R, R, T(n) — no duplicate T
        assert resumed.instance == cold.instance

    def test_no_resume_when_database_is_not_a_superset(self):
        tgds, base_db, _ = self._grown_pair()
        from repro.model.instance import Database

        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache, incremental=True)
        executor.run_all([ChaseJob(program=tgds, database=base_db)])
        disjoint = Database(list(base_db)[: len(base_db) // 2])
        shrunk = executor.run_all([ChaseJob(program=tgds, database=disjoint)])[0]
        assert shrunk.resumed_from is None  # subset, not superset: cold run

    def test_no_resume_across_programs(self):
        tgds, base_db, full_db = self._grown_pair()
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache, incremental=True)
        executor.run_all([ChaseJob(program=tgds, database=base_db)])
        other_program = parse_program("R(x, y) -> exists z . S(y, z)")
        other = executor.run_all(
            [ChaseJob(program=other_program, database=full_db)]
        )[0]
        assert other.resumed_from is None

    def test_incremental_off_never_stores_snapshots(self):
        tgds, base_db, _ = self._grown_pair()
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache, incremental=False)
        result = executor.run_all([ChaseJob(program=tgds, database=base_db)])[0]
        entry = cache.get(result.cache_key)
        assert entry is not None and entry.snapshot is None

    def test_nonterminating_runs_are_not_resume_bases(self):
        cache = ResultCache()
        executor = BatchExecutor(workers=1, cache=cache, incremental=True)
        job = ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
            budget_mode="explicit",
            budget=ChaseBudget(max_atoms=40),
        )
        result = executor.run_all([job])[0]
        assert result.status == "ok" and result.summary["terminated"] is False
        entry = cache.get(result.cache_key)
        assert entry is not None and entry.snapshot is None

    def test_incremental_survives_jsonl_spill(self, tmp_path):
        tgds, base_db, full_db = self._grown_pair()
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        executor = BatchExecutor(workers=1, cache=cache, incremental=True)
        base = executor.run_all([ChaseJob(program=tgds, database=base_db)])[0]
        # A fresh process (fresh cache object) reloads the snapshot from
        # the spill and resumes from it.
        reloaded = ResultCache(path)
        executor2 = BatchExecutor(workers=1, cache=reloaded, incremental=True)
        grown = executor2.run_all([ChaseJob(program=tgds, database=full_db)])[0]
        assert grown.resumed_from == base.cache_key
