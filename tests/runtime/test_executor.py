"""Batch executor: serial/pool equivalence, streaming, errors, timeouts."""

import pytest

from repro.chase.engine import ChaseBudget
from repro.model.parser import parse_database, parse_program
from repro.runtime import (
    BatchExecutor,
    ChaseJob,
    ResultCache,
    execute_payload,
)
from repro.generators.workloads import mixed_workload_jobs


def small_batch():
    return [
        ChaseJob(
            program=parse_program("R(x, y) -> exists z . S(y, z)\nS(x, y) -> T(x)"),
            database=parse_database("R(a, b).\nR(b, c)."),
            job_id="terminating",
        ),
        ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
            job_id="looping",  # auto depth budget stops this instantly
        ),
        ChaseJob(
            program=parse_program("Emp(x) -> exists d . Dept(x, d)"),
            database=parse_database("Emp(e1).\nEmp(e2).\nEmp(e3)."),
            job_id="explicit",
            budget_mode="explicit",
            budget=ChaseBudget(max_atoms=50),
        ),
    ]


class TestSerialExecutor:
    def test_results_in_submission_order_with_provenance(self):
        results = BatchExecutor(workers=1).run_all(small_batch())
        assert [r.job_id for r in results] == ["terminating", "looping", "explicit"]
        by_id = {r.job_id: r for r in results}
        assert by_id["terminating"].summary["outcome"] == "terminated"
        assert by_id["looping"].summary["outcome"] == "depth_budget_exceeded"
        assert by_id["looping"].budget_provenance["source"] == "paper-bound"
        assert by_id["explicit"].budget_provenance["source"] == "explicit"
        assert all(r.status == "ok" for r in results)

    def test_streaming_yields_incrementally(self):
        executor = BatchExecutor(workers=1)
        stream = executor.run(small_batch())
        first = next(stream)
        assert first.job_id == "terminating"
        assert [r.job_id for r in stream] == ["looping", "explicit"]

    def test_materialize_includes_instance_text(self):
        executor = BatchExecutor(workers=1, materialize=True)
        result = executor.run_all(small_batch()[:1])[0]
        assert "S(b, " in result.instance_text

    def test_unparsable_program_becomes_error_result(self):
        payload = {
            "job_id": "bad",
            "program_text": "this is not a rule",
            "database_text": "R(a).",
            "variant": "semi-oblivious",
            "budget": ChaseBudget().as_dict(),
        }
        record = execute_payload(payload)
        assert record["status"] == "error"
        assert "ParseError" in record["error"]

    def test_per_job_timeout_is_reported(self):
        executor = BatchExecutor(workers=1, per_job_timeout=0.0)
        looping = ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
            budget_mode="default",  # no depth budget: only time stops it
        )
        result = executor.run_all([looping])[0]
        assert result.status == "timeout"
        assert result.summary["outcome"] == "time_budget_exceeded"


class TestPoolExecutor:
    def test_pool_matches_serial_byte_for_byte(self):
        jobs = small_batch()
        serial = {r.job_id: r for r in BatchExecutor(workers=1).run_all(jobs)}
        pooled = {r.job_id: r for r in BatchExecutor(workers=2).run_all(jobs)}
        assert set(serial) == set(pooled)
        for job_id in serial:
            assert serial[job_id].summary_json() == pooled[job_id].summary_json()

    def test_pool_with_cache_replays_duplicates(self):
        jobs = small_batch()
        duplicates = jobs + [
            ChaseJob(
                program=jobs[0].program,
                database=jobs[0].database,
                job_id="terminating-again",
            )
        ]
        cache = ResultCache()
        results = BatchExecutor(workers=2, cache=cache).run_all(duplicates)
        by_id = {r.job_id: r for r in results}
        assert len(by_id) == 4
        assert by_id["terminating-again"].cache_hit
        assert (
            by_id["terminating-again"].summary_json()
            == by_id["terminating"].summary_json()
        )

    def test_pool_on_mixed_workload_matches_serial(self):
        jobs = mixed_workload_jobs(job_count=20, seed=3)
        serial = {r.job_id: r for r in BatchExecutor(workers=1).run_all(jobs)}
        pooled = {r.job_id: r for r in BatchExecutor(workers=2).run_all(jobs)}
        assert set(serial) == set(pooled)
        agreeing = [
            job_id
            for job_id in serial
            if serial[job_id].status == "ok" and pooled[job_id].status == "ok"
        ]
        # Timeout-free jobs must agree byte for byte.
        for job_id in agreeing:
            assert serial[job_id].summary_json() == pooled[job_id].summary_json()


class TestMixedWorkload:
    def test_manifest_is_deterministic_and_mixed(self):
        a = mixed_workload_jobs(job_count=30, seed=11)
        b = mixed_workload_jobs(job_count=30, seed=11)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.fingerprint for j in a] == [j.fingerprint for j in b]
        families = {tag for j in a for tag in j.tags if tag.startswith("family:")}
        assert len(families) >= 8

    def test_auto_budgeted_terminating_sl_l_jobs_stay_within_budget(self):
        jobs = mixed_workload_jobs(job_count=30, seed=11)
        results = BatchExecutor(workers=1).run_all(jobs)
        for result in results:
            if (
                result.budget_provenance["source"] == "paper-bound"
                and result.budget_provenance["class"] in ("SL", "L")
                and "terminating" in result.tags
            ):
                assert result.summary["outcome"] == "terminated", result.job_id
