"""ChaseJob validation and JSONL manifest round-trips."""

import json

import pytest

from repro.chase.engine import ChaseBudget
from repro.model.parser import parse_database, parse_program
from repro.runtime import (
    ChaseJob,
    job_from_manifest_entry,
    manifest_entry,
    read_manifest,
    write_manifest,
)


def make_job(**kwargs):
    defaults = dict(
        program=parse_program("R(x, y) -> exists z . S(y, z)"),
        database=parse_database("R(a, b)."),
    )
    defaults.update(kwargs)
    return ChaseJob(**defaults)


class TestChaseJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_job(variant="bogus")
        with pytest.raises(ValueError):
            make_job(budget_mode="bogus")
        with pytest.raises(ValueError):
            make_job(budget_mode="explicit")  # no budget given

    def test_default_job_id_derives_from_fingerprints(self):
        job = make_job()
        pfp, dfp = job.fingerprint
        assert job.job_id == f"job-{pfp[:8]}-{dfp[:8]}"

    def test_fingerprint_is_cached(self):
        job = make_job()
        assert job.fingerprint is job.fingerprint


class TestManifests:
    def test_entry_roundtrip_preserves_job_semantics(self):
        job = make_job(
            job_id="j1",
            variant="restricted",
            budget_mode="explicit",
            budget=ChaseBudget(max_atoms=99, max_depth=4),
            timeout_seconds=2.5,
            tags=("family:test",),
        )
        entry = manifest_entry(job)
        rebuilt = job_from_manifest_entry(json.loads(json.dumps(entry)))
        assert rebuilt.job_id == "j1"
        assert rebuilt.variant == "restricted"
        assert rebuilt.budget == job.budget
        assert rebuilt.timeout_seconds == 2.5
        assert rebuilt.tags == ("family:test",)
        assert rebuilt.fingerprint == job.fingerprint

    def test_budget_spec_variants(self):
        base = {"program": "R(x) -> S(x)", "database": "R(a)."}
        assert job_from_manifest_entry({**base}).budget_mode == "auto"
        assert job_from_manifest_entry({**base, "budget": "default"}).budget_mode == "default"
        explicit = job_from_manifest_entry({**base, "budget": {"max_atoms": 5}})
        assert explicit.budget_mode == "explicit"
        assert explicit.budget.max_atoms == 5
        with pytest.raises(ValueError):
            job_from_manifest_entry({**base, "budget": 42})

    def test_entry_requires_program_and_database(self):
        with pytest.raises(ValueError):
            job_from_manifest_entry({"database": "R(a)."})
        with pytest.raises(ValueError):
            job_from_manifest_entry({"program": "R(x) -> S(x)"})

    def test_file_manifest_with_relative_paths(self, tmp_path):
        (tmp_path / "onto.rules").write_text("R(x, y) -> exists z . S(y, z)\n")
        (tmp_path / "db.facts").write_text("R(a, b).\n")
        manifest = tmp_path / "manifest.jsonl"
        manifest.write_text(
            json.dumps({"id": "from-files", "rules": "onto.rules", "facts": "db.facts"})
            + "\n# a comment line\n\n"
        )
        jobs = read_manifest(manifest)
        assert len(jobs) == 1
        assert jobs[0].job_id == "from-files"
        assert len(jobs[0].database) == 1

    def test_write_then_read_manifest(self, tmp_path):
        jobs = [make_job(job_id="a"), make_job(job_id="b", variant="oblivious")]
        path = tmp_path / "batch.jsonl"
        write_manifest(jobs, path)
        rebuilt = read_manifest(path)
        assert [j.job_id for j in rebuilt] == ["a", "b"]
        assert [j.fingerprint for j in rebuilt] == [j.fingerprint for j in jobs]

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"program": "R(x) -> S(x)"\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_manifest(path)
