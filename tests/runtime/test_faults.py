"""Unit tests for the deterministic fault-injection layer."""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime.faults import (
    ENV_VAR,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    backoff_schedule,
    classify_failure,
    get_injector,
    reset_injector,
)


class TestSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(point="worker.round", action="explode")

    def test_times_and_after_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(point="p", action="error", times=0)
        with pytest.raises(FaultPlanError):
            FaultSpec(point="p", action="error", after=-1)

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"point": "p", "action": "error", "when": "later"})

    def test_missing_point_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"action": "error"})


class TestPlanRoundtrip:
    def make_plan(self, tmp_path):
        return FaultPlan(
            faults=(
                FaultSpec(point="worker.round", action="kill", at_round=3, times=2),
                FaultSpec(point="cache.spill_write", action="enospc", after=1),
                FaultSpec(point="http.response", action="delay", seconds=0.25),
            ),
            seed=42,
            state_dir=str(tmp_path / "state"),
        )

    def test_inline_env_roundtrip(self, tmp_path):
        plan = self.make_plan(tmp_path)
        assert FaultPlan.from_env_value(plan.to_env()) == plan

    def test_at_path_env_roundtrip(self, tmp_path):
        plan = self.make_plan(tmp_path)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_env())
        assert FaultPlan.from_env_value(f"@{path}") == plan

    def test_missing_plan_file_fails_loudly(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_env_value("@/nonexistent/plan.json")

    def test_malformed_json_fails_loudly(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_env_value("{not json")

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"faults": [], "chaos_level": 11})


class TestFiring:
    def test_after_and_times_gate_occurrences(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(point="p", action="error", after=1, times=2),))
        )
        injector.fire("p")  # occurrence 1: skipped by after
        with pytest.raises(FaultError):
            injector.fire("p")  # 2: fires
        with pytest.raises(FaultError):
            injector.fire("p")  # 3: fires
        assert injector.fire("p") is None  # 4: exhausted
        assert injector.fired_counts() == {"p": 2}

    def test_at_round_filter_does_not_consume_occurrences(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(point="p", action="error", at_round=5),))
        )
        for round_number in range(5):
            assert injector.fire("p", round=round_number) is None
        with pytest.raises(FaultError):
            injector.fire("p", round=5)

    def test_match_checks_job_and_key(self):
        injector = FaultInjector(
            FaultPlan(
                faults=(FaultSpec(point="p", action="error", match="victim", times=9),)
            )
        )
        assert injector.fire("p", job="innocent") is None
        with pytest.raises(FaultError):
            injector.fire("p", job="the-victim-job")
        with pytest.raises(FaultError):
            injector.fire("p", key="cache-key-victim-1")

    def test_truncate_and_drop_are_cooperative_effects(self):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    FaultSpec(point="checkpoint.write", action="truncate"),
                    FaultSpec(point="http.response", action="drop"),
                )
            )
        )
        assert injector.fire("checkpoint.write") == "truncate"
        assert injector.fire("http.response") == "drop"
        assert injector.fire("checkpoint.write") is None  # one-shot

    def test_enospc_raises_oserror(self):
        import errno

        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(point="cache.spill_write", action="enospc"),))
        )
        with pytest.raises(OSError) as excinfo:
            injector.fire("cache.spill_write")
        assert excinfo.value.errno == errno.ENOSPC

    def test_kill_degrades_to_transient_error_outside_workers(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(point="worker.round", action="kill"),))
        )
        with pytest.raises(FaultError) as excinfo:
            injector.fire("worker.round", job="j", round=1)
        assert excinfo.value.transient

    def test_disabled_injector_is_inert(self):
        injector = FaultInjector(None)
        assert not injector.enabled
        assert injector.fire("worker.round", job="x", round=1) is None
        assert injector.fired_total() == 0


class TestCrossProcessState:
    def test_state_dir_shares_occurrences_across_injectors(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(point="p", action="error", times=1),),
            state_dir=str(tmp_path / "state"),
        )
        first, second = FaultInjector(plan), FaultInjector(plan)
        with pytest.raises(FaultError):
            first.fire("p")
        # A fresh injector (a respawned worker) sees the spec exhausted.
        assert second.fire("p") is None

    def test_fault_log_records_context(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(point="worker.round", action="error"),),
            state_dir=str(tmp_path / "state"),
        )
        injector = FaultInjector(plan)
        with pytest.raises(FaultError):
            injector.fire("worker.round", job="job-7", round=3)
        log = tmp_path / "state" / "fault_log.jsonl"
        rows = [json.loads(line) for line in log.read_text().splitlines()]
        assert rows[0]["point"] == "worker.round"
        assert rows[0]["job"] == "job-7" and rows[0]["round"] == 3
        # fired_counts reads the shared log, so parent processes see
        # faults that fired inside workers.
        assert injector.fired_counts() == {"worker.round": 1}


class TestEnvironmentWiring:
    def test_get_injector_tracks_env_changes(self, tmp_path):
        reset_injector()
        previous = os.environ.pop(ENV_VAR, None)
        try:
            assert not get_injector().enabled
            plan = FaultPlan(faults=(FaultSpec(point="p", action="error"),))
            os.environ[ENV_VAR] = plan.to_env()
            assert get_injector().enabled  # re-parses on change, no reset needed
            del os.environ[ENV_VAR]
            assert not get_injector().enabled
        finally:
            if previous is not None:
                os.environ[ENV_VAR] = previous
            reset_injector()

    def test_malformed_env_plan_raises(self):
        reset_injector()
        previous = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = "{broken"
        try:
            with pytest.raises(FaultPlanError):
                get_injector()
        finally:
            if previous is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous
            reset_injector()


class TestFailureClassification:
    def test_fault_errors_follow_their_flag(self):
        assert classify_failure(FaultError("x", transient=True)) == "transient"
        assert classify_failure(FaultError("x", transient=False)) == "deterministic"

    def test_broken_pool_and_io_are_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_failure(BrokenProcessPool("died")) == "transient"
        assert classify_failure(OSError("disk")) == "transient"
        assert classify_failure(ConnectionResetError()) == "transient"

    def test_logic_errors_are_deterministic(self):
        assert classify_failure(ValueError("bad program")) == "deterministic"
        assert classify_failure(TypeError("bad types")) == "deterministic"


def test_backoff_schedule_is_deterministic_and_capped():
    assert backoff_schedule(0.05, 4) == [0.05, 0.1, 0.2, 0.4]
    assert backoff_schedule(0.5, 5, cap=2.0) == [0.5, 1.0, 2.0, 2.0, 2.0]
    assert backoff_schedule(0.1, 0) == []
