"""Job registry: lifecycle, long-poll waits, TTL retention."""

import threading
import time

from repro.service import DONE, QUEUED, RUNNING, JobRegistry


class TestLifecycle:
    def test_create_and_transition(self):
        registry = JobRegistry()
        record = registry.create_job("client-1")
        assert record.state == QUEUED and record.client_id == "client-1"
        assert registry.job(record.job_id) is record
        registry.mark_running(record.job_id)
        assert record.state == RUNNING and record.started_at is not None
        registry.mark_done(record.job_id, {"id": "client-1", "status": "ok"})
        assert record.state == DONE and record.terminal
        assert record.result["status"] == "ok"

    def test_mark_done_from_queued_state(self):
        # Dedup members can complete without ever being marked running.
        registry = JobRegistry()
        record = registry.create_job("c")
        registry.mark_done(record.job_id, {"status": "ok"}, deduped_of="j-000099")
        assert record.terminal and record.deduped_of == "j-000099"
        assert record.as_dict()["deduped_of"] == "j-000099"

    def test_service_ids_are_unique_even_for_equal_client_ids(self):
        registry = JobRegistry()
        a, b = registry.create_job("same"), registry.create_job("same")
        assert a.job_id != b.job_id

    def test_batches_record_order_and_errors(self):
        registry = JobRegistry()
        batch = registry.create_batch(["j-1", "j-2"], [{"id": "line-3", "status": "error"}])
        assert registry.batch(batch.batch_id) is batch
        assert batch.job_ids == ["j-1", "j-2"]
        assert batch.manifest_errors[0]["id"] == "line-3"
        assert registry.batch("b-unknown") is None


class TestWaiting:
    def test_wait_returns_immediately_when_terminal(self):
        registry = JobRegistry()
        record = registry.create_job("c")
        registry.mark_done(record.job_id, {"status": "ok"})
        assert registry.wait_for_job(record.job_id, timeout=0.0).terminal

    def test_wait_times_out_returning_nonterminal_record(self):
        registry = JobRegistry()
        record = registry.create_job("c")
        start = time.monotonic()
        waited = registry.wait_for_job(record.job_id, timeout=0.05)
        assert time.monotonic() - start >= 0.04
        assert waited is record and not waited.terminal

    def test_wait_unblocks_on_completion(self):
        registry = JobRegistry()
        record = registry.create_job("c")

        def finish():
            time.sleep(0.05)
            registry.mark_done(record.job_id, {"status": "ok"})

        thread = threading.Thread(target=finish)
        thread.start()
        waited = registry.wait_for_job(record.job_id, timeout=5.0)
        thread.join()
        assert waited.terminal

    def test_wait_unknown_id_is_none(self):
        assert JobRegistry().wait_for_job("j-nope", timeout=0.0) is None


class TestRetention:
    def test_sweep_drops_only_expired_terminal_records(self):
        registry = JobRegistry(ttl_seconds=10.0)
        done_old = registry.create_job("old")
        done_new = registry.create_job("new")
        queued = registry.create_job("queued")
        registry.mark_done(done_old.job_id, {"status": "ok"})
        registry.mark_done(done_new.job_id, {"status": "ok"})
        done_old.finished_at = time.time() - 60.0
        assert registry.sweep() == 1
        assert registry.job(done_old.job_id) is None
        assert registry.job(done_new.job_id) is not None
        assert registry.job(queued.job_id) is not None
        assert registry.counts()["swept"] == 1

    def test_sweep_drops_batches_once_all_jobs_swept(self):
        registry = JobRegistry(ttl_seconds=0.0)
        record = registry.create_job("c")
        batch = registry.create_batch([record.job_id])
        registry.mark_done(record.job_id, {"status": "ok"})
        registry.sweep(now=time.time() + 1.0)
        assert registry.job(record.job_id) is None
        assert registry.batch(batch.batch_id) is None

    def test_empty_batch_ages_out_on_submission_time(self):
        # A batch whose every manifest line failed has no member jobs;
        # it must still age out rather than leak for the daemon's life.
        registry = JobRegistry(ttl_seconds=10.0)
        batch = registry.create_batch([], [{"id": "line-1", "status": "error"}])
        registry.sweep()
        assert registry.batch(batch.batch_id) is not None  # still within TTL
        registry.sweep(now=time.time() + 60.0)
        assert registry.batch(batch.batch_id) is None

    def test_maybe_sweep_throttles_to_the_interval(self):
        registry = JobRegistry(ttl_seconds=0.0, sweep_interval_seconds=3600.0)
        record = registry.create_job("c")
        registry.mark_done(record.job_id, {"status": "ok"})
        future = time.time() + 1.0
        assert registry.maybe_sweep(now=future) == 1  # first sweep runs
        stale = registry.create_job("d")
        registry.mark_done(stale.job_id, {"status": "ok"})
        assert registry.maybe_sweep(now=future + 1.0) == 0  # throttled
        assert registry.job(stale.job_id) is not None
        assert registry.maybe_sweep(now=future + 7200.0) == 1  # due again

    def test_batch_survives_while_any_job_lives(self):
        registry = JobRegistry(ttl_seconds=0.0)
        done = registry.create_job("done")
        pending = registry.create_job("pending")
        batch = registry.create_batch([done.job_id, pending.job_id])
        registry.mark_done(done.job_id, {"status": "ok"})
        registry.sweep(now=time.time() + 1.0)
        assert registry.batch(batch.batch_id) is not None
