"""Service observability tests: /metrics, access log, uptime, trace spans.

These run the real daemon on an ephemeral port.  The span-accounting
test is the service-level contract from the telemetry design: the sum
of per-job component spans (queue wait, admission, cache lookup,
snapshot encode, execute, cache write) must reconstruct the end-to-end
``job.lifecycle`` durations to within a few percent.
"""

import json

import pytest

from repro.model.parser import parse_database, parse_program
from repro.obs.metrics import histogram_consistency_errors, parse_prometheus_text
from repro.obs.trace import load_trace
from repro.service import ChaseService, ChaseServiceClient, ServiceError


def job_spec(tag: str) -> dict:
    return {
        "id": f"job-{tag}",
        "program": f"R_{tag}(x, y) -> exists z . S_{tag}(y, z)",
        "database": f"R_{tag}(a, b).",
        "variant": "semi-oblivious",
    }


def make_client(service: ChaseService) -> ChaseServiceClient:
    client = ChaseServiceClient(service.url, timeout=30.0)
    client.wait_until_healthy()
    return client


def scrape(client: ChaseServiceClient) -> str:
    with client._request("GET", "/metrics") as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


class TestMetricsEndpoint:
    def test_metrics_404_when_disabled(self):
        with ChaseService(workers=1) as service:
            client = make_client(service)
            with pytest.raises(ServiceError) as excinfo:
                client._json("GET", "/metrics")
            assert excinfo.value.status == 404
            assert "metrics disabled" in str(excinfo.value.document["error"])

    def test_metrics_scrape_parses_and_counts_jobs(self):
        with ChaseService(workers=2, metrics=True) as service:
            client = make_client(service)
            for tag in ("m1", "m2"):
                record = client.run_job(job_spec(tag), timeout=60.0)
                assert record["state"] == "done"
            client.run_job(job_spec("m1"), timeout=60.0)  # dedup/cache path
            families = parse_prometheus_text(scrape(client))
            assert histogram_consistency_errors(families) == []

            def value(family, name, **labels):
                return families[family]["samples"][
                    (name, tuple(sorted(labels.items())))
                ]

            assert value("repro_jobs_submitted_total", "repro_jobs_submitted_total") >= 3
            assert value("repro_jobs_executed_total", "repro_jobs_executed_total") >= 2
            assert value("repro_uptime_seconds", "repro_uptime_seconds") > 0
            assert families["repro_jobs_submitted_total"]["type"] == "counter"
            # HTTP instrumentation observed the scrape-free requests with
            # normalized routes: the per-job polls all collapse to one child.
            requests = families["repro_http_requests_total"]["samples"]
            routes = {dict(labels)["route"] for _, labels in requests}
            assert "/jobs" in routes and "/jobs/{id}" in routes
            latency = families["repro_http_request_seconds"]["samples"]
            assert any(name.endswith("_count") for name, _ in latency)

    def test_fault_recovery_metrics_are_exposed(self):
        """The four crash-safety series are always present on /metrics."""
        with ChaseService(workers=1, metrics=True) as service:
            client = make_client(service)
            client.run_job(job_spec("faultless"), timeout=60.0)
            families = parse_prometheus_text(scrape(client))

            def value(family):
                return families[family]["samples"][(family, ())]

            # Fault-free run: every recovery counter sits at zero.
            assert families["repro_job_retries_total"]["type"] == "counter"
            assert families["repro_checkpoint_resumes_total"]["type"] == "counter"
            assert families["repro_faults_injected_total"]["type"] == "counter"
            assert families["repro_cache_degraded"]["type"] == "gauge"
            assert value("repro_job_retries_total") == 0
            assert value("repro_checkpoint_resumes_total") == 0
            assert value("repro_faults_injected_total") == 0
            assert value("repro_cache_degraded") == 0
            # The counters mirror the executor's live fault_stats (the
            # chaos suite exercises the real recovery paths end to end).
            service.scheduler.executor.fault_stats["retries"] = 3
            service.scheduler.executor.fault_stats["checkpoint_resumes"] = 2
            families = parse_prometheus_text(scrape(client))
            assert value("repro_job_retries_total") == 3
            assert value("repro_checkpoint_resumes_total") == 2

    def test_scrapes_are_monotone(self):
        with ChaseService(workers=1, metrics=True) as service:
            client = make_client(service)
            client.run_job(job_spec("mono"), timeout=60.0)
            first = parse_prometheus_text(scrape(client))
            client.run_job(job_spec("mono2"), timeout=60.0)
            second = parse_prometheus_text(scrape(client))

            def executed(families):
                return families["repro_jobs_executed_total"]["samples"][
                    ("repro_jobs_executed_total", ())
                ]

            assert executed(second) >= executed(first) >= 1


class TestAccessLog:
    def test_access_log_lines_are_jsonl(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        with ChaseService(workers=1, access_log=str(log_path)) as service:
            client = make_client(service)
            client.healthz()
            client.run_job(job_spec("log"), timeout=60.0)
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "access log stayed empty"
        for record in lines:
            assert {"ts", "remote", "method", "path", "status", "seconds"} <= set(record)
        assert any(r["method"] == "POST" and r["path"] == "/jobs" for r in lines)
        assert all(r["status"] < 500 for r in lines)

    def test_access_log_rotates_at_the_size_cap(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        rolled_path = tmp_path / "access.jsonl.1"
        cap = 400  # a few requests' worth
        with ChaseService(
            workers=1, access_log=str(log_path), access_log_max_bytes=cap
        ) as service:
            client = make_client(service)
            for _ in range(30):
                client.healthz()
            assert rolled_path.exists(), "rotation never happened"
            # Single-rollover policy: exactly one .1 file, no .2 etc.
            assert not (tmp_path / "access.jsonl.2").exists()
            # The live file restarted below the cap after the last roll.
            assert log_path.stat().st_size < cap + 200
        # Every line in both generations is intact JSONL: rotation
        # happens on line boundaries, never mid-record.
        for path in (log_path, rolled_path):
            for line in path.read_text().splitlines():
                if line.strip():
                    json.loads(line)

    def test_rotation_counter_seeds_from_existing_file(self, tmp_path):
        # A restarted daemon must honour bytes already in the log.
        log_path = tmp_path / "access.jsonl"
        log_path.write_text('{"pre": "existing"}\n' * 20)
        pre_size = log_path.stat().st_size
        with ChaseService(
            workers=1, access_log=str(log_path), access_log_max_bytes=pre_size + 50
        ) as service:
            client = make_client(service)
            for _ in range(5):
                client.healthz()
        assert (tmp_path / "access.jsonl.1").exists()


class TestUptimeMonotonic:
    def test_uptime_survives_wall_clock_steps(self):
        with ChaseService(workers=1) as service:
            client = make_client(service)
            # Simulate an NTP step / manual clock change: the wall-clock
            # start is yanked back to the epoch.  Uptime must not jump to
            # ~56 years because it anchors on the monotonic clock.
            service.started_at = 0.0
            health = client.healthz()
            assert 0.0 <= health["uptime_seconds"] < 300.0
            stats = client.stats()
            assert 0.0 <= stats["uptime_seconds"] < 300.0


class TestTraceAccounting:
    COMPONENTS = (
        "job.queue_wait",
        "job.admission",
        "cache.lookup",
        "snapshot.encode",
        "job.execute",
        "cache.write",
    )

    def test_component_spans_reconstruct_lifecycle(self, tmp_path):
        trace_path = tmp_path / "service-trace.jsonl"
        job_count = 24
        with ChaseService(workers=2, trace_path=str(trace_path)) as service:
            client = make_client(service)
            for index in range(job_count):
                record = client.run_job(job_spec(f"t{index}"), timeout=60.0)
                assert record["state"] == "done"
        events = load_trace(str(trace_path))
        durations: dict = {}
        for event in events:
            if event.get("ph") == "X":
                durations.setdefault(event["name"], []).append(event["dur"] / 1e6)
        lifecycles = durations.get("job.lifecycle", [])
        assert len(lifecycles) == job_count
        lifecycle_total = sum(lifecycles)
        component_total = sum(
            sum(durations.get(name, [])) for name in self.COMPONENTS
        )
        # The components tile the lifecycle up to inter-span gaps
        # (microseconds each); allow 5% relative plus a small absolute
        # slack so a slow CI scheduler cannot flake the test.
        assert component_total == pytest.approx(
            lifecycle_total, rel=0.05, abs=0.25
        )
        # Every executed job contributed exactly one execute span.
        assert len(durations.get("job.execute", [])) == job_count


class TestConformance:
    def test_conformance_block_and_gauges_surface_at_metrics(self):
        with ChaseService(workers=1, metrics=True, conformance=True) as service:
            client = make_client(service)
            record = client.run_job(
                {
                    "id": "conf-sl",
                    "program": "P(x) -> Q(x)\nQ(x) -> R(x)",
                    "database": "P(a)\nP(b)",
                    "variant": "semi-oblivious",
                },
                timeout=60.0,
            )
            assert record["state"] == "done"
            block = record["result"]["summary"]["conformance"]
            assert block["terminated"] is True
            assert block["violations"] == []
            text = scrape(client)
        assert 'repro_bound_utilization{kind="size"}' in text
        assert 'repro_bound_utilization{kind="depth"}' in text
        assert "repro_bound_violations_total 0" in text

    def test_conformance_off_keeps_summaries_clean(self):
        with ChaseService(workers=1, metrics=True) as service:
            client = make_client(service)
            record = client.run_job(job_spec("noconf"), timeout=60.0)
            assert record["state"] == "done"
            assert "conformance" not in record["result"]["summary"]
            text = scrape(client)
        assert "repro_bound_utilization" not in text
