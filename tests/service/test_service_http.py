"""End-to-end service tests over localhost HTTP.

Every test starts a real :class:`ChaseService` on an ephemeral port and
talks to it through :class:`ChaseServiceClient` — the same path
``python -m repro serve`` exercises.
"""

import json
import threading
import urllib.error

import pytest

from repro.generators.workloads import mixed_workload_jobs
from repro.model.parser import parse_database, parse_program
from repro.runtime import BatchExecutor, ChaseJob, ResultCache
from repro.runtime.jobs import manifest_entry
from repro.service import ChaseService, ChaseServiceClient, ServiceError


def make_job(tag: str = "a", job_id: str = "") -> ChaseJob:
    return ChaseJob(
        program=parse_program(f"R_{tag}(x, y) -> exists z . S_{tag}(y, z)"),
        database=parse_database(f"R_{tag}(a, b)."),
        job_id=job_id,
    )


@pytest.fixture()
def service():
    with ChaseService(workers=2, max_queue=64) as running:
        yield running


@pytest.fixture()
def client(service):
    client = ChaseServiceClient(service.url, timeout=30.0)
    client.wait_until_healthy()
    return client


class TestHealthAndStats:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2 and health["max_queue"] == 64

    def test_stats_shape(self, client):
        client.run_job(make_job("stats"), timeout=60.0)
        stats = client.stats()
        assert stats["scheduler"]["executed"] == 1
        assert stats["registry"]["jobs"] == 1
        assert stats["scheduler"]["cache"]["stores"] == 1
        assert "by_class" in stats["scheduler"]

    def test_unknown_routes_404(self, client):
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            with pytest.raises(ServiceError) as excinfo:
                client._json(method, path, b"" if method == "POST" else None)
            assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.job("j-999999")
        assert excinfo.value.status == 404


class TestSingleJobs:
    def test_round_trip_byte_identical_to_direct_executor(self, client):
        jobs = mixed_workload_jobs(job_count=10, seed=7)
        direct = {r.job_id: r for r in BatchExecutor(workers=1).run_all(jobs)}
        compared = 0
        for job in jobs:
            record = client.run_job(job, timeout=120.0)
            served = record["result"]
            expected = direct[job.job_id]
            assert served["budget"] == expected.budget_provenance
            if expected.status != "ok":
                continue  # a timeout's summary is not deterministic
            compared += 1
            assert json.dumps(served["summary"], sort_keys=True) == expected.summary_json()
        assert compared >= 8

    def test_long_poll_returns_terminal_state(self, client):
        submitted = client.submit_job(make_job("poll"))
        record = client.job(submitted["job_id"], wait=30.0)
        assert record["state"] == "done"
        assert record["result"]["outcome"] == "terminated"

    def test_resubmission_is_served_from_cache(self, client):
        job = make_job("warm")
        cold = client.run_job(job, timeout=60.0)
        warm = client.run_job(job, timeout=60.0)
        assert cold["result"]["cache"]["hit"] is False
        assert warm["result"]["cache"]["hit"] is True
        assert json.dumps(warm["result"]["summary"], sort_keys=True) == json.dumps(
            cold["result"]["summary"], sort_keys=True
        )

    def test_bad_bodies_are_400(self, client):
        for body in (b"not json", b'{"program": "R(x) -> "}'):
            with pytest.raises(ServiceError) as excinfo:
                client._json("POST", "/jobs", body)
            assert excinfo.value.status == 400

    def test_path_based_entries_are_refused(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_job({"rules": "/etc/passwd", "database": "R(a)."})
        assert excinfo.value.status == 400
        assert "path-based" in str(excinfo.value)

    def test_hostile_explicit_budget_is_bounded_by_the_daemon_timeout(self):
        # An explicit budget with astronomical limits and no timeout
        # must not pin a worker forever: the daemon's per-job ceiling
        # stops it.
        with ChaseService(workers=1, max_queue=4, per_job_timeout=0.2) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            record = client.run_job(
                {
                    "id": "hostile",
                    "program": "R(x, y) -> exists z . R(y, z)",
                    "database": "R(a, b).",
                    "budget": {"max_atoms": 10**12, "max_rounds": 10**12},
                },
                timeout=60.0,
            )
            assert record["result"]["status"] == "timeout"
            assert record["result"]["outcome"] == "time_budget_exceeded"

    def test_oversized_body_is_413(self):
        with ChaseService(workers=1, max_queue=4, max_body_bytes=1024) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            huge = {"program": "R(x, y) -> S(y, x)", "database": "R(a, b).", "id": "x" * 2048}
            with pytest.raises(ServiceError) as excinfo:
                client.submit_job(huge)
            assert excinfo.value.status == 413
            # The daemon is still healthy for normally-sized requests.
            assert client.run_job(make_job("after"), timeout=60.0)["state"] == "done"

    def test_negative_content_length_is_400_not_a_hung_thread(self, service):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10.0)
        try:
            connection.putrequest("POST", "/jobs")
            connection.putheader("Content-Length", "-1")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            connection.close()

    def test_unknown_budget_fields_are_400_not_500(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_job(
                {"program": "R(x, y) -> S(y, x)", "database": "R(a, b).", "budget": {"bogus": 1}}
            )
        assert excinfo.value.status == 400
        assert "invalid job entry" in str(excinfo.value)

    def test_error_responses_keep_the_connection_in_sync(self, service):
        # A POST whose handler errors before consuming the body must
        # still drain it, or the next request on a keep-alive
        # connection parses the leftover bytes as its request line.
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10.0)
        try:
            body = json.dumps({"x": 1})
            connection.request("POST", "/nope", body=body)
            assert connection.getresponse().read() and True  # 404, body drained
            connection.request("POST", "/batches?admit_wait=bogus", body="{}")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            # The same reused connection still serves a clean request.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


class TestBatches:
    def test_streamed_batch_matches_direct_run(self, client):
        jobs = mixed_workload_jobs(job_count=12, seed=7)
        direct = {
            r.job_id: r.summary_json()
            for r in BatchExecutor(workers=1).run_all(jobs)
            if r.status == "ok"  # timeouts have non-deterministic summaries
        }
        rows, trailer = client.run_batch(jobs, wait=120.0)
        assert trailer["complete"] and trailer["rows"] == len(jobs)
        served = {
            str(r["id"]): json.dumps(r["summary"], sort_keys=True)
            for r in rows
            if r["status"] == "ok"
        }
        assert direct == {job_id: served[job_id] for job_id in direct}
        assert len(direct) >= 10

    def test_bad_manifest_lines_become_error_rows(self, client):
        text = (
            json.dumps(manifest_entry(make_job("good", job_id="good"))) + "\n"
            "this is not json\n"
            '{"program": "R(x, y) -> S(y)"}\n'  # no database
        )
        rows, trailer = client.run_batch(text, wait=60.0)
        assert trailer["complete"]
        by_status = {str(r["id"]): r["status"] for r in rows}
        assert by_status["good"] == "ok"
        assert by_status["line-2"] == "error" and by_status["line-3"] == "error"

    def test_empty_batch_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_batch("")
        assert excinfo.value.status == 400

    def test_unknown_batch_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.batch_results("b-999999")
        assert excinfo.value.status == 404

    def test_manifest_larger_than_queue_streams_with_admit_wait(self):
        with ChaseService(workers=2, max_queue=4) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            jobs = [make_job(f"bp{i}") for i in range(12)]  # 3× the queue bound
            # Atomic admission refuses the oversized manifest...
            with pytest.raises(ServiceError) as excinfo:
                client.submit_batch(jobs)
            assert excinfo.value.status == 429
            assert "admit_wait" in str(excinfo.value)
            # ...backpressure admission streams it through the bound.
            rows, trailer = client.run_batch(jobs, wait=120.0, admit_wait=120.0)
            assert trailer["complete"] and trailer["rows"] == 12
            assert all(r["status"] == "ok" for r in rows)

    def test_duplicate_jobs_within_batch_share_results(self, client):
        entries = [
            manifest_entry(make_job("dup", job_id="one")),
            manifest_entry(make_job("dup", job_id="two")),
        ]
        rows, trailer = client.run_batch(entries, wait=60.0)
        assert trailer["complete"]
        summaries = {json.dumps(r["summary"], sort_keys=True) for r in rows}
        assert len(summaries) == 1


class TestSaturationAndDedup:
    def test_saturated_queue_returns_429(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        with ChaseService(workers=1, max_queue=1) as service:
            service.scheduler.before_execute = hold
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            client.submit_job(make_job("blocker"))
            assert started.wait(timeout=30.0)
            client.submit_job(make_job("queued"))  # fills the single slot
            with pytest.raises(ServiceError) as excinfo:
                client.submit_job(make_job("overflow"))
            assert excinfo.value.status == 429
            assert "queue" in str(excinfo.value)
            # An oversized batch is refused atomically.
            with pytest.raises(ServiceError) as excinfo:
                client.submit_batch([make_job("b1"), make_job("b2")])
            assert excinfo.value.status == 429
            gate.set()

    def test_concurrent_identical_submissions_execute_once(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        with ChaseService(workers=1, max_queue=64) as service:
            service.scheduler.before_execute = hold
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            client.submit_job(make_job("blocker"))
            assert started.wait(timeout=30.0)
            entry = manifest_entry(make_job("dup"))
            submissions = []
            lock = threading.Lock()

            def submit():
                response = ChaseServiceClient(service.url, timeout=30.0).submit_job(entry)
                with lock:
                    submissions.append(response)

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            gate.set()
            records = [client.job(str(s["job_id"]), wait=60.0) for s in submissions]
            assert all(r["state"] == "done" for r in records)
            summaries = {
                json.dumps(r["result"]["summary"], sort_keys=True) for r in records
            }
            assert len(summaries) == 1
            stats = service.scheduler.stats()
            real_executions = stats["executed"] - stats["cache_hits"]
            assert real_executions == 2  # the blocker + exactly one dup run
            assert stats["deduped"] == 5
            dispositions = {str(s["disposition"]) for s in submissions}
            assert dispositions == {"accepted", "deduped"}


class TestConnectionBound:
    def test_over_cap_connections_get_503(self):
        import http.client
        import time as time_module

        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        with ChaseService(workers=1, max_queue=8, max_connections=2) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            service.scheduler.before_execute = hold
            submitted = client.submit_job(make_job("pinned"))
            assert started.wait(timeout=30.0)
            job_id = submitted["job_id"]

            def long_poll():
                # A slot may still be pinned by a just-finished client
                # request (keep-alive teardown race): a poller that gets
                # rejected retries until it actually holds a slot, so
                # the test always ends up with both slots pinned.
                poll_deadline = time_module.monotonic() + 10.0
                while time_module.monotonic() < poll_deadline:
                    connection = http.client.HTTPConnection(
                        "127.0.0.1", service.port, timeout=30.0
                    )
                    try:
                        connection.request("GET", f"/jobs/{job_id}?wait=20")
                        response = connection.getresponse()
                        status = response.status
                        response.read()
                    finally:
                        connection.close()
                    if status != 503:
                        return
                    time_module.sleep(0.02)

            pollers = [threading.Thread(target=long_poll, daemon=True) for _ in range(2)]
            for poller in pollers:
                poller.start()
            # Wait (bounded) until both long-polls have pinned their
            # connection slots: once they have, every further request is
            # rejected until the gate opens, so retrying until the first
            # 503 closes the startup race a fixed sleep used to lose on
            # cold or loaded machines.
            deadline = time_module.monotonic() + 10.0
            status, body = None, b""
            while time_module.monotonic() < deadline:
                third = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10.0)
                try:
                    third.request("GET", "/healthz")
                    response = third.getresponse()
                    status, body = response.status, response.read()
                finally:
                    third.close()
                if status == 503:
                    break
                time_module.sleep(0.05)
            assert status == 503, f"third connection never rejected (last: {status})"
            assert b"connection limit" in body
            gate.set()
            for poller in pollers:
                poller.join(timeout=30.0)
            # Slots freed: the daemon serves normally again.
            assert client.healthz()["status"] == "ok"


class TestShutdown:
    def test_graceful_shutdown_drains_inflight_jobs(self):
        service = ChaseService(workers=1, max_queue=64).start()
        try:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            submitted = [client.submit_job(make_job(f"drain{i}")) for i in range(5)]
            response = client.shutdown()
            assert response["draining"] is True
            assert service.wait_stopped(timeout=60.0)
            # Every accepted job finished with a result before the stop.
            for s in submitted:
                record = service.registry.job(str(s["job_id"]))
                assert record is not None and record.terminal
                assert record.result["status"] == "ok"
            # The daemon is really gone.
            with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
                client.healthz()
        finally:
            service.stop()

    def test_draining_daemon_rejects_submissions(self):
        with ChaseService(workers=1, max_queue=64) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            service.scheduler.shutdown(timeout=30.0)
            assert client.healthz()["status"] == "draining"
            with pytest.raises(ServiceError) as excinfo:
                client.submit_job(make_job())
            assert excinfo.value.status == 429


class TestDaemonCacheBehaviour:
    def test_bounded_cache_evicts_across_requests(self):
        cache = ResultCache(max_entries=2)
        with ChaseService(workers=1, max_queue=64, cache=cache) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            for tag in ("a", "b", "c"):
                client.run_job(make_job(tag), timeout=60.0)
            assert len(cache) == 2 and cache.evictions == 1
            # "a" was evicted: resubmission misses and re-executes.
            record = client.run_job(make_job("a"), timeout=60.0)
            assert record["result"]["cache"]["hit"] is False
            # "c" is still resident and replays.
            record = client.run_job(make_job("c"), timeout=60.0)
            assert record["result"]["cache"]["hit"] is True

    def test_daemon_skips_stale_cache_versions_on_start(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text(
            json.dumps({"key": "old", "summary": {"size": 1}, "schema_version": 0}) + "\n"
        )
        with pytest.warns(UserWarning, match="schema version"):
            cache = ResultCache(path)
        with ChaseService(workers=1, max_queue=64, cache=cache) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            record = client.run_job(make_job("fresh"), timeout=60.0)
            assert record["result"]["cache"]["hit"] is False
            assert client.stats()["scheduler"]["cache"]["version_skipped"] == 1
        # Drain compacted the spill: only current-version lines remain.
        lines = [
            json.loads(line.rpartition("\tcrc32=")[0] or line)
            for line in path.read_text().strip().splitlines()
        ]
        assert all(line["schema_version"] != 0 for line in lines)
        reloaded = ResultCache(path)
        assert reloaded.version_skipped == 0 and len(reloaded) == 1


class TestAdmissionAnalysis:
    def diverging_job(self, job_id: str = "div") -> ChaseJob:
        return ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
            job_id=job_id,
        )

    def test_default_service_accepts_diverging_jobs(self, client, service):
        # Admission analysis is opt-in: the stock daemon keeps the seed
        # behaviour and runs diverging programs under the default budget.
        submitted = client.submit_job(self.diverging_job())
        assert submitted["state"] in ("queued", "running", "done")
        assert "admission_analysis" not in client.stats()

    def test_analysis_service_rejects_diverging_jobs_with_422(self):
        with ChaseService(workers=1, max_queue=8, admission_analysis=True) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            with pytest.raises(ServiceError) as excinfo:
                client.submit_job(self.diverging_job())
            assert excinfo.value.status == 422
            document = excinfo.value.document
            assert document["error"] == "diverging-program"
            assert document["analysis"]["verdict"] == "diverging"
            assert document["analysis"]["trace"]
            # Terminating jobs pass admission and run to completion.
            record = client.run_job(make_job("fine"), timeout=60.0)
            assert record["result"]["outcome"] == "terminated"
            assert record["result"]["budget"]["verdict"]["value"] == "terminating"
            stats = client.stats()
            assert stats["admission_analysis"] == {"enabled": True, "rejections": 1}

    def test_batches_accept_diverging_jobs_under_the_clamp(self):
        # POST /batches is the explicit "run it anyway" path: the job is
        # admitted but the analysis-aware policy clamps its budget far
        # below the default million atoms.
        with ChaseService(workers=1, max_queue=8, admission_analysis=True) as service:
            client = ChaseServiceClient(service.url, timeout=30.0)
            client.wait_until_healthy()
            rows, _trailer = client.run_batch([self.diverging_job("div-batch")], wait=60.0)
            (row,) = [r for r in rows if r["id"] == "div-batch"]
            budget = row["budget"]
            assert budget["verdict"]["value"] == "diverging"
            assert budget["source"] == "analysis-clamp"
            assert budget["max_atoms"]["value"] == 50_000
            assert row["outcome"] != "terminated"
