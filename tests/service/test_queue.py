"""Scheduler: admission control, in-flight dedup, graceful drain."""

import threading

import pytest

from repro.model.parser import parse_database, parse_program
from repro.runtime import BatchExecutor, ChaseJob, ResultCache
from repro.service import ACCEPTED, DEDUPED, REJECTED, ChaseScheduler, JobRegistry


def make_job(tag: str = "a", job_id: str = "") -> ChaseJob:
    """Distinct ``tag`` ⇒ distinct program ⇒ distinct dedup key."""
    return ChaseJob(
        program=parse_program(f"R_{tag}(x, y) -> exists z . S_{tag}(y, z)"),
        database=parse_database(f"R_{tag}(a, b)."),
        job_id=job_id,
    )


def make_scheduler(**kwargs):
    registry = JobRegistry()
    defaults = dict(executor=BatchExecutor(workers=1, cache=ResultCache()), workers=1)
    defaults.update(kwargs)
    return registry, ChaseScheduler(registry, **defaults)


class TestSubmission:
    def test_accept_execute_complete(self):
        registry, scheduler = make_scheduler()
        record, disposition = scheduler.submit(make_job())
        assert disposition == ACCEPTED
        assert scheduler.drain(timeout=30.0)
        done = registry.job(record.job_id)
        assert done.terminal and done.result["outcome"] == "terminated"
        scheduler.shutdown(timeout=10.0)

    def test_validation(self):
        registry = JobRegistry()
        with pytest.raises(ValueError):
            ChaseScheduler(registry, workers=0)
        with pytest.raises(ValueError):
            ChaseScheduler(registry, max_queue=0)

    def test_dedup_key_matches_cache_key_semantics(self):
        _, scheduler = make_scheduler()
        renamed = ChaseJob(
            program=parse_program("R_a(u, v) -> exists w . S_a(v, w)"),
            database=parse_database("R_a(a, b)."),
        )
        assert scheduler.dedup_key(make_job("a")) == scheduler.dedup_key(renamed)
        assert scheduler.dedup_key(make_job("a")) != scheduler.dedup_key(make_job("b"))
        scheduler.shutdown(timeout=10.0)


class TestDedupAndAdmission:
    def test_concurrent_identical_submissions_share_one_execution(self):
        gate = threading.Event()
        registry, scheduler = make_scheduler(
            workers=1, before_execute=lambda job: gate.wait(timeout=30.0)
        )
        # The worker picks up the blocker and parks in before_execute.
        blocker, _ = scheduler.submit(make_job("blocker"))
        first, d1 = scheduler.submit(make_job("dup", job_id="first"))
        second, d2 = scheduler.submit(make_job("dup", job_id="second"))
        third, d3 = scheduler.submit(make_job("dup", job_id="third"))
        assert d1 == ACCEPTED and d2 == DEDUPED and d3 == DEDUPED
        gate.set()
        assert scheduler.drain(timeout=30.0)
        rows = [registry.job(r.job_id).result for r in (first, second, third)]
        assert all(row["outcome"] == "terminated" for row in rows)
        # Exactly one real execution of the duplicated job; members carry
        # their own client ids and point at the primary.
        stats = scheduler.stats()
        assert stats["deduped"] == 2
        assert stats["executed"] == 2  # blocker + the dup group
        assert rows[1]["id"] == "second" and rows[1]["deduped_of"] == first.job_id
        assert registry.job(second.job_id).deduped_of == first.job_id
        # All three share byte-identical summaries.
        import json

        summaries = {json.dumps(row["summary"], sort_keys=True) for row in rows}
        assert len(summaries) == 1
        scheduler.shutdown(timeout=10.0)

    def test_queue_full_rejects(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, max_queue=2, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)  # the worker now holds the blocker
        assert scheduler.submit(make_job("q1"))[1] == ACCEPTED
        assert scheduler.submit(make_job("q2"))[1] == ACCEPTED
        record, disposition = scheduler.submit(make_job("q3"))
        assert disposition == REJECTED and record is None
        assert scheduler.stats()["rejected"] == 1
        # Identical-to-inflight submissions are deduped even at capacity:
        # they consume no queue slot.
        assert scheduler.submit(make_job("q1"))[1] == DEDUPED
        gate.set()
        assert scheduler.drain(timeout=30.0)
        scheduler.shutdown(timeout=10.0)

    def test_deduped_members_keep_their_own_tags(self):
        gate = threading.Event()
        registry, scheduler = make_scheduler(
            workers=1, before_execute=lambda job: gate.wait(timeout=30.0)
        )
        scheduler.submit(make_job("blocker"))
        base = make_job("tagged", job_id="primary")
        primary = ChaseJob(
            program=base.program, database=base.database, job_id="primary",
            tags=("tenant:a",),
        )
        member = ChaseJob(
            program=base.program, database=base.database, job_id="member",
            tags=("tenant:b",),
        )
        first, d1 = scheduler.submit(primary)
        second, d2 = scheduler.submit(member)
        assert d1 == ACCEPTED and d2 == DEDUPED  # tags don't affect the key
        gate.set()
        assert scheduler.drain(timeout=30.0)
        assert registry.job(first.job_id).result["tags"] == ["tenant:a"]
        assert registry.job(second.job_id).result["tags"] == ["tenant:b"]
        scheduler.shutdown(timeout=10.0)

    def test_submit_waiting_backpressure_admits_past_the_bound(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, max_queue=1, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)
        assert scheduler.submit(make_job("q1"))[1] == ACCEPTED  # fills the slot
        # Plain submit rejects; waiting submit blocks until released.
        assert scheduler.submit(make_job("q2"))[1] == REJECTED
        results = {}

        def waiting_submit():
            results["q2"] = scheduler.submit_waiting(make_job("q2"), timeout=30.0)

        thread = threading.Thread(target=waiting_submit)
        thread.start()
        gate.set()
        thread.join(timeout=30.0)
        record, disposition = results["q2"]
        assert disposition == ACCEPTED and record is not None
        assert scheduler.drain(timeout=30.0)
        assert registry.job(record.job_id).result["status"] == "ok"
        scheduler.shutdown(timeout=10.0)

    def test_submit_waiting_times_out_when_queue_stays_full(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        _, scheduler = make_scheduler(workers=1, max_queue=1, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)
        scheduler.submit(make_job("q1"))
        record, disposition = scheduler.submit_waiting(make_job("q2"), timeout=0.2)
        assert disposition == REJECTED and record is None
        gate.set()
        scheduler.shutdown(timeout=30.0)

    def test_members_rerun_when_primary_result_is_not_deterministic(self):
        gate = threading.Event()
        registry, scheduler = make_scheduler(
            workers=1, before_execute=lambda job: gate.wait(timeout=30.0)
        )
        scheduler.submit(make_job("blocker"))
        base = make_job("shared")
        # Primary carries an instant wall-clock timeout; the member has
        # none.  The dedup key ignores timeouts, so they group — but a
        # timeout outcome must not fan out to the member.
        primary_job = ChaseJob(
            program=base.program, database=base.database, job_id="impatient",
            timeout_seconds=0.0,
        )
        member_job = ChaseJob(
            program=base.program, database=base.database, job_id="patient",
        )
        primary, d1 = scheduler.submit(primary_job)
        member, d2 = scheduler.submit(member_job)
        assert d1 == ACCEPTED and d2 == DEDUPED
        gate.set()
        assert scheduler.drain(timeout=30.0)
        assert registry.job(primary.job_id).result["status"] == "timeout"
        patient = registry.job(member.job_id)
        assert patient.result["status"] == "ok"
        assert patient.result["outcome"] == "terminated"
        assert patient.deduped_of is None  # ran on its own terms
        assert scheduler.stats()["requeued"] == 1
        scheduler.shutdown(timeout=10.0)

    def test_members_rerun_when_primary_execution_crashes(self):
        """A worker *crash* (not a timeout) must not fan out to members.

        The primary's execution is killed by an injected worker crash
        with the retry budget at zero, so its record is a transient
        error row.  The dedup member must be requeued and re-run on its
        own — where the (exhausted) fault no longer fires — to a clean
        verdict.
        """
        import os

        from repro.runtime.faults import ENV_VAR, FaultPlan, FaultSpec, reset_injector

        plan = FaultPlan(
            faults=(
                FaultSpec(point="worker.round", action="kill", match="crash-primary"),
            ),
            seed=9,
        )
        previous = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = plan.to_env()
        reset_injector()
        try:
            registry, scheduler = make_scheduler(
                executor=BatchExecutor(workers=1, cache=ResultCache(), max_retries=0)
            )
            base = make_job("crashy")
            primary_job = ChaseJob(
                program=base.program, database=base.database, job_id="crash-primary"
            )
            member_job = ChaseJob(
                program=base.program, database=base.database, job_id="crash-member"
            )
            primary, d1 = scheduler.submit(primary_job)
            member, d2 = scheduler.submit(member_job)
            assert d1 == ACCEPTED and d2 == DEDUPED
            assert scheduler.drain(timeout=30.0)
            crashed = registry.job(primary.job_id)
            assert crashed.result["status"] == "error"
            assert "injected fault" in crashed.result["error"]
            survivor = registry.job(member.job_id)
            assert survivor.result["status"] == "ok"
            assert survivor.result["outcome"] == "terminated"
            assert survivor.deduped_of is None  # re-ran on its own terms
            assert scheduler.stats()["requeued"] == 1
            scheduler.shutdown(timeout=10.0)
        finally:
            if previous is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous
            reset_injector()

    def test_submit_atomic_all_or_nothing_and_dedup_aware(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, max_queue=2, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)
        # 3 jobs but only 2 distinct keys: fits the 2-slot queue.
        batch = [make_job("x", job_id="x1"), make_job("x", job_id="x2"), make_job("y")]
        admitted = scheduler.submit_atomic(batch)
        assert admitted is not None
        assert [d for _, d in admitted] == [ACCEPTED, DEDUPED, ACCEPTED]
        # Queue now full: another batch is refused whole, nothing admitted.
        before = registry.counts()["jobs"]
        assert scheduler.submit_atomic([make_job("z1"), make_job("z2")]) is None
        assert registry.counts()["jobs"] == before
        gate.set()
        assert scheduler.drain(timeout=30.0)
        assert all(registry.job(r.job_id).terminal for r, _ in admitted)
        scheduler.shutdown(timeout=10.0)

    def test_identical_submission_flood_is_bounded_by_group_cap(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, max_queue=2, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)
        assert scheduler.submit(make_job("flood"))[1] == ACCEPTED
        assert scheduler.submit(make_job("flood"))[1] == DEDUPED  # 2nd member
        record, disposition = scheduler.submit(make_job("flood"))  # over the cap
        assert disposition == REJECTED and record is None
        gate.set()
        assert scheduler.drain(timeout=30.0)
        scheduler.shutdown(timeout=10.0)

    def test_late_dedup_joiner_is_marked_running(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, before_execute=hold)
        first, _ = scheduler.submit(make_job("live"))
        assert started.wait(timeout=30.0)  # the group is now executing
        late, disposition = scheduler.submit(make_job("live"))
        assert disposition == DEDUPED
        assert registry.job(late.job_id).state == "running"
        assert registry.job(late.job_id).started_at is not None
        gate.set()
        assert scheduler.drain(timeout=30.0)
        scheduler.shutdown(timeout=10.0)

    def test_submit_atomic_caps_in_batch_duplicates(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, max_queue=2, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)
        before = registry.counts()["jobs"]
        # 5 identical lines would build a 5-member group on a 2-deep queue.
        batch = [make_job("same", job_id=f"d{i}") for i in range(5)]
        assert scheduler.submit_atomic(batch) is None
        assert registry.counts()["jobs"] == before  # nothing admitted
        gate.set()
        assert scheduler.drain(timeout=30.0)
        scheduler.shutdown(timeout=10.0)

    def test_submit_waiting_on_full_group_waits_instead_of_spinning(self):
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        _, scheduler = make_scheduler(workers=1, max_queue=1, before_execute=hold)
        scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)
        assert scheduler.submit(make_job("full"))[1] == ACCEPTED  # 1-member group at cap
        before = scheduler.stats()["submitted"]
        record, disposition = scheduler.submit_waiting(make_job("full"), timeout=0.6)
        assert disposition == REJECTED and record is None
        # A busy-spin would retry hundreds of thousands of times in 0.6s;
        # the 250ms wait bounds it to a handful.
        assert scheduler.stats()["submitted"] - before < 10
        gate.set()
        scheduler.shutdown(timeout=30.0)

    def test_second_wave_hits_cache_not_dedup(self):
        registry, scheduler = make_scheduler()
        scheduler.submit(make_job("x"))
        assert scheduler.drain(timeout=30.0)
        record, disposition = scheduler.submit(make_job("x"))
        assert disposition == ACCEPTED  # group completed: fresh submission
        assert scheduler.drain(timeout=30.0)
        assert registry.job(record.job_id).result["cache"]["hit"] is True
        stats = scheduler.stats()
        assert stats["cache_hits"] == 1
        scheduler.shutdown(timeout=10.0)


class TestDrainAndStats:
    def test_shutdown_drains_accepted_work(self):
        registry, scheduler = make_scheduler(workers=2)
        records = [scheduler.submit(make_job(f"job{i}"))[0] for i in range(6)]
        assert scheduler.shutdown(timeout=60.0)
        assert all(registry.job(r.job_id).terminal for r in records)
        assert all(registry.job(r.job_id).result is not None for r in records)

    def test_draining_scheduler_rejects_new_work(self):
        _, scheduler = make_scheduler()
        scheduler.shutdown(timeout=10.0)
        record, disposition = scheduler.submit(make_job())
        assert disposition == REJECTED and record is None
        assert scheduler.shutdown(timeout=10.0)  # idempotent

    def test_stats_track_classes_outcomes_and_budget_stops(self):
        registry, scheduler = make_scheduler()
        scheduler.submit(make_job("t"))  # SL, terminates
        looping = ChaseJob(
            program=parse_program("R(x, y) -> exists z . R(y, z)"),
            database=parse_database("R(a, b)."),
        )
        scheduler.submit(looping)  # SL, stopped by the d_C depth budget
        assert scheduler.drain(timeout=30.0)
        stats = scheduler.stats()
        assert stats["by_class"].get("SL") == 2
        assert stats["by_outcome"].get("terminated") == 1
        assert stats["by_outcome"].get("depth_budget_exceeded") == 1
        assert stats["budget_stops"] == 1
        assert stats["cache"]["stores"] == 2
        scheduler.shutdown(timeout=10.0)

    def test_quiesce_finishes_running_and_requeues_the_backlog(self):
        """SIGTERM-style drain: running jobs finish, queued jobs requeue."""
        gate, started = threading.Event(), threading.Event()

        def hold(job):
            started.set()
            gate.wait(timeout=30.0)

        registry, scheduler = make_scheduler(workers=1, before_execute=hold)
        blocker, _ = scheduler.submit(make_job("blocker"))
        assert started.wait(timeout=30.0)  # the worker holds the blocker
        backlog = [scheduler.submit(make_job(f"bk{i}"))[0] for i in range(3)]
        gate.set()
        outcome = scheduler.quiesce(timeout=30.0)
        assert outcome["requeued"] == 3 and outcome["drained"] is True
        # The running job ran to a verdict; nothing was silently dropped.
        finished = registry.job(blocker.job_id)
        assert finished.terminal and finished.result["status"] == "ok"
        for record in backlog:
            requeued = registry.job(record.job_id)
            assert not requeued.terminal
            assert requeued.state == "queued"
            assert requeued.started_at is None
        assert scheduler.stats()["requeued"] == 3
        # The scheduler is drained and refuses new work.
        assert scheduler.submit(make_job("late"))[1] == REJECTED

    def test_worker_survives_before_execute_crash(self):
        def explode(job):
            raise RuntimeError("boom")

        registry, scheduler = make_scheduler(before_execute=explode)
        record, _ = scheduler.submit(make_job())
        assert scheduler.drain(timeout=30.0)
        done = registry.job(record.job_id)
        assert done.terminal and done.result["status"] == "error"
        assert "boom" in done.result["error"]
        # The pool is still alive for the next job.
        scheduler.before_execute = None
        record2, _ = scheduler.submit(make_job("next"))
        assert scheduler.drain(timeout=30.0)
        assert registry.job(record2.job_id).result["status"] == "ok"
        scheduler.shutdown(timeout=10.0)


class TestSnapshotSharing:
    def _counting_encoder(self, monkeypatch):
        import repro.runtime.jobs as jobs_module

        calls = []
        real = jobs_module.encode_database_snapshot

        def counting(database):
            calls.append(1)
            return real(database)

        monkeypatch.setattr(jobs_module, "encode_database_snapshot", counting)
        return calls

    def test_identical_burst_encodes_store_once(self, monkeypatch):
        calls = self._counting_encoder(monkeypatch)
        release = threading.Event()
        registry, scheduler = make_scheduler(
            before_execute=lambda job: release.wait(10.0)
        )
        # Pile 8 identical submissions onto one in-flight group while
        # the single worker is held inside the first (blocker) job.
        scheduler.submit(make_job("blocker"))
        records = [
            scheduler.submit(make_job("burst", job_id=f"b{i}"))[0] for i in range(8)
        ]
        assert all(r is not None for r in records)
        release.set()
        assert scheduler.drain(timeout=30.0)
        assert all(registry.job(r.job_id).terminal for r in records)
        # One encode for the blocker, one for the whole burst.
        assert sum(calls) == 2
        scheduler.shutdown(timeout=10.0)

    def test_timeout_requeues_reuse_the_primary_encoding(self, monkeypatch):
        calls = self._counting_encoder(monkeypatch)
        release = threading.Event()
        registry, scheduler = make_scheduler(
            before_execute=lambda job: release.wait(10.0)
        )
        looping = parse_program("R_t(x, y) -> exists z . R_t(y, z)")
        database = parse_database("R_t(a, b).")

        from repro.chase.engine import ChaseBudget

        def timeout_job(job_id: str) -> ChaseJob:
            return ChaseJob(
                program=looping,
                database=database,
                job_id=job_id,
                # A budget far past what 5 ms of wall clock reaches, so
                # the primary (and every re-run) times out.
                budget_mode="explicit",
                budget=ChaseBudget(max_atoms=50_000_000, max_rounds=10**9),
                timeout_seconds=0.005,
            )

        scheduler.submit(make_job("blocker"))
        records = [scheduler.submit(timeout_job(f"t{i}"))[0] for i in range(8)]
        assert all(r is not None for r in records)
        release.set()
        assert scheduler.drain(timeout=60.0)
        results = [registry.job(r.job_id).result for r in records]
        assert all(r is not None and r["status"] == "timeout" for r in results)
        # Every dedup member re-ran under its own terms (7 requeues),
        # but the database was encoded once for the blocker and once,
        # total, for all eight burst executions.
        assert sum(calls) == 2
        scheduler.shutdown(timeout=10.0)
