"""Client-side fault tolerance: transient GET retries and backpressure.

These tests never open a socket: ``urllib.request.urlopen`` is
monkeypatched with scripted outcomes, and ``time.sleep`` is captured so
the backoff schedule itself is asserted.
"""

from __future__ import annotations

import email.message
import io
import json
import urllib.error
import urllib.request

import pytest

from repro.service.client import ChaseServiceClient, ServiceError


def http_error(code: int, retry_after: str | None = None) -> urllib.error.HTTPError:
    headers = email.message.Message()
    if retry_after is not None:
        headers["Retry-After"] = retry_after
    body = io.BytesIO(json.dumps({"error": f"status {code}"}).encode())
    return urllib.error.HTTPError("http://test/x", code, "nope", headers, body)


@pytest.fixture
def no_sleep(monkeypatch):
    """Capture backoff delays instead of actually sleeping."""
    delays = []
    monkeypatch.setattr("repro.service.client.time.sleep", delays.append)
    return delays


def script_urlopen(monkeypatch, outcomes):
    """Each call pops the next outcome: an exception to raise, or a body."""
    calls = []

    def fake_urlopen(request, timeout=None):
        calls.append(request)
        outcome = outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return io.BytesIO(json.dumps(outcome).encode())

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    return calls


class TestTransientNetworkRetries:
    def test_get_retries_connection_resets_then_succeeds(self, monkeypatch, no_sleep):
        calls = script_urlopen(
            monkeypatch,
            [ConnectionResetError("peer reset"), ConnectionResetError("again"), {"ok": True}],
        )
        client = ChaseServiceClient("http://test", max_retries=3, backoff_base=0.1)
        assert client.healthz() == {"ok": True}
        assert len(calls) == 3
        # Deterministic exponential spine (0.1, 0.2) with jitter in [0.5, 1.0].
        assert len(no_sleep) == 2
        assert 0.05 <= no_sleep[0] <= 0.1
        assert 0.1 <= no_sleep[1] <= 0.2

    def test_get_retries_urlerror(self, monkeypatch, no_sleep):
        calls = script_urlopen(
            monkeypatch,
            [urllib.error.URLError(OSError("connection refused")), {"ok": True}],
        )
        client = ChaseServiceClient("http://test")
        assert client.stats() == {"ok": True}
        assert len(calls) == 2

    def test_exhausted_budget_reraises_with_attempt_count(self, monkeypatch, no_sleep):
        script_urlopen(monkeypatch, [ConnectionResetError(f"reset {i}") for i in range(3)])
        client = ChaseServiceClient("http://test", max_retries=2)
        with pytest.raises(ConnectionResetError) as excinfo:
            client.healthz()
        assert "giving up after 3 attempts" in "".join(
            getattr(excinfo.value, "__notes__", [])
        )

    def test_post_never_replays_on_network_error(self, monkeypatch, no_sleep):
        calls = script_urlopen(monkeypatch, [ConnectionResetError("mid-response")])
        client = ChaseServiceClient("http://test", max_retries=5)
        with pytest.raises(ConnectionResetError):
            client._json("POST", "/jobs", b"{}")
        assert len(calls) == 1  # the POST is not idempotent: one attempt only
        assert no_sleep == []


class TestBackpressureRetries:
    def test_429_raises_immediately_by_default(self, monkeypatch, no_sleep):
        calls = script_urlopen(monkeypatch, [http_error(429, retry_after="1")])
        client = ChaseServiceClient("http://test")
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/jobs", b"{}")
        assert excinfo.value.status == 429
        assert excinfo.value.attempts == 1
        assert len(calls) == 1 and no_sleep == []

    def test_retry_after_drives_the_delay(self, monkeypatch, no_sleep):
        calls = script_urlopen(
            monkeypatch, [http_error(429, retry_after="0.8"), {"job_id": "j1"}]
        )
        client = ChaseServiceClient(
            "http://test", backpressure_retries=2, backoff_base=0.1
        )
        assert client._json("POST", "/jobs", b"{}") == {"job_id": "j1"}
        assert len(calls) == 2
        # Retry-After (0.8s) overrides the exponential base, jittered down.
        assert len(no_sleep) == 1 and 0.4 <= no_sleep[0] <= 0.8

    def test_retry_after_is_capped(self, monkeypatch, no_sleep):
        script_urlopen(monkeypatch, [http_error(503, retry_after="3600"), {"ok": 1}])
        client = ChaseServiceClient(
            "http://test", backpressure_retries=1, backoff_cap=0.5
        )
        assert client._json("GET", "/stats") == {"ok": 1}
        assert no_sleep[0] <= 0.5

    def test_exhausted_backpressure_surfaces_attempts(self, monkeypatch, no_sleep):
        script_urlopen(monkeypatch, [http_error(503), http_error(503)])
        client = ChaseServiceClient("http://test", backpressure_retries=1)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.attempts == 2
        assert "after 2 attempts" in str(excinfo.value)

    def test_non_backpressure_http_errors_never_retry(self, monkeypatch, no_sleep):
        calls = script_urlopen(monkeypatch, [http_error(404)])
        client = ChaseServiceClient(
            "http://test", backpressure_retries=5, max_retries=5
        )
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 404 and excinfo.value.attempts == 1
        assert len(calls) == 1 and no_sleep == []
