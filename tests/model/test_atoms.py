"""Unit tests for predicates, positions and atoms."""

import pytest

from repro.model.atoms import (
    Atom,
    Position,
    Predicate,
    atom,
    atoms_schema,
    atoms_terms,
    atoms_variables,
    positions_of_variable,
)
from repro.model.terms import Constant, Variable, make_null


class TestPredicate:
    def test_positions_are_one_based(self):
        predicate = Predicate("R", 3)
        assert [p.index for p in predicate.positions()] == [1, 2, 3]

    def test_negative_arity_is_rejected(self):
        with pytest.raises(ValueError):
            Predicate("R", -1)

    def test_zero_arity_is_allowed(self):
        assert Predicate("R", 0).positions() == ()

    def test_str(self):
        assert str(Predicate("R", 2)) == "R/2"


class TestPosition:
    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            Position(Predicate("R", 2), 3)
        with pytest.raises(ValueError):
            Position(Predicate("R", 2), 0)

    def test_str(self):
        assert str(Position(Predicate("R", 2), 1)) == "(R,1)"


class TestAtom:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Atom(Predicate("R", 2), (Constant("a"),))

    def test_is_fact(self):
        assert atom("R", Constant("a"), Constant("b")).is_fact
        assert not atom("R", Constant("a"), Variable("x")).is_fact
        assert not atom("R", Constant("a"), make_null("r", "z", {})).is_fact

    def test_is_ground(self):
        assert atom("R", Constant("a"), make_null("r", "z", {})).is_ground
        assert not atom("R", Constant("a"), Variable("x")).is_ground

    def test_variables_constants_nulls(self):
        null = make_null("r", "z", {})
        a = atom("R", Constant("a"), Variable("x"), null)
        assert a.variables() == {Variable("x")}
        assert a.constants() == {Constant("a")}
        assert a.nulls() == {null}
        assert a.terms() == {Constant("a"), Variable("x"), null}

    def test_positions_of(self):
        x = Variable("x")
        a = atom("R", x, Constant("a"), x)
        positions = a.positions_of(x)
        assert [p.index for p in positions] == [1, 3]

    def test_depth_of_fact_is_zero(self):
        assert atom("R", Constant("a"), Constant("b")).depth() == 0

    def test_depth_of_atom_with_null(self):
        null = make_null("r", "z", {"x": Constant("a")})
        assert atom("R", Constant("a"), null).depth() == 1

    def test_depth_undefined_for_non_ground(self):
        with pytest.raises(ValueError):
            atom("R", Variable("x")).depth()

    def test_substitute(self):
        x, y = Variable("x"), Variable("y")
        a = atom("R", x, y).substitute({x: Constant("a")})
        assert a == atom("R", Constant("a"), y)

    def test_str(self):
        assert str(atom("R", Constant("a"), Variable("x"))) == "R(a, ?x)"


class TestCollections:
    def test_atoms_schema(self):
        atoms = [atom("R", Constant("a")), atom("S", Constant("a"), Constant("b"))]
        assert atoms_schema(atoms) == {Predicate("R", 1), Predicate("S", 2)}

    def test_atoms_variables(self):
        x, y = Variable("x"), Variable("y")
        assert atoms_variables([atom("R", x), atom("S", x, y)]) == {x, y}

    def test_atoms_terms(self):
        x = Variable("x")
        assert atoms_terms([atom("R", x, Constant("a"))]) == {x, Constant("a")}

    def test_positions_of_variable(self):
        x = Variable("x")
        atoms = [atom("R", x, Variable("y")), atom("S", x)]
        positions = positions_of_variable(atoms, x)
        assert {(p.predicate.name, p.index) for p in positions} == {("R", 1), ("S", 1)}
