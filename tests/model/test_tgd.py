"""Unit tests for TGDs and TGD sets."""

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet

R = Predicate("R", 2)
S = Predicate("S", 2)
P = Predicate("P", 1)
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def make_tgd(body, head, rule_id="t"):
    return TGD(body=tuple(body), head=tuple(head), rule_id=rule_id)


class TestTGDStructure:
    def test_frontier_and_existentials(self):
        tgd = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))])
        assert tgd.frontier() == {Y}
        assert tgd.existential_variables() == {Z}
        assert tgd.body_variables() == {X, Y}
        assert tgd.head_variables() == {Y, Z}

    def test_full_tgd_has_no_existentials(self):
        tgd = make_tgd([Atom(R, (X, Y))], [Atom(S, (X, Y))])
        assert tgd.is_full
        assert tgd.existential_variables() == set()

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            TGD(body=(), head=(Atom(R, (X, Y)),))

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            TGD(body=(Atom(R, (X, Y)),), head=())

    def test_constants_rejected(self):
        with pytest.raises(ValueError):
            make_tgd([Atom(R, (X, Constant("a")))], [Atom(S, (X, X))])

    def test_schema(self):
        tgd = make_tgd([Atom(R, (X, Y)), Atom(P, (X,))], [Atom(S, (X, Z))])
        assert tgd.schema() == {R, P, S}

    def test_positions_of_variable_in_body(self):
        tgd = make_tgd([Atom(R, (X, X)), Atom(P, (X,))], [Atom(S, (X, Z))])
        positions = tgd.positions_of_variable_in_body(X)
        assert {(p.predicate.name, p.index) for p in positions} == {("R", 1), ("R", 2), ("P", 1)}

    def test_rename_apart(self):
        tgd = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))])
        renamed = tgd.rename_apart("_0")
        assert renamed.body_variables() == {Variable("x_0"), Variable("y_0")}
        assert renamed.rule_id == tgd.rule_id
        assert renamed.frontier() == {Variable("y_0")}

    def test_str_mentions_existentials(self):
        tgd = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))])
        assert "exists z" in str(tgd)


class TestTGDClasses:
    def test_simple_linear(self):
        tgd = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))])
        assert tgd.is_simple_linear and tgd.is_linear and tgd.is_guarded

    def test_linear_not_simple(self):
        tgd = make_tgd([Atom(R, (X, X))], [Atom(S, (X, Z))])
        assert tgd.is_linear and not tgd.is_simple_linear and tgd.is_guarded

    def test_guarded_not_linear(self):
        tgd = make_tgd([Atom(R, (X, Y)), Atom(P, (X,))], [Atom(S, (Y, Z))])
        assert tgd.is_guarded and not tgd.is_linear
        assert tgd.guard() == Atom(R, (X, Y))

    def test_not_guarded(self):
        tgd = make_tgd([Atom(R, (X, Y)), Atom(R, (Y, Z))], [Atom(S, (X, Z))])
        assert not tgd.is_guarded
        assert tgd.guard() is None

    def test_guard_is_leftmost(self):
        tgd = make_tgd([Atom(R, (X, Y)), Atom(S, (X, Y))], [Atom(P, (X,))])
        assert tgd.guard() == Atom(R, (X, Y))


class TestTGDSet:
    def test_schema_arity_norm(self):
        tgds = TGDSet(
            [
                make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a"),
                make_tgd([Atom(P, (X,))], [Atom(R, (X, Z))], "b"),
            ]
        )
        assert tgds.schema() == {R, S, P}
        assert tgds.arity() == 2
        assert tgds.atom_count() == 4
        assert tgds.norm() == 4 * 3 * 2

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            TGDSet([])

    def test_duplicate_rule_ids_rejected(self):
        first = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "same")
        second = make_tgd([Atom(P, (X,))], [Atom(R, (X, Z))], "same")
        with pytest.raises(ValueError):
            TGDSet([first, second])

    def test_class_flags(self):
        simple = TGDSet([make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a")])
        assert simple.is_simple_linear and simple.is_linear and simple.is_guarded
        mixed = TGDSet(
            [
                make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a"),
                make_tgd([Atom(R, (X, X))], [Atom(S, (X, Z))], "b"),
            ]
        )
        assert not mixed.is_simple_linear and mixed.is_linear

    def test_by_rule_id(self):
        tgd = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a")
        assert TGDSet([tgd]).by_rule_id() == {"a": tgd}

    def test_rename_apart_makes_variables_disjoint(self):
        first = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a")
        second = make_tgd([Atom(S, (X, Y))], [Atom(R, (Y, Z))], "b")
        renamed = TGDSet([first, second]).rename_apart()
        variables = [t.body_variables() | t.head_variables() for t in renamed]
        assert variables[0] & variables[1] == set()

    def test_body_and_head_predicates(self):
        tgds = TGDSet([make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a")])
        assert tgds.predicates_in_bodies() == {R}
        assert tgds.predicates_in_heads() == {S}

    def test_equality_and_hash(self):
        first = make_tgd([Atom(R, (X, Y))], [Atom(S, (Y, Z))], "a")
        assert TGDSet([first]) == TGDSet([first])
        assert hash(TGDSet([first])) == hash(TGDSet([first]))
