"""Tests for text serialisation of atoms, programs, databases, instances."""

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.instance import Database, Instance
from repro.model.parser import parse_database, parse_program, parse_tgd
from repro.model.serialization import (
    atom_to_text,
    database_to_text,
    instance_to_text,
    program_to_text,
    term_to_text,
    tgd_to_text,
)
from repro.model.terms import Constant, Variable, make_null


class TestTermAndAtomText:
    def test_constant(self):
        assert term_to_text(Constant("alice")) == "alice"

    def test_variable(self):
        assert term_to_text(Variable("x")) == "x"

    def test_null_is_marked(self):
        assert term_to_text(make_null("r", "z", {})).startswith("_:")

    def test_unsupported_term_raises(self):
        with pytest.raises(TypeError):
            term_to_text(42)

    def test_atom(self):
        assert atom_to_text(atom("R", Constant("a"), Variable("x"))) == "R(a, x)"


class TestProgramText:
    def test_tgd_with_existentials(self):
        tgd = parse_tgd("R(x, y) -> exists z . S(y, z)")
        text = tgd_to_text(tgd)
        assert "exists z" in text
        assert str(parse_tgd(text)) == str(tgd)

    def test_full_tgd_has_no_exists_prefix(self):
        assert "exists" not in tgd_to_text(parse_tgd("R(x, y) -> S(y, x)"))

    def test_program_round_trip_preserves_rule_count(self):
        program = parse_program("R(x, y) -> S(y, x)\nS(x, y) -> exists z . R(x, z)")
        assert len(parse_program(program_to_text(program))) == 2


class TestDataText:
    def test_database_text_is_sorted_and_parsable(self):
        database = parse_database("R(b, c).\nR(a, b).\nP(a).")
        text = database_to_text(database)
        assert text.splitlines() == sorted(text.splitlines())
        assert parse_database(text) == database

    def test_instance_text_includes_nulls(self):
        null = make_null("r", "z", {"x": Constant("a")})
        instance = Instance([Atom(Predicate("R", 2), (Constant("a"), null))])
        text = instance_to_text(instance)
        assert "_:" in text and text.startswith("R(")
