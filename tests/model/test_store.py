"""Unit tests for the interned fact store (the engine's data plane).

Both storage layouts — the columnar ``arrays`` default and the ``sets``
fallback — run through the same suite: the layouts must be observably
identical through the public API (only performance differs).
"""

import os
from array import array

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.instance import Instance
from repro.model.store import (
    LAYOUTS,
    FactStore,
    default_layout,
    inspect_snapshot,
)
from repro.model.terms import Constant, Null, Variable, make_null


@pytest.fixture(params=LAYOUTS)
def store(request) -> FactStore:
    return FactStore(layout=request.param)


class TestLayoutSelection:
    def test_default_layout_is_arrays(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_LAYOUT", raising=False)
        assert default_layout() == "arrays"
        assert FactStore().layout == "arrays"

    def test_env_knob_selects_layout(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_LAYOUT", "sets")
        assert FactStore().layout == "sets"
        monkeypatch.setenv("REPRO_STORE_LAYOUT", "arrays")
        assert FactStore().layout == "arrays"

    def test_unknown_layout_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            FactStore(layout="btree")
        monkeypatch.setenv("REPRO_STORE_LAYOUT", "btree")
        with pytest.raises(ValueError):
            FactStore()


class TestInterning:
    def test_predicates_get_dense_ids(self, store):
        p = Predicate("P", 2)
        q = Predicate("Q", 1)
        assert store.intern_predicate(p) == 0
        assert store.intern_predicate(q) == 1
        assert store.intern_predicate(p) == 0  # idempotent
        assert store.predicate_of(0) is p
        assert store.pid(q) == 1
        assert store.pid(Predicate("R", 3)) is None  # lookup never creates

    def test_terms_get_dense_ids_and_round_trip(self, store):
        a, b = Constant("a"), Constant("b")
        ta = store.intern_term(a)
        tb = store.intern_term(b)
        assert ta != tb
        assert store.intern_term(a) == ta
        assert store.term_of_id(ta) == a
        assert store.term_of_id(tb) == b

    def test_variables_cannot_be_interned(self, store):
        with pytest.raises(ValueError):
            store.intern_term(Variable("x"))

    def test_atom_round_trip(self, store):
        fact = atom("R", Constant("a"), Constant("b"))
        pid, ids = store.intern_atom(fact)
        assert store.decode_fact(pid, ids) == fact

    def test_decoded_atom_matches_plain_construction(self, store):
        fact = atom("R", Constant("a"), Constant("b"))
        pid, ids = store.intern_atom(fact)
        decoded = store.decode_fact(pid, ids)
        assert decoded == fact
        assert hash(decoded) == hash(fact)
        assert decoded in Instance([fact])


class TestNullInterning:
    def test_invented_null_decodes_to_structural_null(self, store):
        a = Constant("a")
        ta = store.intern_term(a)
        tid = store.intern_null("r1", "z", ("x",), (ta,))
        decoded = store.term_of_id(tid)
        expected = make_null("r1", "z", {"x": a})
        assert decoded == expected
        assert decoded.depth == 1

    def test_null_ids_are_label_keyed(self, store):
        ta = store.intern_term(Constant("a"))
        tb = store.intern_term(Constant("b"))
        first = store.intern_null("r1", "z", ("x",), (ta,))
        assert store.intern_null("r1", "z", ("x",), (ta,)) == first  # same label
        assert store.intern_null("r1", "z", ("x",), (tb,)) != first  # other binding
        assert store.intern_null("r1", "w", ("x",), (ta,)) != first  # other variable
        assert store.intern_null("r2", "z", ("x",), (ta,)) != first  # other rule

    def test_nested_null_depth_tracks_binding(self, store):
        ta = store.intern_term(Constant("a"))
        level1 = store.intern_null("r", "z", ("x",), (ta,))
        level2 = store.intern_null("r", "z", ("x",), (level1,))
        pid = store.intern_predicate(Predicate("P", 1))
        store.add(pid, (level2,))
        assert store.max_depth() == 2
        assert store.term_of_id(level2).depth == 2

    def test_deeply_nested_null_decodes_iteratively(self, store):
        tid = store.intern_term(Constant("a"))
        for _ in range(5000):  # far beyond the recursion limit
            tid = store.intern_null("r", "z", ("x",), (tid,))
        decoded = store.term_of_id(tid)
        assert isinstance(decoded, Null)
        assert decoded.depth == 5000

    def test_foreign_null_unifies_with_invented_null(self, store):
        # The input instance already contains the null this trigger
        # would invent: both spellings must map to one id, or the same
        # atom would exist as two distinct packed facts.
        a = Constant("a")
        foreign = make_null("r1", "z", {"x": a})
        foreign_tid = store.intern_term(foreign)
        ta = store.intern_term(a)
        invented_tid = store.intern_null("r1", "z", ("x",), (ta,))
        assert invented_tid == foreign_tid


class TestStorage:
    def test_add_and_contains(self, store):
        pid, ids = store.intern_atom(atom("R", Constant("a"), Constant("b")))
        assert not store.contains(pid, ids)
        assert store.add(pid, ids)
        assert store.contains(pid, ids)
        assert not store.add(pid, ids)  # duplicate
        assert len(store) == 1
        assert store.count(pid) == 1

    def test_posting_lists_index_every_position(self, store):
        a, b = Constant("a"), Constant("b")
        pid, ids = store.intern_atom(atom("R", a, b))
        store.add(pid, ids)
        ta, tb = store.intern_term(a), store.intern_term(b)
        assert ids in store.posting(pid, 0, ta)
        assert ids in store.posting(pid, 1, tb)
        assert not store.posting(pid, 0, tb)

    def test_posting_views_are_read_only(self, store):
        a, b = Constant("a"), Constant("b")
        pid, ids = store.intern_atom(atom("R", a, b))
        store.add(pid, ids)
        ta = store.intern_term(a)
        view = store.posting(pid, 0, ta)
        # Both layouts hand out views that refuse mutation: a tuple of
        # facts (arrays) or a frozenset copy under __debug__ (sets).
        assert not hasattr(view, "add") or isinstance(view, frozenset)
        with pytest.raises((AttributeError, TypeError)):
            view.add(("x",))  # type: ignore[union-attr]
        # Mutating the returned view must never corrupt the index.
        assert ids in store.posting(pid, 0, ta)

    def test_posting_rows_memoryview(self, store):
        a, b = Constant("a"), Constant("b")
        pid, ids = store.intern_atom(atom("R", a, b))
        store.add(pid, ids)
        ta = store.intern_term(a)
        if store.layout != "arrays":
            with pytest.raises(TypeError):
                store.posting_rows(pid, 0, ta)
            return
        rows = store.posting_rows(pid, 0, ta)
        assert isinstance(rows, memoryview)
        assert rows.readonly
        assert list(rows) == [0]
        with pytest.raises(TypeError):
            rows[0] = 7
        # A missing key yields an empty read-only view, not an error.
        assert list(store.posting_rows(pid, 1, ta)) == []

    def test_candidates_intersection_and_short_circuit(self, store):
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        r = Predicate("R", 2)
        facts = [atom("R", a, b), atom("R", a, c), atom("R", b, c)]
        packed = [store.add_atom(f) for f in facts]
        pid = store.pid(r)
        ta, tb, tc = (store.intern_term(t) for t in (a, b, c))
        assert set(store.candidates(pid, [])) == {ids for _, ids in packed}
        assert set(store.candidates(pid, [(0, ta)])) == {packed[0][1], packed[1][1]}
        assert set(store.candidates(pid, [(0, ta), (1, tc)])) == {packed[1][1]}
        # Empty posting list short-circuits to a falsy empty container.
        missing = store.intern_term(Constant("zzz"))
        assert not store.candidates(pid, [(0, missing), (1, tb)])

    def test_has_candidate_matches_candidates(self, store):
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        facts = [atom("R", a, b), atom("R", a, c), atom("R", b, c)]
        for f in facts:
            store.add_atom(f)
        pid = store.pid(Predicate("R", 2))
        ta, tb, tc = (store.intern_term(t) for t in (a, b, c))
        probes = [
            [],
            [(0, ta)],
            [(1, tb)],
            [(0, ta), (1, tc)],
            [(0, tb), (1, tb)],
            [(0, tc)],
        ]
        for bound in probes:
            assert store.has_candidate(pid, bound) == bool(
                set(store.candidates(pid, bound))
            )
        # Repeated probes exercise the watermarked probe-set path after
        # new appends (the dirty-watermark catch-up).
        assert store.has_candidate(pid, [(0, ta), (1, tc)])
        store.add_atom(atom("R", c, c))
        assert store.has_candidate(pid, [(0, tc), (1, tc)])

    def test_galloping_intersection_matches_set_semantics(self):
        # Many facts sharing positions: the multi-bound probe must
        # agree between the galloping arrays path and the sets path.
        stores = {layout: FactStore(layout=layout) for layout in LAYOUTS}
        terms = [Constant(f"c{i}") for i in range(10)]
        facts = [
            atom("T", terms[i % 7], terms[i % 5], terms[i % 3]) for i in range(200)
        ]
        for s in stores.values():
            for f in facts:
                s.add_atom(f)
        for bound_spec in [
            [(0, "c1"), (1, "c1")],
            [(0, "c2"), (2, "c2")],
            [(0, "c1"), (1, "c2"), (2, "c0")],
            [(1, "c4"), (2, "c1")],
        ]:
            results = {}
            for layout, s in stores.items():
                pid = s.pid(Predicate("T", 3))
                bound = [(i, s.intern_term(Constant(n))) for i, n in bound_spec]
                decoded = {
                    s.decode_fact(pid, ids) for ids in s.candidates(pid, bound)
                }
                results[layout] = decoded
                assert s.has_candidate(pid, bound) == bool(decoded)
            assert results["arrays"] == results["sets"]

    def test_to_instance_round_trips(self, store):
        facts = [
            atom("R", Constant("a"), Constant("b")),
            atom("R", Constant("b"), Constant("c")),
            atom("S", Constant("a")),
        ]
        for f in facts:
            store.add_atom(f)
        assert store.to_instance() == Instance(facts)

    def test_max_depth_is_incremental(self, store):
        assert store.max_depth() == 0
        pid, ids = store.intern_atom(atom("R", Constant("a"), Constant("b")))
        store.add(pid, ids)
        assert store.max_depth() == 0
        ta = store.intern_term(Constant("a"))
        null_tid = store.intern_null("r", "z", ("x",), (ta,))
        # Interning alone must not raise the depth: the null is not in
        # any stored fact yet (inactive triggers intern labels too).
        assert store.max_depth() == 0
        spid = store.intern_predicate(Predicate("S", 1))
        store.add(spid, (null_tid,))
        assert store.max_depth() == 1
        assert store.fact_depth((null_tid,)) == 1


class TestSnapshot:
    def _populated(self, layout: str) -> FactStore:
        store = FactStore(layout=layout)
        a, b = Constant("a"), Constant("b")
        store.add_atom(atom("R", a, b))
        store.add_atom(atom("R", b, a))
        ta = store.intern_term(a)
        null_tid = store.intern_null("r1", "z", ("x",), (ta,))
        nested = store.intern_null("r1", "z", ("x",), (null_tid,))
        spid = store.intern_predicate(Predicate("S", 1))
        store.add(spid, (null_tid,))
        store.add(spid, (nested,))
        store.add_atom(Atom(Predicate("Z", 0), ()))
        return store

    @pytest.mark.parametrize("source_layout", LAYOUTS)
    @pytest.mark.parametrize("target_layout", LAYOUTS)
    def test_round_trip_across_layouts(self, source_layout, target_layout):
        store = self._populated(source_layout)
        blob = store.snapshot()
        assert isinstance(blob, bytes)
        restored = FactStore.restore(blob, layout=target_layout)
        assert restored.layout == target_layout
        assert len(restored) == len(store)
        assert restored.max_depth() == store.max_depth()
        assert restored.to_instance() == store.to_instance()

    def test_restore_preserves_posting_lists(self, store):
        store = self._populated(store.layout)
        restored = FactStore.restore(store.snapshot(), layout=store.layout)
        for pid in range(3):
            predicate = store.predicate_of(pid)
            assert restored.predicate_of(pid) == predicate
            assert restored.count(pid) == store.count(pid)
            for position in range(predicate.arity):
                for tid in range(len(store._term_of_id)):
                    assert set(store.posting(pid, position, tid)) == set(
                        restored.posting(pid, position, tid)
                    )

    def test_restore_preserves_null_recipes(self, store):
        store = self._populated(store.layout)
        restored = FactStore.restore(store.snapshot())
        for tid in range(len(store._term_of_id)):
            assert restored.term_of_id(tid) == store.term_of_id(tid)
            assert restored.fact_depth((tid,)) == store.fact_depth((tid,))

    def test_restored_store_keeps_chasing(self, store):
        # Interning and adding after a restore picks up exactly where
        # the source store left off (fresh ids extend the dense range).
        store = self._populated(store.layout)
        restored = FactStore.restore(store.snapshot())
        pid, ids = restored.intern_atom(atom("R", Constant("c"), Constant("a")))
        assert restored.add(pid, ids)
        assert restored.contains(pid, ids)
        ta = restored.intern_term(Constant("a"))
        # The restored recipe table answers intern_null without
        # re-inventing: same key, same id.
        first = restored.intern_null("r1", "z", ("x",), (ta,))
        assert restored.intern_null("r1", "z", ("x",), (ta,)) == first

    def test_inspect_reads_header_only(self, store):
        store = self._populated(store.layout)
        header = inspect_snapshot(store.snapshot())
        assert header["size"] == len(store)
        assert header["max_depth"] == store.max_depth()
        assert [tuple(p) for p in header["predicates"]] == [
            ("R", 2),
            ("S", 1),
            ("Z", 0),
        ]
        assert header["facts"] == [2, 2, 1]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            FactStore.restore(b"not a snapshot")
        with pytest.raises(ValueError):
            inspect_snapshot(b"RSNPX\n garbage")

    def test_foreign_null_snapshot_round_trip(self, store):
        foreign = make_null("rx", "z", {"x": Constant("a")})
        outer = make_null("ry", "w", {"y": foreign})
        store.add_atom(Atom(Predicate("S", 1), (outer,)))
        restored = FactStore.restore(store.snapshot(), layout=store.layout)
        assert restored.to_instance() == store.to_instance()


class TestSnapshotIntegrity:
    def test_truncated_snapshot_is_rejected(self):
        store = FactStore()
        for i in range(10):
            store.add_atom(atom("R", Constant(f"a{i}"), Constant(f"b{i}")))
        blob = store.snapshot()
        with pytest.raises(ValueError, match="truncated or padded"):
            FactStore.restore(blob[:-16])  # itemsize-aligned truncation
        with pytest.raises(ValueError, match="truncated or padded"):
            FactStore.restore(blob + b"\x00" * 8)

    def test_completeness_stamp_round_trips(self):
        store = FactStore()
        store.add_atom(atom("R", Constant("a"), Constant("b")))
        assert inspect_snapshot(store.snapshot())["complete"] is None
        assert inspect_snapshot(store.snapshot(complete=True))["complete"] is True
        assert inspect_snapshot(store.snapshot(complete=False))["complete"] is False
        # restore accepts any stamp — policy lives at the CLI/executor
        # boundary, not in the store.
        assert len(FactStore.restore(store.snapshot(complete=False))) == 1
