"""Unit tests for the interned fact store (the engine's data plane)."""

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.instance import Instance
from repro.model.store import FactStore
from repro.model.terms import Constant, Null, Variable, make_null


@pytest.fixture
def store() -> FactStore:
    return FactStore()


class TestInterning:
    def test_predicates_get_dense_ids(self, store):
        p = Predicate("P", 2)
        q = Predicate("Q", 1)
        assert store.intern_predicate(p) == 0
        assert store.intern_predicate(q) == 1
        assert store.intern_predicate(p) == 0  # idempotent
        assert store.predicate_of(0) is p
        assert store.pid(q) == 1
        assert store.pid(Predicate("R", 3)) is None  # lookup never creates

    def test_terms_get_dense_ids_and_round_trip(self, store):
        a, b = Constant("a"), Constant("b")
        ta = store.intern_term(a)
        tb = store.intern_term(b)
        assert ta != tb
        assert store.intern_term(a) == ta
        assert store.term_of_id(ta) == a
        assert store.term_of_id(tb) == b

    def test_variables_cannot_be_interned(self, store):
        with pytest.raises(ValueError):
            store.intern_term(Variable("x"))

    def test_atom_round_trip(self, store):
        fact = atom("R", Constant("a"), Constant("b"))
        pid, ids = store.intern_atom(fact)
        assert store.decode_fact(pid, ids) == fact

    def test_decoded_atom_matches_plain_construction(self, store):
        fact = atom("R", Constant("a"), Constant("b"))
        pid, ids = store.intern_atom(fact)
        decoded = store.decode_fact(pid, ids)
        assert decoded == fact
        assert hash(decoded) == hash(fact)
        assert decoded in Instance([fact])


class TestNullInterning:
    def test_invented_null_decodes_to_structural_null(self, store):
        a = Constant("a")
        ta = store.intern_term(a)
        tid = store.intern_null("r1", "z", ("x",), (ta,))
        decoded = store.term_of_id(tid)
        expected = make_null("r1", "z", {"x": a})
        assert decoded == expected
        assert decoded.depth == 1

    def test_null_ids_are_label_keyed(self, store):
        ta = store.intern_term(Constant("a"))
        tb = store.intern_term(Constant("b"))
        first = store.intern_null("r1", "z", ("x",), (ta,))
        assert store.intern_null("r1", "z", ("x",), (ta,)) == first  # same label
        assert store.intern_null("r1", "z", ("x",), (tb,)) != first  # other binding
        assert store.intern_null("r1", "w", ("x",), (ta,)) != first  # other variable
        assert store.intern_null("r2", "z", ("x",), (ta,)) != first  # other rule

    def test_nested_null_depth_tracks_binding(self, store):
        ta = store.intern_term(Constant("a"))
        level1 = store.intern_null("r", "z", ("x",), (ta,))
        level2 = store.intern_null("r", "z", ("x",), (level1,))
        pid = store.intern_predicate(Predicate("P", 1))
        store.add(pid, (level2,))
        assert store.max_depth() == 2
        assert store.term_of_id(level2).depth == 2

    def test_deeply_nested_null_decodes_iteratively(self, store):
        tid = store.intern_term(Constant("a"))
        for _ in range(5000):  # far beyond the recursion limit
            tid = store.intern_null("r", "z", ("x",), (tid,))
        decoded = store.term_of_id(tid)
        assert isinstance(decoded, Null)
        assert decoded.depth == 5000

    def test_foreign_null_unifies_with_invented_null(self, store):
        # The input instance already contains the null this trigger
        # would invent: both spellings must map to one id, or the same
        # atom would exist as two distinct packed facts.
        a = Constant("a")
        foreign = make_null("r1", "z", {"x": a})
        foreign_tid = store.intern_term(foreign)
        ta = store.intern_term(a)
        invented_tid = store.intern_null("r1", "z", ("x",), (ta,))
        assert invented_tid == foreign_tid


class TestStorage:
    def test_add_and_contains(self, store):
        pid, ids = store.intern_atom(atom("R", Constant("a"), Constant("b")))
        assert not store.contains(pid, ids)
        assert store.add(pid, ids)
        assert store.contains(pid, ids)
        assert not store.add(pid, ids)  # duplicate
        assert len(store) == 1
        assert store.count(pid) == 1

    def test_posting_lists_index_every_position(self, store):
        a, b = Constant("a"), Constant("b")
        pid, ids = store.intern_atom(atom("R", a, b))
        store.add(pid, ids)
        ta, tb = store.intern_term(a), store.intern_term(b)
        assert ids in store.posting(pid, 0, ta)
        assert ids in store.posting(pid, 1, tb)
        assert not store.posting(pid, 0, tb)

    def test_candidates_intersection_and_short_circuit(self, store):
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        r = Predicate("R", 2)
        facts = [atom("R", a, b), atom("R", a, c), atom("R", b, c)]
        packed = [store.add_atom(f) for f in facts]
        pid = store.pid(r)
        ta, tb, tc = (store.intern_term(t) for t in (a, b, c))
        assert store.candidates(pid, []) == {ids for _, ids in packed}
        assert store.candidates(pid, [(0, ta)]) == {packed[0][1], packed[1][1]}
        assert store.candidates(pid, [(0, ta), (1, tc)]) == {packed[1][1]}
        # Empty posting list short-circuits to the shared empty set.
        missing = store.intern_term(Constant("zzz"))
        assert store.candidates(pid, [(0, missing), (1, tb)]) == frozenset()

    def test_to_instance_round_trips(self, store):
        facts = [
            atom("R", Constant("a"), Constant("b")),
            atom("R", Constant("b"), Constant("c")),
            atom("S", Constant("a")),
        ]
        for f in facts:
            store.add_atom(f)
        assert store.to_instance() == Instance(facts)

    def test_max_depth_is_incremental(self, store):
        assert store.max_depth() == 0
        pid, ids = store.intern_atom(atom("R", Constant("a"), Constant("b")))
        store.add(pid, ids)
        assert store.max_depth() == 0
        ta = store.intern_term(Constant("a"))
        null_tid = store.intern_null("r", "z", ("x",), (ta,))
        # Interning alone must not raise the depth: the null is not in
        # any stored fact yet (inactive triggers intern labels too).
        assert store.max_depth() == 0
        spid = store.intern_predicate(Predicate("S", 1))
        store.add(spid, (null_tid,))
        assert store.max_depth() == 1
        assert store.fact_depth((null_tid,)) == 1
