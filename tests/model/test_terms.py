"""Unit tests for constants, variables and labelled nulls."""

import pytest

from repro.model.terms import Constant, Null, Variable, is_ground, make_null, term_depth


class TestConstant:
    def test_equality_is_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_depth_is_zero(self):
        assert Constant("a").depth == 0

    def test_kind_flags(self):
        constant = Constant("a")
        assert constant.is_constant
        assert not constant.is_null
        assert not constant.is_variable

    def test_str(self):
        assert str(Constant("alice")) == "alice"

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2


class TestVariable:
    def test_equality_is_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_kind_flags(self):
        variable = Variable("x")
        assert variable.is_variable
        assert not variable.is_constant
        assert not variable.is_null

    def test_variable_is_not_constant_with_same_name(self):
        assert Variable("a") != Constant("a")

    def test_has_no_depth(self):
        with pytest.raises(TypeError):
            term_depth(Variable("x"))


class TestNull:
    def test_same_label_means_same_null(self):
        binding = {"x": Constant("a")}
        assert make_null("r1", "z", binding) == make_null("r1", "z", binding)

    def test_different_rule_means_different_null(self):
        binding = {"x": Constant("a")}
        assert make_null("r1", "z", binding) != make_null("r2", "z", binding)

    def test_different_binding_means_different_null(self):
        assert make_null("r1", "z", {"x": Constant("a")}) != make_null(
            "r1", "z", {"x": Constant("b")}
        )

    def test_binding_order_is_irrelevant(self):
        first = make_null("r1", "z", {"x": Constant("a"), "y": Constant("b")})
        second = make_null("r1", "z", {"y": Constant("b"), "x": Constant("a")})
        assert first == second

    def test_depth_of_null_over_constants(self):
        null = make_null("r1", "z", {"x": Constant("a")})
        assert null.depth == 1

    def test_depth_of_nested_null(self):
        inner = make_null("r1", "z", {"x": Constant("a")})
        outer = make_null("r1", "z", {"x": inner})
        assert outer.depth == 2

    def test_depth_with_empty_binding(self):
        assert make_null("r1", "z", {}).depth == 1

    def test_depth_takes_max_over_binding(self):
        deep = make_null("r1", "z", {"x": Constant("a")})
        mixed = make_null("r2", "w", {"x": deep, "y": Constant("b")})
        assert mixed.depth == 2

    def test_kind_flags(self):
        null = make_null("r1", "z", {})
        assert null.is_null
        assert not null.is_constant
        assert not null.is_variable

    def test_depth_is_not_part_of_identity(self):
        null = make_null("r1", "z", {"x": Constant("a")})
        clone = Null(rule_id="r1", variable="z", binding=null.binding, depth=99)
        assert clone == null


class TestHelpers:
    def test_term_depth(self):
        assert term_depth(Constant("a")) == 0
        assert term_depth(make_null("r", "z", {})) == 1

    def test_is_ground(self):
        assert is_ground(Constant("a"))
        assert is_ground(make_null("r", "z", {}))
        assert not is_ground(Variable("x"))
