"""Unit tests for homomorphism search."""

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import (
    apply_substitution,
    extend_homomorphism,
    find_homomorphisms,
    find_homomorphisms_with_forced_atom,
    is_homomorphism,
)
from repro.model.instance import Instance
from repro.model.terms import Constant, Variable

R = Predicate("R", 2)
S = Predicate("S", 1)
A, B, C = Constant("a"), Constant("b"), Constant("c")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def homomorphisms(atoms, instance, **kwargs):
    return list(find_homomorphisms(atoms, instance, **kwargs))


class TestFindHomomorphisms:
    def test_single_atom(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C))])
        results = homomorphisms([Atom(R, (X, Y))], instance)
        assert len(results) == 2
        assert {(h[X], h[Y]) for h in results} == {(A, B), (B, C)}

    def test_join_on_shared_variable(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C)), Atom(R, (A, C))])
        results = homomorphisms([Atom(R, (X, Y)), Atom(R, (Y, Z))], instance)
        assert {(h[X], h[Y], h[Z]) for h in results} == {(A, B, C)}

    def test_repeated_variable_in_pattern(self):
        instance = Instance([Atom(R, (A, A)), Atom(R, (A, B))])
        results = homomorphisms([Atom(R, (X, X))], instance)
        assert {(h[X],) for h in results} == {(A,)}

    def test_no_match(self):
        instance = Instance([Atom(R, (A, B))])
        assert homomorphisms([Atom(S, (X,))], instance) == []

    def test_seed_restricts_matches(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C))])
        results = homomorphisms([Atom(R, (X, Y))], instance, seed={X: B})
        assert {(h[X], h[Y]) for h in results} == {(B, C)}

    def test_cross_product_when_no_shared_variables(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (A,)), Atom(S, (B,))])
        results = homomorphisms([Atom(R, (X, Y)), Atom(S, (Z,))], instance)
        assert len(results) == 2

    def test_forced_atom(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C))])
        forced = Atom(R, (B, C))
        results = list(
            find_homomorphisms_with_forced_atom(
                [Atom(R, (X, Y)), Atom(R, (Y, Z))], instance, 1, forced
            )
        )
        assert {(h[X], h[Y], h[Z]) for h in results} == {(A, B, C)}

    def test_forced_atom_with_wrong_predicate_yields_nothing(self):
        instance = Instance([Atom(R, (A, B))])
        results = list(
            find_homomorphisms_with_forced_atom([Atom(R, (X, Y))], instance, 0, Atom(S, (A,)))
        )
        assert results == []

    def test_forced_single_atom_body(self):
        instance = Instance([Atom(R, (A, B))])
        results = list(
            find_homomorphisms_with_forced_atom([Atom(R, (X, Y))], instance, 0, Atom(R, (A, B)))
        )
        assert len(results) == 1


class TestHelpers:
    def test_apply_substitution(self):
        assert apply_substitution(Atom(R, (X, Y)), {X: A, Y: B}) == Atom(R, (A, B))

    def test_apply_substitution_leaves_unbound_variables(self):
        assert apply_substitution(Atom(R, (X, Y)), {X: A}) == Atom(R, (A, Y))

    def test_is_homomorphism(self):
        instance = Instance([Atom(R, (A, B))])
        assert is_homomorphism([Atom(R, (X, Y))], instance, {X: A, Y: B})
        assert not is_homomorphism([Atom(R, (X, Y))], instance, {X: B, Y: A})
        assert not is_homomorphism([Atom(R, (X, Y))], instance, {X: A})

    def test_extend_homomorphism_finds_head_witness(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (B,))])
        extension = extend_homomorphism([Atom(S, (Y,))], instance, {X: A})
        assert extension is not None and extension[Y] == B

    def test_extend_homomorphism_respects_seed(self):
        instance = Instance([Atom(R, (A, B))])
        assert extend_homomorphism([Atom(R, (X, Y))], instance, {X: B}) is None
