"""Unit tests for instances and databases."""

import pytest

from repro.model.atoms import Atom, Predicate, atom
from repro.model.instance import Database, Instance
from repro.model.terms import Constant, Variable, make_null

R = Predicate("R", 2)
S = Predicate("S", 1)
A, B, C = Constant("a"), Constant("b"), Constant("c")


class TestInstance:
    def test_add_and_contains(self):
        instance = Instance()
        assert instance.add(Atom(R, (A, B)))
        assert Atom(R, (A, B)) in instance
        assert not instance.add(Atom(R, (A, B)))
        assert len(instance) == 1

    def test_rejects_atoms_with_variables(self):
        with pytest.raises(ValueError):
            Instance().add(Atom(R, (A, Variable("x"))))

    def test_accepts_nulls(self):
        null = make_null("r", "z", {})
        instance = Instance([Atom(R, (A, null))])
        assert len(instance) == 1

    def test_add_all_reports_new_atoms(self):
        instance = Instance([Atom(R, (A, B))])
        added = instance.add_all([Atom(R, (A, B)), Atom(R, (B, C))])
        assert added == [Atom(R, (B, C))]

    def test_discard(self):
        instance = Instance([Atom(R, (A, B))])
        assert instance.discard(Atom(R, (A, B)))
        assert not instance.discard(Atom(R, (A, B)))
        assert len(instance) == 0
        assert instance.candidates(R, {0: A}) == set()

    def test_atoms_with_predicate(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (A,))])
        assert instance.atoms_with_predicate(R) == {Atom(R, (A, B))}
        assert instance.atoms_with_predicate(Predicate("T", 1)) == set()

    def test_candidates_with_bound_positions(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (A, C)), Atom(R, (B, C))])
        assert instance.candidates(R, {0: A}) == {Atom(R, (A, B)), Atom(R, (A, C))}
        assert instance.candidates(R, {0: A, 1: C}) == {Atom(R, (A, C))}
        assert instance.candidates(R, {}) == instance.atoms_with_predicate(R)

    def test_atoms_with_predicate_is_safe_to_mutate_while_iterating(self):
        # Regression test: this used to return the live internal index
        # set, so adding an atom mid-iteration raised RuntimeError
        # ("Set changed size during iteration").
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C)), Atom(R, (A, C))])
        seen = 0
        for atom_ in instance.atoms_with_predicate(R):
            instance.add(Atom(S, (atom_.args[0],)))
            instance.add(Atom(R, (C, atom_.args[0])))
            seen += 1
        assert seen == 3
        assert len(instance.atoms_with_predicate(R)) > 3

    def test_atoms_with_predicate_returns_copy(self):
        instance = Instance([Atom(R, (A, B))])
        view = instance.atoms_with_predicate(R)
        view.add(Atom(R, (B, A)))
        assert Atom(R, (B, A)) not in instance
        assert instance.atoms_with_predicate(R) == {Atom(R, (A, B))}

    def test_count(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C)), Atom(S, (A,))])
        assert instance.count(R) == 2
        assert instance.count(S) == 1
        assert instance.count(Predicate("T", 1)) == 0
        instance.discard(Atom(S, (A,)))
        assert instance.count(S) == 0

    def test_candidates_view_matches_candidates(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (A, C)), Atom(R, (B, C))])
        for bound in ({}, {0: A}, {0: A, 1: C}, {1: C}):
            assert set(instance.candidates_view(R, bound)) == instance.candidates(R, bound)

    def test_active_domain(self):
        instance = Instance([Atom(R, (A, B))])
        assert instance.active_domain() == {A, B}

    def test_constants_and_nulls(self):
        null = make_null("r", "z", {})
        instance = Instance([Atom(R, (A, null))])
        assert instance.constants() == {A}
        assert instance.nulls() == {null}

    def test_max_depth(self):
        assert Instance().max_depth() == 0
        deep = make_null("r", "z", {"x": make_null("r", "w", {})})
        assert Instance([Atom(R, (A, deep))]).max_depth() == 2

    def test_copy_is_independent(self):
        instance = Instance([Atom(R, (A, B))])
        copy = instance.copy()
        copy.add(Atom(R, (B, C)))
        assert len(instance) == 1
        assert len(copy) == 2

    def test_equality(self):
        assert Instance([Atom(R, (A, B))]) == Instance([Atom(R, (A, B))])
        assert Instance([Atom(R, (A, B))]) != Instance([Atom(R, (B, A))])

    def test_restrict_to_predicates(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (A,))])
        restricted = instance.restrict_to_predicates([S])
        assert set(restricted) == {Atom(S, (A,))}

    def test_predicates(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (A,))])
        assert instance.predicates() == {R, S}


class TestDatabase:
    def test_rejects_nulls(self):
        with pytest.raises(ValueError):
            Database([Atom(R, (A, make_null("r", "z", {})))])

    def test_as_instance(self):
        database = Database([Atom(R, (A, B))])
        instance = database.as_instance()
        assert isinstance(instance, Instance)
        instance.add(Atom(R, (A, make_null("r", "z", {}))))
        assert len(database) == 1

    def test_copy_returns_database(self):
        database = Database([Atom(R, (A, B))])
        assert isinstance(database.copy(), Database)
