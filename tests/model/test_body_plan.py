"""Equivalence tests for compiled body plans.

:class:`BodyPlan` (and everything built on it: the plan-backed
``find_homomorphisms``, the forced-atom delta step, and the compiled
rule pipeline) must enumerate exactly the substitution set of the
reference implementation.  These tests check that on hand-written
corner cases and on randomized programs from
``generators/random_programs.py``.
"""

import pytest

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import (
    BodyPlan,
    compile_plan,
    extend_homomorphism,
    find_homomorphisms,
    find_homomorphisms_reference,
    find_homomorphisms_with_forced_atom,
    find_homomorphisms_with_forced_atom_reference,
    is_homomorphism,
)
from repro.model.instance import Database, Instance
from repro.model.terms import Constant, Variable
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)

R = Predicate("R", 2)
S = Predicate("S", 1)
T = Predicate("T", 3)
A, B, C = Constant("a"), Constant("b"), Constant("c")
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def substitution_set(iterator):
    """Hashable fingerprint of an enumeration, ignoring order."""
    return {frozenset(sub.items()) for sub in iterator}


class TestBodyPlanEquivalence:
    def test_single_atom(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C))])
        atoms = [Atom(R, (X, Y))]
        assert substitution_set(find_homomorphisms(atoms, instance)) == substitution_set(
            find_homomorphisms_reference(atoms, instance)
        )

    def test_join_and_repeated_variables(self):
        instance = Instance(
            [Atom(R, (A, B)), Atom(R, (B, B)), Atom(R, (B, C)), Atom(T, (A, B, B))]
        )
        atoms = [Atom(R, (X, Y)), Atom(T, (X, Y, Y))]
        assert substitution_set(find_homomorphisms(atoms, instance)) == substitution_set(
            find_homomorphisms_reference(atoms, instance)
        )

    def test_cross_product(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (C,))])
        atoms = [Atom(R, (X, Y)), Atom(S, (Z,))]
        assert substitution_set(find_homomorphisms(atoms, instance)) == substitution_set(
            find_homomorphisms_reference(atoms, instance)
        )

    def test_seed_including_variable_outside_atoms(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C))])
        atoms = [Atom(R, (X, Y))]
        seed = {X: B, W: C}  # W does not occur in the atoms
        plan_results = substitution_set(find_homomorphisms(atoms, instance, seed=seed))
        reference = substitution_set(find_homomorphisms_reference(atoms, instance, seed=seed))
        assert plan_results == reference
        assert plan_results == {frozenset({(X, B), (Y, C), (W, C)}.__iter__())}

    def test_empty_atom_list_yields_seed_once(self):
        instance = Instance([Atom(R, (A, B))])
        assert list(find_homomorphisms([], instance, seed={X: A})) == [{X: A}]

    def test_constant_in_pattern(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C))])
        atoms = [Atom(R, (A, Y))]
        assert substitution_set(find_homomorphisms(atoms, instance)) == substitution_set(
            find_homomorphisms_reference(atoms, instance)
        )

    def test_plan_reuse_across_seeds(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C)), Atom(R, (C, A))])
        atoms = (Atom(R, (X, Y)),)
        plan = compile_plan(atoms, (X,))
        assert compile_plan(atoms, (X,)) is plan
        for seed_term, expected in [(A, B), (B, C), (C, A)]:
            results = list(plan.enumerate(instance, {X: seed_term}))
            assert results == [{X: seed_term, Y: expected}]

    def test_plan_with_unused_bound_first_variable(self):
        # Delta plans seed variables that occur only in the forced atom;
        # they still travel through the slot array.
        plan = BodyPlan([Atom(S, (Y,))], bound_first={X, Y})
        instance = Instance([Atom(S, (B,))])
        assert list(plan.enumerate(instance, {X: A, Y: B})) == [{X: A, Y: B}]


class TestForcedAtomEquivalence:
    def test_forced_atom_basic(self):
        instance = Instance([Atom(R, (A, B)), Atom(R, (B, C)), Atom(S, (B,))])
        atoms = [Atom(R, (X, Y)), Atom(S, (Y,))]
        for index, forced in [(0, Atom(R, (A, B))), (1, Atom(S, (B,)))]:
            assert substitution_set(
                find_homomorphisms_with_forced_atom(atoms, instance, index, forced)
            ) == substitution_set(
                find_homomorphisms_with_forced_atom_reference(atoms, instance, index, forced)
            )

    def test_forced_atom_mismatch_yields_nothing(self):
        instance = Instance([Atom(R, (A, B))])
        atoms = [Atom(R, (X, X))]
        assert list(find_homomorphisms_with_forced_atom(atoms, instance, 0, Atom(R, (A, B)))) == []

    def test_forced_atom_single_atom_body(self):
        instance = Instance([Atom(R, (A, B))])
        atoms = [Atom(R, (X, Y))]
        results = list(find_homomorphisms_with_forced_atom(atoms, instance, 0, Atom(R, (A, B))))
        assert results == [{X: A, Y: B}]

    def test_forced_atom_not_in_instance(self):
        # The forced atom need not be part of the instance yet; only the
        # rest of the body is matched against the instance.
        instance = Instance([Atom(S, (C,))])
        atoms = [Atom(R, (X, Y)), Atom(S, (Z,))]
        results = substitution_set(
            find_homomorphisms_with_forced_atom(atoms, instance, 0, Atom(R, (A, B)))
        )
        assert results == {frozenset({(X, A), (Y, B), (Z, C)})}


class TestExtendHomomorphism:
    def test_witness_found_and_missing(self):
        instance = Instance([Atom(R, (A, B)), Atom(S, (B,))])
        assert extend_homomorphism([Atom(S, (Y,))], instance, {X: A, Y: B}) == {X: A, Y: B}
        assert extend_homomorphism([Atom(S, (Y,))], instance, {Y: A}) is None

    def test_existential_extension(self):
        instance = Instance([Atom(R, (A, B))])
        extension = extend_homomorphism([Atom(R, (X, Z))], instance, {X: A})
        assert extension is not None and extension[Z] == B


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "generator",
    [random_simple_linear_program, random_linear_program, random_guarded_program],
)
def test_randomized_program_equivalence(generator, seed):
    """Plan-based enumeration matches the reference on random programs."""
    tgds = generator(seed)
    database = random_database(tgds, seed=seed + 1000, fact_count=25, constant_count=4)
    instance = Instance(database)
    for tgd in tgds:
        expected = substitution_set(find_homomorphisms_reference(tgd.body, instance))
        assert substitution_set(find_homomorphisms(tgd.body, instance)) == expected
        for sub in expected:
            assert is_homomorphism(tgd.body, instance, dict(sub))
        # Forced-atom (delta) enumeration agrees for every body index
        # and every instance atom of the right predicate.
        for index, body_atom in enumerate(tgd.body):
            for forced in instance.atoms_with_predicate(body_atom.predicate):
                assert substitution_set(
                    find_homomorphisms_with_forced_atom(tgd.body, instance, index, forced)
                ) == substitution_set(
                    find_homomorphisms_with_forced_atom_reference(
                        tgd.body, instance, index, forced
                    )
                )
