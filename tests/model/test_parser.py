"""Unit tests for the concrete syntax and its round trip."""

import pytest

from repro.model.atoms import Predicate
from repro.model.parser import (
    ParseError,
    parse_atom,
    parse_database,
    parse_program,
    parse_tgd,
)
from repro.model.serialization import (
    database_to_text,
    program_to_text,
    tgd_to_text,
)
from repro.model.terms import Constant, Variable


class TestParseAtom:
    def test_fact_arguments_are_constants(self):
        fact = parse_atom("R(a, b)", as_fact=True)
        assert fact.predicate == Predicate("R", 2)
        assert fact.args == (Constant("a"), Constant("b"))

    def test_rule_arguments_are_variables(self):
        a = parse_atom("R(x, y)")
        assert a.args == (Variable("x"), Variable("y"))

    def test_zero_arity_atom(self):
        assert parse_atom("Halt()").predicate == Predicate("Halt", 0)

    def test_quoted_constant_in_rule_position_rejected_by_tgd(self):
        a = parse_atom('R("alice", x)')
        assert a.args[0] == Constant("alice")

    def test_malformed_atom(self):
        with pytest.raises(ParseError):
            parse_atom("R(a, b")
        with pytest.raises(ParseError):
            parse_atom("not an atom")


class TestParseTGD:
    def test_basic(self):
        tgd = parse_tgd("R(x, y) -> S(y, x)")
        assert len(tgd.body) == 1 and len(tgd.head) == 1
        assert tgd.is_full

    def test_exists_prefix(self):
        tgd = parse_tgd("R(x, y) -> exists z . S(y, z)")
        assert tgd.existential_variables() == {Variable("z")}

    def test_exists_prefix_must_match_head(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x, y) -> exists w . S(y, z)")

    def test_implicit_existentials(self):
        tgd = parse_tgd("R(x, y) -> S(y, z)")
        assert tgd.existential_variables() == {Variable("z")}

    def test_multi_atom_body_and_head(self):
        tgd = parse_tgd("R(x, y), P(x) -> S(y, z), P(y)")
        assert len(tgd.body) == 2 and len(tgd.head) == 2

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x, y), S(y, x)")

    def test_rule_id_is_respected(self):
        assert parse_tgd("R(x, y) -> S(y, x)", rule_id="myrule").rule_id == "myrule"


class TestParseProgramAndDatabase:
    def test_program(self):
        program = parse_program(
            """
            % a comment
            R(x, y) -> exists z . R(y, z)
            R(x, y) -> P(x, y)
            """
        )
        assert len(program) == 2

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("% nothing here")

    def test_database(self):
        database = parse_database(
            """
            R(a, b).
            R(b, c)
            # comment
            P(a).
            """
        )
        assert len(database) == 3

    def test_program_round_trip(self):
        program = parse_program("R(x, y), P(x) -> exists z . S(y, z)\nS(x, y) -> P(x)")
        reparsed = parse_program(program_to_text(program))
        assert [str(t) for t in reparsed] == [str(t) for t in program]

    def test_database_round_trip(self):
        database = parse_database("R(a, b).\nP(a).")
        assert parse_database(database_to_text(database)) == database

    def test_tgd_round_trip(self):
        tgd = parse_tgd("R(x, x) -> exists z . R(z, x)")
        assert str(parse_tgd(tgd_to_text(tgd))) == str(tgd)
