"""Result cache for chase jobs: in-memory, with optional JSONL spill.

Entries are keyed by ``(program fingerprint, database fingerprint,
variant, deterministic budget fields)`` — see :func:`result_cache_key`.
Because fingerprints are canonical (order- and renaming-invariant,
:mod:`repro.runtime.jobs`), isomorphic submissions share entries.

A hit replays the stored :meth:`ChaseResult.summary` verbatim, so a
cached result is byte-identical to the cold run that produced it once
serialised with ``json.dumps(..., sort_keys=True)``.  Only
deterministic outcomes are stored: the executor refuses to cache
``TIME_BUDGET_EXCEEDED`` runs (wall-clock budgets are an execution
detail, which is also why ``max_seconds`` is not part of the key).

The cache is built to be held open by a long-running process (the
chase service daemon, :mod:`repro.service`):

* every persisted entry carries a ``schema_version`` stamp; loading a
  JSONL written by a different summary schema skips those lines with a
  warning instead of replaying stale summaries,
* an optional ``max_entries`` cap turns the in-memory store into an
  LRU (both hits and stores refresh recency), so the daemon's memory
  stays bounded across arbitrarily many runs, and
* all operations take an internal lock, so the daemon's worker threads
  can share one instance.

Eviction is an in-memory affair: the JSONL spill stays append-only in
normal operation, so a crash mid-append costs at most the line being
written.  :meth:`compact` is the one in-place rewrite; it saves the
merged content to a ``.compacting`` sidecar first, so even a kill
between its truncate and write leaves a full copy to restore from.
"""

from __future__ import annotations

import base64
import json
import threading
import warnings
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # POSIX advisory locks guard the shared spill across processes
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


@contextmanager
def _flocked(handle):
    """Exclusive advisory lock on an open file (no-op without fcntl).

    Flushes the handle before unlocking: Python buffers writes in the
    TextIOWrapper, and releasing the lock with the mutation still in
    the buffer would let another locker observe the file mid-rewrite.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        handle.flush()
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield
    finally:
        handle.flush()
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

from repro.chase.engine import ChaseBudget
from repro.runtime.faults import FaultError, get_injector
from repro.runtime.jobs import ChaseJob

#: Separator between a spill line's JSON payload and its checksum.
#: Chosen so it can never appear inside the JSON (tabs are escaped).
_CRC_TOKEN = "\tcrc32="


def _encode_spill_line(entry: "CacheEntry") -> str:
    """One spill line: canonical JSON plus a CRC32 of those bytes.

    The checksum detects *partial* corruption — a line that is valid
    JSON but was bit-flipped or truncated-and-rejoined on disk would
    otherwise replay a wrong summary as if it were authoritative.
    """
    text = json.dumps(entry.as_dict(), sort_keys=True)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{text}{_CRC_TOKEN}{crc:08x}\n"


def _decode_spill_line(line: str) -> Tuple[Optional[Dict[str, object]], str]:
    """Decode one spill line; returns ``(record, status)``.

    ``status`` is ``"ok"``, ``"crc_mismatch"`` (checksum present but
    wrong — the payload is *not* returned), or ``"corrupt"`` (not
    parseable at all).  Lines without a checksum (written by older
    builds) decode normally: the CRC is an integrity upgrade, not a
    format break.
    """
    payload = line
    if _CRC_TOKEN in line:
        payload, _, stamp = line.rpartition(_CRC_TOKEN)
        try:
            expected = int(stamp, 16)
        except ValueError:
            return None, "corrupt"
        if (zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF) != expected:
            return None, "crc_mismatch"
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None, "corrupt"
    if not isinstance(record, dict):
        return None, "corrupt"
    return record, "ok"

#: Version stamp of the persisted entry format *and* of the summary
#: payload inside it.  Bump whenever ``ChaseResult.summary()`` (or the
#: cache key composition) changes shape, so a daemon never replays
#: summaries produced by an incompatible build.  Version 2 introduced
#: the stamp itself: files from before it carry no version and are
#: treated as stale.  Version 3 added the optional store-snapshot
#: payload (``snapshot``/``database``/``lineage``) behind incremental
#: re-chase.
SCHEMA_VERSION = 3


def result_cache_key(job: ChaseJob, budget: ChaseBudget) -> str:
    """The cache key for ``job`` run under the resolved ``budget``.

    ``max_seconds`` is deliberately excluded: it cannot change a
    *stored* (deterministic) result, it only decides whether a result
    gets produced at all.
    """
    pfp, dfp = job.fingerprint
    depth = "-" if budget.max_depth is None else str(budget.max_depth)
    return (
        f"{pfp}:{dfp}:{job.variant}"
        f":a{budget.max_atoms}:r{budget.max_rounds}:d{depth}"
        f":t{int(budget.truncate_at_depth)}"
    )


def lineage_cache_key(job: ChaseJob) -> str:
    """The *lineage* key: everything of the cache key except the data.

    Two jobs share a lineage when they run the same program under the
    same variant and the same budget *policy* — i.e. when one could be
    "the previous job plus a database delta" of the other.  The
    database fingerprint is deliberately absent (the data is what the
    delta changes), and so are resolved budget numbers for ``auto`` /
    ``default`` modes, because paper-derived budgets scale with the
    database size and must be re-resolved for the grown job.  Explicit
    budgets stay part of the identity verbatim.
    """
    pfp, _ = job.fingerprint
    if job.budget_mode == "explicit" and job.budget is not None:
        budget = job.budget
        depth = "-" if budget.max_depth is None else str(budget.max_depth)
        budget_part = (
            f"explicit:a{budget.max_atoms}:r{budget.max_rounds}:d{depth}"
            f":t{int(budget.truncate_at_depth)}"
        )
    else:
        budget_part = job.budget_mode
    return f"{pfp}:{job.variant}:{budget_part}"


@dataclass
class CacheEntry:
    """One stored result: the summary and (optionally) the instance.

    ``snapshot``/``database_lines``/``lineage`` travel together: an
    incremental-capable entry additionally holds the terminated run's
    fact-store snapshot, the fact lines of the database it was chased
    from (the subset check of "previous job + delta"), and its lineage
    key (how the executor finds it without knowing the old database).
    The snapshot is raw bytes in memory and base64 in the JSONL spill.
    """

    key: str
    summary: Dict[str, object]
    instance_text: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    snapshot: Optional[bytes] = None
    database_lines: Optional[List[str]] = None
    lineage: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "key": self.key,
            "summary": self.summary,
            "instance": self.instance_text,
            "schema_version": self.schema_version,
        }
        if self.snapshot is not None:
            record["snapshot"] = base64.b64encode(self.snapshot).decode("ascii")
            record["database"] = self.database_lines
            record["lineage"] = self.lineage
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "CacheEntry":
        """Build an entry from a decoded JSONL record (current schema)."""
        snapshot_b64 = record.get("snapshot")
        return cls(
            key=record["key"],  # type: ignore[arg-type]
            summary=record["summary"],  # type: ignore[arg-type]
            instance_text=record.get("instance"),  # type: ignore[arg-type]
            schema_version=record.get("schema_version", SCHEMA_VERSION),  # type: ignore[arg-type]
            snapshot=(
                base64.b64decode(snapshot_b64) if isinstance(snapshot_b64, str) else None
            ),
            database_lines=record.get("database"),  # type: ignore[arg-type]
            lineage=record.get("lineage"),  # type: ignore[arg-type]
        )


class ResultCache:
    """Thread-safe LRU cache with an optional append-only JSONL behind it.

    With a ``path`` the cache loads existing entries on construction
    and appends every store, so separate processes (or separate batch
    invocations) can share results through the file.  With
    ``max_entries`` the in-memory store evicts its least-recently-used
    entry once full — the bound a long-running daemon needs.
    """

    def __init__(
        self,
        path: Optional[str | Path] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        # lineage key -> cache key of the freshest snapshot-bearing
        # entry of that lineage (the incremental re-chase base).
        self._lineage: Dict[str, str] = {}
        self._lock = threading.RLock()
        # Optional TraceRecorder (set by the owning service/executor):
        # put()/compact() emit "cache.write"/"cache.compact" spans.
        self.tracer = None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.version_skipped = 0
        #: Corrupt final spill line seen at load (a crash mid-append).
        self.torn_lines = 0
        #: Spill lines whose CRC32 did not match their payload.
        self.crc_mismatches = 0
        #: True once a spill write failed: the cache keeps serving (and
        #: storing) from memory but stops touching the file.
        self.degraded = False
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        stale_versions: set = set()
        # Read under the same advisory lock compact() holds while
        # truncate-rewriting in place, so a reader can never observe a
        # half-rewritten file.
        sidecar = self.path.with_suffix(self.path.suffix + ".compacting")
        with self.path.open("a+") as handle, _flocked(handle):
            handle.seek(0)
            text = handle.read()
            if sidecar.exists():
                # compact() removes its sidecar inside the locked
                # region on success, so one existing here means a
                # crash interrupted the rewrite: the sidecar holds the
                # complete pre-crash merged content.  The main file
                # may additionally hold lines another process appended
                # *after* the crash (the kernel released the dead
                # holder's flock); keep both, sidecar first so the
                # newer appends win on key conflicts at parse time.
                text = sidecar.read_text() + text
                handle.seek(0)
                handle.truncate()
                handle.write(text)
                handle.flush()
                sidecar.unlink()
        lines = [stripped for stripped in (l.strip() for l in text.splitlines()) if stripped]
        for index, line in enumerate(lines):
            record, verdict = _decode_spill_line(line)
            if verdict == "crc_mismatch":
                self.crc_mismatches += 1
                warnings.warn(
                    f"{self.path}: spill line {index + 1} failed its CRC32 check; "
                    "dropping the entry (it will be re-run, not replayed)",
                    stacklevel=2,
                )
                continue
            if record is None:
                if index == len(lines) - 1:
                    # A torn *trailing* line is the signature of a crash
                    # mid-append — say so instead of dropping it silently.
                    self.torn_lines += 1
                    warnings.warn(
                        f"{self.path}: dropped a torn trailing spill line "
                        "(likely a crash mid-append); run "
                        "`python -m repro cache verify --repair` to clean the file",
                        stacklevel=2,
                    )
                continue
            try:
                version = record.get("schema_version")
                if version != SCHEMA_VERSION:
                    # A file written by an older (or newer) build: its
                    # summaries may not match what today's runs produce,
                    # and replaying them would silently break the
                    # byte-identity guarantee.  Skip, don't crash.
                    self.version_skipped += 1
                    stale_versions.add(version)
                    continue
                entry = CacheEntry.from_record(record)
            except (
                KeyError,
                TypeError,
                AttributeError,
                ValueError,
                # base64 failures raise binascii.Error, a ValueError.
            ):
                # A structurally broken record costs one entry, not the
                # whole cache.
                continue
            # Later lines are more recent appends: inserting in file
            # order leaves the newest entries at the LRU's fresh end.
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            if entry.lineage is not None and entry.snapshot is not None:
                self._lineage[entry.lineage] = entry.key
            self._evict_over_cap()
        if self.version_skipped:
            warnings.warn(
                f"{self.path}: skipped {self.version_skipped} cache entr"
                f"{'y' if self.version_skipped == 1 else 'ies'} with schema version(s) "
                f"{sorted(stale_versions, key=repr)!r} (current is {SCHEMA_VERSION}); "
                "stale summaries are re-run, not replayed",
                stacklevel=2,
            )

    def _evict_over_cap(self) -> None:
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            key, entry = self._entries.popitem(last=False)
            if entry.lineage is not None and self._lineage.get(entry.lineage) == key:
                del self._lineage[entry.lineage]
            self.evictions += 1

    # -- mapping protocol -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator[CacheEntry]:
        with self._lock:
            return iter(list(self._entries.values()))

    # -- cache operations -------------------------------------------------

    def get(self, key: str, require_instance: bool = False) -> Optional[CacheEntry]:
        """Look up a key, counting the hit or miss and refreshing recency.

        With ``require_instance`` an entry stored without a
        materialised instance (by a non-materialising run) counts as a
        miss, so the caller re-runs and re-stores it with the instance.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or (require_instance and entry.instance_text is None):
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(
        self,
        key: str,
        summary: Dict[str, object],
        instance_text: Optional[str] = None,
        snapshot: Optional[bytes] = None,
        database_lines: Optional[Sequence[str]] = None,
        lineage: Optional[str] = None,
    ) -> CacheEntry:
        """Store a result, appending to the JSONL file when configured.

        ``snapshot``/``database_lines``/``lineage`` (all or none) make
        the entry an incremental re-chase base: :meth:`snapshot_for`
        serves the freshest such entry per lineage key.
        """
        tracer = self.tracer
        mark = tracer.now() if tracer is not None else 0.0
        entry = CacheEntry(
            key=key,
            summary=summary,
            instance_text=instance_text,
            snapshot=snapshot,
            database_lines=list(database_lines) if database_lines is not None else None,
            lineage=lineage,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if lineage is not None and snapshot is not None:
                self._lineage[lineage] = key
            self.stores += 1
            self._evict_over_cap()
        # Append outside the cache lock: blocking on another process's
        # flock (a long compact()) must stall only this store, not
        # every concurrent lookup.  O_APPEND + the flock keep lines
        # whole; duplicate keys from racing appends dedup on load.
        if self.path is not None and not self.degraded:
            try:
                get_injector().fire("cache.spill_write", key=key)
                with self.path.open("a") as handle, _flocked(handle):
                    handle.write(_encode_spill_line(entry))
            except (OSError, FaultError) as exc:
                # A failing spill (ENOSPC, permission loss, injected
                # fault) must not take job execution down with it: the
                # cache degrades to memory-only and stops touching the
                # file, keeping every in-memory guarantee intact.
                self.degraded = True
                warnings.warn(
                    f"{self.path}: spill write failed ({exc}); cache degraded to "
                    "memory-only for the rest of this process",
                    stacklevel=2,
                )
        if tracer is not None:
            tracer.add_span(
                "cache.write", mark, tracer.now(),
                args={"key": key, "spilled": self.path is not None},
            )
        return entry

    def compact(self) -> int:
        """Deduplicate the JSONL spill in place; returns the entry count.

        An append-only file accumulates superseded and stale-version
        lines; a long-running daemon calls this on drain so the next
        start loads only what is current.  The file is re-read and
        *merged* under an exclusive advisory lock (the same lock every
        ``put`` append takes): current-version entries appended by
        other processes sharing the file (and entries this process
        evicted from memory) are kept, with this process's in-memory
        state winning on key conflicts — compaction never deletes
        another writer's committed results.  The rewrite happens in
        place (same inode) so concurrent writers holding the path keep
        appending to the compacted file, not to a replaced orphan;
        before truncating, the merged content is written to a
        ``<path>.compacting`` sidecar, so a crash mid-rewrite leaves a
        complete copy to restore from (the sidecar is removed on
        success).
        """
        tracer = self.tracer
        mark = tracer.now() if tracer is not None else 0.0
        with self._lock:
            if self.path is None or self.degraded:
                # A degraded cache no longer owns its file: another
                # process may still be appending healthily, and a
                # rewrite from our (possibly stale) view could lose
                # its entries.
                return len(self._entries)
            with self.path.open("a+") as handle, _flocked(handle):
                handle.seek(0)
                merged: "OrderedDict[str, CacheEntry]" = OrderedDict()
                for line in handle.read().splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    record, verdict = _decode_spill_line(line)
                    if record is None:
                        continue
                    try:
                        if record.get("schema_version") != SCHEMA_VERSION:
                            continue
                        entry = CacheEntry.from_record(record)
                    except (
                        KeyError,
                        TypeError,
                        AttributeError,
                        ValueError,
                    ):
                        continue
                    merged[entry.key] = entry
                # Append the in-memory entries in LRU order (coldest
                # first) so a bounded reload keeps the hottest keys —
                # _load treats later lines as fresher.  pop-then-set
                # moves each key to the end.
                for key, entry in self._entries.items():
                    merged.pop(key, None)
                    merged[key] = entry
                content = "".join(
                    _encode_spill_line(entry) for entry in merged.values()
                )
                sidecar = self.path.with_suffix(self.path.suffix + ".compacting")
                sidecar.write_text(content)
                handle.seek(0)
                handle.truncate()
                handle.write(content)
                handle.flush()
                # Removed inside the locked region: a sidecar observed
                # by a lock holder therefore always means a crash, and
                # _load restores from it.
                sidecar.unlink(missing_ok=True)
            if tracer is not None:
                tracer.add_span(
                    "cache.compact", mark, tracer.now(),
                    args={"entries": len(merged)},
                )
            return len(merged)

    def snapshot_for(self, lineage: str) -> Optional[CacheEntry]:
        """The freshest snapshot-bearing entry of ``lineage``, if any.

        Counts as neither a hit nor a miss (it is a *base* lookup, not
        a result lookup), but refreshes the entry's LRU recency — a
        lineage in active incremental use should not be the first thing
        evicted.
        """
        with self._lock:
            key = self._lineage.get(lineage)
            if key is None:
                return None
            entry = self._entries.get(key)
            if entry is None or entry.snapshot is None:
                del self._lineage[lineage]
                return None
            self._entries.move_to_end(key)
            return entry

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "version_skipped": self.version_skipped,
                "torn_lines": self.torn_lines,
                "crc_mismatches": self.crc_mismatches,
                "degraded": int(self.degraded),
            }


def verify_spill(path: str | Path, repair: bool = False) -> Dict[str, int]:
    """Audit (and optionally repair) a spill file's line integrity.

    Classifies every line as ``ok`` (parseable, checksum valid when
    present), ``unchecksummed`` (healthy line from a build predating
    the CRC stamp), ``crc_mismatch``, ``torn`` (unparseable final
    line), or ``corrupt`` (unparseable elsewhere).  Schema-stale lines
    count as ``stale_version`` but are kept: an older build may still
    be using the file.

    With ``repair=True`` the file is rewritten in place under the same
    advisory lock every ``put`` takes, keeping only the healthy lines
    and re-stamping all of them with checksums.  The rewrite reuses the
    ``.compacting`` sidecar protocol, so a crash mid-repair is restored
    by the next :class:`ResultCache` load.
    """
    target = Path(path)
    report = {
        "lines": 0, "ok": 0, "unchecksummed": 0, "crc_mismatch": 0,
        "torn": 0, "corrupt": 0, "stale_version": 0, "repaired": 0,
    }
    if not target.exists():
        return report
    with target.open("a+") as handle, _flocked(handle):
        handle.seek(0)
        lines = [s for s in (l.strip() for l in handle.read().splitlines()) if s]
        report["lines"] = len(lines)
        kept: List[str] = []
        restamped = 0
        for index, line in enumerate(lines):
            record, verdict = _decode_spill_line(line)
            if record is None:
                if verdict == "crc_mismatch":
                    report["crc_mismatch"] += 1
                elif index == len(lines) - 1:
                    report["torn"] += 1
                else:
                    report["corrupt"] += 1
                continue
            stale = record.get("schema_version") != SCHEMA_VERSION
            if stale:
                report["stale_version"] += 1
            elif _CRC_TOKEN in line:
                report["ok"] += 1
            else:
                report["unchecksummed"] += 1
            if _CRC_TOKEN in line:
                kept.append(line)
            else:
                restamped += 1
                kept.append(_restamp(line))
        damaged = report["crc_mismatch"] + report["torn"] + report["corrupt"]
        needs_rewrite = bool(damaged or restamped)
        if repair and needs_rewrite:
            content = "".join(line + "\n" for line in kept)
            sidecar = target.with_suffix(target.suffix + ".compacting")
            sidecar.write_text(content)
            handle.seek(0)
            handle.truncate()
            handle.write(content)
            handle.flush()
            sidecar.unlink(missing_ok=True)
            report["repaired"] = 1
    return report


def _restamp(payload: str) -> str:
    """Stamp a checksum onto a legacy (unchecksummed) spill line."""
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{payload}{_CRC_TOKEN}{crc:08x}"
