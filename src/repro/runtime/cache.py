"""Result cache for chase jobs: in-memory, with optional JSONL spill.

Entries are keyed by ``(program fingerprint, database fingerprint,
variant, deterministic budget fields)`` — see :func:`result_cache_key`.
Because fingerprints are canonical (order- and renaming-invariant,
:mod:`repro.runtime.jobs`), isomorphic submissions share entries.

A hit replays the stored :meth:`ChaseResult.summary` verbatim, so a
cached result is byte-identical to the cold run that produced it once
serialised with ``json.dumps(..., sort_keys=True)``.  Only
deterministic outcomes are stored: the executor refuses to cache
``TIME_BUDGET_EXCEEDED`` runs (wall-clock budgets are an execution
detail, which is also why ``max_seconds`` is not part of the key).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.chase.engine import ChaseBudget
from repro.runtime.jobs import ChaseJob


def result_cache_key(job: ChaseJob, budget: ChaseBudget) -> str:
    """The cache key for ``job`` run under the resolved ``budget``.

    ``max_seconds`` is deliberately excluded: it cannot change a
    *stored* (deterministic) result, it only decides whether a result
    gets produced at all.
    """
    pfp, dfp = job.fingerprint
    depth = "-" if budget.max_depth is None else str(budget.max_depth)
    return (
        f"{pfp}:{dfp}:{job.variant}"
        f":a{budget.max_atoms}:r{budget.max_rounds}:d{depth}"
        f":t{int(budget.truncate_at_depth)}"
    )


@dataclass
class CacheEntry:
    """One stored result: the summary and (optionally) the instance."""

    key: str
    summary: Dict[str, object]
    instance_text: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {"key": self.key, "summary": self.summary, "instance": self.instance_text}


class ResultCache:
    """In-memory cache with an optional append-only JSONL file behind it.

    With a ``path`` the cache loads existing entries on construction
    and appends every store, so separate processes (or separate batch
    invocations) can share results through the file.
    """

    def __init__(self, path: Optional[str | Path] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                entry = CacheEntry(
                    key=record["key"],
                    summary=record["summary"],
                    instance_text=record.get("instance"),
                )
            except (json.JSONDecodeError, KeyError, TypeError):
                # A truncated or corrupt line (e.g. the process died
                # mid-append) costs one entry, not the whole cache.
                continue
            self._entries[entry.key] = entry

    # -- mapping protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    # -- cache operations -------------------------------------------------

    def get(self, key: str, require_instance: bool = False) -> Optional[CacheEntry]:
        """Look up a key, counting the hit or miss.

        With ``require_instance`` an entry stored without a
        materialised instance (by a non-materialising run) counts as a
        miss, so the caller re-runs and re-stores it with the instance.
        """
        entry = self._entries.get(key)
        if entry is None or (require_instance and entry.instance_text is None):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        key: str,
        summary: Dict[str, object],
        instance_text: Optional[str] = None,
    ) -> CacheEntry:
        """Store a result, appending to the JSONL file when configured."""
        entry = CacheEntry(key=key, summary=summary, instance_text=instance_text)
        self._entries[key] = entry
        self.stores += 1
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(json.dumps(entry.as_dict(), sort_keys=True) + "\n")
        return entry

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
