"""Declarative chase jobs and canonical content fingerprints.

A :class:`ChaseJob` is the runtime's unit of work: a program, a
database, a chase variant, and a budget policy hint.  Jobs are what the
batch executor schedules, what the result cache keys on, and what the
``python -m repro batch`` manifest format describes.

Fingerprints are SHA-256 hashes of the canonical serialisations from
:mod:`repro.model.serialization`, so they are invariant under rule and
fact reordering, rule-identifier changes, per-rule variable renamings
and labelled-null relabellings.  Two users submitting the same ontology
written in a different order therefore share cache entries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget
from repro.model.instance import Database, Instance
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import (
    atom_to_text,
    canonical_instance_text,
    canonical_program_text,
    database_fact_lines,
    database_to_text,
    program_to_text,
)
from repro.model.store import FactStore
from repro.model.tgd import TGDSet

#: Chase variants a job may request (CLI spelling), derived from the
#: single runner registry in :mod:`repro.chase`.
VARIANTS: Tuple[str, ...] = tuple(VARIANT_RUNNERS)

#: Budget modes: derive from the paper's bounds, use the job's explicit
#: budget, or fall back to the engine default.
BUDGET_MODES: Tuple[str, ...] = ("auto", "explicit", "default")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_fingerprint(program: TGDSet) -> str:
    """Content fingerprint of a program (order- and renaming-invariant)."""
    return _sha256(canonical_program_text(program))


def database_fingerprint(database: Instance) -> str:
    """Content fingerprint of a database or instance (order- and
    null-renaming-invariant)."""
    return _sha256(canonical_instance_text(database))


def encode_database_snapshot(database: Instance) -> bytes:
    """Pack a database into fact-store snapshot bytes.

    This is what the batch executor ships to worker processes instead
    of database text: the worker restores the store and starts chasing
    without parsing or re-interning anything.  Facts are interned in
    sorted text order — the same order :func:`parse_database` yields —
    so a snapshot-seeded run assigns the same dense ids (and hence
    considers triggers in the same order) as a text-shipped one.
    """
    store = FactStore()
    for atom in sorted(database, key=atom_to_text):
        store.add_atom(atom)
    return store.snapshot()


@dataclass
class ChaseJob:
    """One unit of batch work: chase ``database`` with ``program``.

    Attributes
    ----------
    program / database:
        The input pair.
    variant:
        One of :data:`VARIANTS`.
    budget_mode:
        ``"auto"`` lets the budget policy derive limits from the
        paper's bounds, ``"explicit"`` uses :attr:`budget` verbatim,
        ``"default"`` takes the policy's default budget.
    budget:
        The explicit budget (required when ``budget_mode="explicit"``).
    timeout_seconds:
        Per-job wall-clock limit, merged into the resolved budget's
        ``max_seconds`` by the executor.
    tags:
        Free-form labels (workload family, expected behaviour) carried
        into results for reporting.
    """

    program: TGDSet
    database: Database
    job_id: str = ""
    variant: str = "semi-oblivious"
    budget_mode: str = "auto"
    budget: Optional[ChaseBudget] = None
    timeout_seconds: Optional[float] = None
    tags: Tuple[str, ...] = ()
    _fingerprint: Optional[Tuple[str, str]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _database_snapshot: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )
    _database_lines: Optional[Tuple[str, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}, expected one of {VARIANTS}")
        if self.budget_mode not in BUDGET_MODES:
            raise ValueError(
                f"unknown budget mode {self.budget_mode!r}, expected one of {BUDGET_MODES}"
            )
        if self.budget_mode == "explicit" and self.budget is None:
            raise ValueError("budget_mode='explicit' requires a budget")
        if not self.job_id:
            pfp, dfp = self.fingerprint
            self.job_id = f"job-{pfp[:8]}-{dfp[:8]}"

    @property
    def fingerprint(self) -> Tuple[str, str]:
        """``(program fingerprint, database fingerprint)``, computed once."""
        if self._fingerprint is None:
            self._fingerprint = (
                program_fingerprint(self.program),
                database_fingerprint(self.database),
            )
        return self._fingerprint

    @property
    def database_snapshot(self) -> bytes:
        """The database as snapshot bytes, encoded once per job.

        Retries and dedup re-runs of the same job reuse the cached
        encoding, and :meth:`share_database_snapshot` lets a scheduler
        hand it to an identical job so a whole dedup burst encodes the
        store exactly once.
        """
        if self._database_snapshot is None:
            self._database_snapshot = encode_database_snapshot(self.database)
        return self._database_snapshot

    @property
    def database_lines(self) -> Tuple[str, ...]:
        """The database's sorted fact lines, rendered once per job.

        The incremental executor needs them twice per cache-missed job
        (the superset check against a cached base, and the cache store
        of the run's own snapshot); rendering is O(n log n) text work,
        so it is cached like :attr:`database_snapshot`.
        """
        if self._database_lines is None:
            self._database_lines = database_fact_lines(self.database)
        return self._database_lines

    def share_database_snapshot(self, other: "ChaseJob") -> None:
        """Give ``other`` (an identical-content job) this job's cached
        snapshot encoding, if one exists and ``other`` has none."""
        if self._database_snapshot is not None and other._database_snapshot is None:
            other._database_snapshot = self._database_snapshot


# --------------------------------------------------------------------------
# JSONL manifests
# --------------------------------------------------------------------------
#
# One job per line.  Programs and databases are given either inline
# (``"program"`` / ``"database"`` keys holding the rule/fact text) or
# as paths (``"rules"`` / ``"facts"``) resolved relative to the
# manifest file.  ``"budget"`` is ``"auto"``, ``"default"``, or an
# object of :class:`ChaseBudget` fields (implying ``explicit``).


def job_from_manifest_entry(entry: Dict[str, object], base_dir: Path = Path(".")) -> ChaseJob:
    """Build a :class:`ChaseJob` from one decoded manifest line."""
    if "program" in entry:
        program = parse_program(str(entry["program"]), name=str(entry.get("id", "Sigma")))
    elif "rules" in entry:
        path = base_dir / str(entry["rules"])
        program = parse_program(path.read_text(), name=path.stem)
    else:
        raise ValueError(f"manifest entry needs 'program' or 'rules': {entry!r}")
    if "database" in entry:
        database = parse_database(str(entry["database"]))
    elif "facts" in entry:
        database = parse_database((base_dir / str(entry["facts"])).read_text())
    else:
        raise ValueError(f"manifest entry needs 'database' or 'facts': {entry!r}")
    budget_spec = entry.get("budget", "auto")
    budget: Optional[ChaseBudget] = None
    if isinstance(budget_spec, dict):
        budget_mode = "explicit"
        budget = ChaseBudget(**budget_spec)
    elif budget_spec in ("auto", "default"):
        budget_mode = str(budget_spec)
    else:
        raise ValueError(f"unsupported budget spec {budget_spec!r}")
    timeout = entry.get("timeout_seconds")
    return ChaseJob(
        program=program,
        database=database,
        job_id=str(entry.get("id", "")),
        variant=str(entry.get("variant", "semi-oblivious")),
        budget_mode=budget_mode,
        budget=budget,
        timeout_seconds=float(timeout) if timeout is not None else None,
        tags=tuple(entry.get("tags", ())),
    )


def manifest_entry(job: ChaseJob) -> Dict[str, object]:
    """The inline-text manifest line describing ``job`` (round-trips
    through :func:`job_from_manifest_entry` up to rule identifiers)."""
    entry: Dict[str, object] = {
        "id": job.job_id,
        "program": program_to_text(job.program),
        "database": database_to_text(job.database),
        "variant": job.variant,
    }
    if job.budget_mode == "explicit" and job.budget is not None:
        entry["budget"] = job.budget.as_dict()
    else:
        entry["budget"] = job.budget_mode
    if job.timeout_seconds is not None:
        entry["timeout_seconds"] = job.timeout_seconds
    if job.tags:
        entry["tags"] = list(job.tags)
    return entry


@dataclass(frozen=True)
class ManifestError:
    """A manifest line that could not be turned into a job."""

    job_id: str
    line_number: int
    error: str


def read_manifest(path: str | Path) -> List[ChaseJob]:
    """Read a JSONL manifest, raising on the first bad line; relative
    rule/fact paths resolve against the manifest's directory."""
    jobs: List[ChaseJob] = []
    for item in read_manifest_lenient(path):
        if isinstance(item, ManifestError):
            raise ValueError(f"{path}:{item.line_number}: {item.error}")
        jobs.append(item)
    return jobs


def parse_manifest_text(
    text: str,
    base_dir: Path = Path("."),
    entry_parser: Optional[Callable[[Dict[str, object]], ChaseJob]] = None,
) -> List[object]:
    """Parse JSONL manifest text, turning bad lines into :class:`ManifestError`.

    One malformed job must not sink the rest of the batch.  The shared
    line loop behind both :func:`read_manifest_lenient` (the CLI) and
    the service daemon's ``POST /batches`` handler, which passes an
    ``entry_parser`` restricting entries to inline text.
    """
    if entry_parser is None:
        def entry_parser(entry: Dict[str, object]) -> ChaseJob:
            return job_from_manifest_entry(entry, base_dir=base_dir)

    items: List[object] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        job_id = f"line-{line_number}"
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            items.append(ManifestError(job_id, line_number, f"invalid JSON: {exc}"))
            continue
        if isinstance(entry, dict) and entry.get("id"):
            job_id = str(entry["id"])
        try:
            items.append(entry_parser(entry))
        except Exception as exc:  # noqa: BLE001 - any bad entry becomes an error row
            items.append(
                ManifestError(job_id, line_number, f"{type(exc).__name__}: {exc}")
            )
    return items


def read_manifest_lenient(path: str | Path) -> List[object]:
    """Read a JSONL manifest file leniently; relative rule/fact paths
    resolve against the manifest's directory."""
    path = Path(path)
    return parse_manifest_text(path.read_text(), base_dir=path.parent)


def write_manifest(jobs: Iterable[ChaseJob], path: str | Path) -> None:
    """Write jobs as an inline-text JSONL manifest."""
    lines = [json.dumps(manifest_entry(job), sort_keys=True) for job in jobs]
    Path(path).write_text("\n".join(lines) + "\n")
