"""Paper-derived auto-budgets for chase jobs.

The engine's default budget (one million atoms) is a blunt instrument:
it lets provably non-terminating runs burn through a million atoms
before stopping, and it tells a caller nothing about *why* a run was
cut off.  The paper does better: for ``Σ ∈ C ∩ CT_D`` with
``C ∈ {SL, L, G}``,

* ``maxdepth(D, Σ) ≤ d_C(Σ)``  (Lemmas 6.2 / 7.4 / 8.2), and
* ``|chase(D, Σ)| ≤ |D| · f_C(Σ)``  (Theorems 6.4 / 7.5 / 8.3).

So for a classified set the budget policy sets ``max_depth = d_C(Σ)``
and, when it fits under a practical cap, ``max_atoms = |D| · f_C(Σ)``.
On terminating inputs these budgets are *never* hit — the bounds are
theorems — while non-terminating runs trip the depth budget as soon as
a null deeper than ``d_C(Σ)`` appears, typically after a handful of
rounds instead of a million atoms.  For guarded sets the bounds are
astronomically large (the paper's point about the naive decision
procedure), so they are used only when they fit the caps; unclassified
sets fall back to the explicit or default budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.chase.engine import ChaseBudget
from repro.core.bounds import depth_bound, magnitude, size_bound_within
from repro.core.classify import TGDClass, classify
from repro.model.tgd import TGDSet

#: Size-bound values above this never become ``max_atoms``.
DEFAULT_ATOM_CAP = 5_000_000

#: Depth-bound values above this never become ``max_depth`` (a depth
#: budget of ``2^100`` would be dead weight in every pickled payload).
DEFAULT_DEPTH_CAP = 1_000_000


@dataclass(frozen=True)
class BudgetDecision:
    """A resolved budget plus the provenance of every limit in it."""

    budget: ChaseBudget
    tgd_class: TGDClass
    source: str  # "explicit" | "paper-bound" | "default"
    max_atoms_source: str  # "explicit" | "size-bound" | "default"
    max_depth_source: str  # "explicit" | "depth-bound" | "unset"
    depth_bound_magnitude: Optional[str] = None
    size_bound_magnitude: Optional[str] = None

    def provenance(self) -> Dict[str, object]:
        """JSON-friendly provenance record carried into job results."""
        return {
            "class": self.tgd_class.value,
            "source": self.source,
            "max_atoms": {"value": self.budget.max_atoms, "from": self.max_atoms_source},
            "max_depth": {"value": self.budget.max_depth, "from": self.max_depth_source},
            "depth_bound": self.depth_bound_magnitude,
            "size_bound": self.size_bound_magnitude,
        }


@dataclass(frozen=True)
class BudgetPolicy:
    """Derives a :class:`ChaseBudget` for a job from the paper's bounds.

    ``derive`` implements the ``auto`` mode; :meth:`resolve` dispatches
    on a job's ``budget_mode`` (``auto`` / ``explicit`` / ``default``).
    """

    default: ChaseBudget = field(default_factory=ChaseBudget)
    atom_cap: int = DEFAULT_ATOM_CAP
    depth_cap: int = DEFAULT_DEPTH_CAP

    def derive(
        self,
        program: TGDSet,
        database_size: int,
        tgd_class: Optional[TGDClass] = None,
    ) -> BudgetDecision:
        """Auto-budget: classify Σ and bound the run by ``d_C``/``f_C``."""
        tgd_class = tgd_class or classify(program)
        if not tgd_class.has_paper_bounds:
            return BudgetDecision(
                budget=self.default,
                tgd_class=tgd_class,
                source="default",
                max_atoms_source="default",
                max_depth_source="explicit" if self.default.max_depth is not None else "unset",
            )
        depth = depth_bound(program, tgd_class)
        size = size_bound_within(database_size, program, self.atom_cap, tgd_class)
        max_atoms = size if size is not None else self.default.max_atoms
        use_depth = depth <= self.depth_cap
        max_depth = depth if use_depth else self.default.max_depth
        budget = self.default.replace(max_atoms=max_atoms, max_depth=max_depth)
        paper_derived = size is not None or use_depth
        return BudgetDecision(
            budget=budget,
            tgd_class=tgd_class,
            source="paper-bound" if paper_derived else "default",
            max_atoms_source="size-bound" if size is not None else "default",
            max_depth_source=(
                "depth-bound"
                if use_depth
                else ("explicit" if self.default.max_depth is not None else "unset")
            ),
            depth_bound_magnitude=magnitude(depth),
            size_bound_magnitude=magnitude(size) if size is not None else "over-cap",
        )

    def resolve(
        self,
        program: TGDSet,
        database_size: int,
        budget_mode: str = "auto",
        explicit: Optional[ChaseBudget] = None,
    ) -> BudgetDecision:
        """Resolve a job's budget according to its ``budget_mode``."""
        if budget_mode == "explicit":
            if explicit is None:
                raise ValueError("budget_mode='explicit' requires a budget")
            return BudgetDecision(
                budget=explicit,
                tgd_class=classify(program),
                source="explicit",
                max_atoms_source="explicit",
                max_depth_source="explicit" if explicit.max_depth is not None else "unset",
            )
        if budget_mode == "default":
            return BudgetDecision(
                budget=self.default,
                tgd_class=classify(program),
                source="default",
                max_atoms_source="default",
                max_depth_source="explicit" if self.default.max_depth is not None else "unset",
            )
        if budget_mode == "auto":
            return self.derive(program, database_size)
        raise ValueError(f"unknown budget mode {budget_mode!r}")
