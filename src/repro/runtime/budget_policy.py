"""Paper-derived auto-budgets for chase jobs.

The engine's default budget (one million atoms) is a blunt instrument:
it lets provably non-terminating runs burn through a million atoms
before stopping, and it tells a caller nothing about *why* a run was
cut off.  The paper does better: for ``Σ ∈ C ∩ CT_D`` with
``C ∈ {SL, L, G}``,

* ``maxdepth(D, Σ) ≤ d_C(Σ)``  (Lemmas 6.2 / 7.4 / 8.2), and
* ``|chase(D, Σ)| ≤ |D| · f_C(Σ)``  (Theorems 6.4 / 7.5 / 8.3).

So for a classified set the budget policy sets ``max_depth = d_C(Σ)``
and, when it fits under a practical cap, ``max_atoms = |D| · f_C(Σ)``.
On terminating inputs these budgets are *never* hit — the bounds are
theorems — while non-terminating runs trip the depth budget as soon as
a null deeper than ``d_C(Σ)`` appears, typically after a handful of
rounds instead of a million atoms.  For guarded sets the bounds are
astronomically large (the paper's point about the naive decision
procedure), so they are used only when they fit the caps; unclassified
sets fall back to the explicit or default budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.chase.engine import ChaseBudget
from repro.core.bounds import depth_bound, magnitude, size_bound_within
from repro.core.classify import TGDClass, classify
from repro.core.termination_analysis import (
    DIVERGING,
    TERMINATING,
    TerminationAnalyzer,
    TerminationReport,
)
from repro.model.instance import Database
from repro.model.tgd import TGDSet

#: Size-bound values above this never become ``max_atoms``.
DEFAULT_ATOM_CAP = 5_000_000

#: Depth-bound values above this never become ``max_depth`` (a depth
#: budget of ``2^100`` would be dead weight in every pickled payload).
DEFAULT_DEPTH_CAP = 1_000_000

#: The budget handed to provably diverging jobs by an analysis-aware
#: policy: enough atoms to produce a meaningful budget-stop row, a
#: fraction of the default million-atom burn.
DEFAULT_DIVERGING_CLAMP = ChaseBudget(max_atoms=50_000, max_rounds=5_000)


def _min_cap(current: Optional[int], cap: Optional[int]) -> Optional[int]:
    """The tighter of two optional limits (``None`` means unlimited)."""
    if current is None:
        return cap
    if cap is None:
        return current
    return min(current, cap)


@dataclass(frozen=True)
class BudgetDecision:
    """A resolved budget plus the provenance of every limit in it."""

    budget: ChaseBudget
    tgd_class: TGDClass
    source: str  # "explicit" | "paper-bound" | "default" | "analysis" | "analysis-clamp"
    max_atoms_source: str  # "explicit" | "size-bound" | "default" | "analysis-clamp"
    max_depth_source: str  # "explicit" | "depth-bound" | "analysis-depth-bound" | "unset"
    depth_bound_magnitude: Optional[str] = None
    size_bound_magnitude: Optional[str] = None
    #: Static termination verdict, set only by an analysis-aware policy
    #: (:class:`BudgetPolicy` with an ``analyzer``); ``None`` on the
    #: default path so provenance stays byte-identical to the seed.
    verdict: Optional[str] = None
    verdict_method: Optional[str] = None

    def provenance(self) -> Dict[str, object]:
        """JSON-friendly provenance record carried into job results."""
        record: Dict[str, object] = {
            "class": self.tgd_class.value,
            "source": self.source,
            "max_atoms": {"value": self.budget.max_atoms, "from": self.max_atoms_source},
            "max_depth": {"value": self.budget.max_depth, "from": self.max_depth_source},
            "depth_bound": self.depth_bound_magnitude,
            "size_bound": self.size_bound_magnitude,
        }
        if self.verdict is not None:
            record["verdict"] = {"value": self.verdict, "method": self.verdict_method}
        return record


@dataclass(frozen=True)
class BudgetPolicy:
    """Derives a :class:`ChaseBudget` for a job from the paper's bounds.

    ``derive`` implements the ``auto`` mode; :meth:`resolve` dispatches
    on a job's ``budget_mode`` (``auto`` / ``explicit`` / ``default``).

    Passing an ``analyzer`` opts the policy into static termination
    analysis (:mod:`repro.core.termination_analysis`): provably
    diverging jobs get the ``diverging_clamp`` budget instead of
    burning the default million atoms, provably terminating arbitrary
    sets gain the analysis-derived ``max_depth``, and every decision
    carries the verdict so the executor can lift its per-job wall
    ceiling for guaranteed-terminating runs.  ``undetermined`` jobs —
    and every job under the default ``analyzer=None`` — take exactly
    the seed code path, byte for byte.
    """

    default: ChaseBudget = field(default_factory=ChaseBudget)
    atom_cap: int = DEFAULT_ATOM_CAP
    depth_cap: int = DEFAULT_DEPTH_CAP
    analyzer: Optional[TerminationAnalyzer] = None
    diverging_clamp: ChaseBudget = DEFAULT_DIVERGING_CLAMP

    def derive(
        self,
        program: TGDSet,
        database_size: int,
        tgd_class: Optional[TGDClass] = None,
        database: Optional[Database] = None,
        variant: str = "semi-oblivious",
    ) -> BudgetDecision:
        """Auto-budget: classify Σ and bound the run by ``d_C``/``f_C``."""
        tgd_class = tgd_class or classify(program)
        if self.analyzer is not None:
            report = self._safe_analyze(database, program, variant)
            if report is not None:
                return self._derive_with_verdict(
                    program, database_size, tgd_class, report
                )
        if not tgd_class.has_paper_bounds:
            return BudgetDecision(
                budget=self.default,
                tgd_class=tgd_class,
                source="default",
                max_atoms_source="default",
                max_depth_source="explicit" if self.default.max_depth is not None else "unset",
            )
        depth = depth_bound(program, tgd_class)
        size = size_bound_within(database_size, program, self.atom_cap, tgd_class)
        max_atoms = size if size is not None else self.default.max_atoms
        use_depth = depth <= self.depth_cap
        max_depth = depth if use_depth else self.default.max_depth
        budget = self.default.replace(max_atoms=max_atoms, max_depth=max_depth)
        paper_derived = size is not None or use_depth
        return BudgetDecision(
            budget=budget,
            tgd_class=tgd_class,
            source="paper-bound" if paper_derived else "default",
            max_atoms_source="size-bound" if size is not None else "default",
            max_depth_source=(
                "depth-bound"
                if use_depth
                else ("explicit" if self.default.max_depth is not None else "unset")
            ),
            depth_bound_magnitude=magnitude(depth),
            size_bound_magnitude=magnitude(size) if size is not None else "over-cap",
        )

    # -- analysis-aware derivation ----------------------------------------

    def _safe_analyze(
        self,
        database: Optional[Database],
        program: TGDSet,
        variant: str,
    ) -> Optional[TerminationReport]:
        """Run the analyzer, swallowing failures: a broken analysis must
        degrade to the default budget, never take a job down."""
        try:
            return self.analyzer.analyze(database, program, variant)  # type: ignore[union-attr]
        except Exception:  # noqa: BLE001
            return None

    def _derive_with_verdict(
        self,
        program: TGDSet,
        database_size: int,
        tgd_class: TGDClass,
        report: TerminationReport,
    ) -> BudgetDecision:
        """Fold a termination verdict into the auto-budget decision."""
        if report.verdict == DIVERGING:
            clamp = self.diverging_clamp
            budget = self.default.replace(
                max_atoms=_min_cap(self.default.max_atoms, clamp.max_atoms),
                max_rounds=_min_cap(self.default.max_rounds, clamp.max_rounds),
            )
            return BudgetDecision(
                budget=budget,
                tgd_class=tgd_class,
                source="analysis-clamp",
                max_atoms_source="analysis-clamp",
                max_depth_source=(
                    "explicit" if self.default.max_depth is not None else "unset"
                ),
                verdict=report.verdict,
                verdict_method=report.method,
            )
        base = self._derive_paper(program, database_size, tgd_class)
        if (
            report.verdict == TERMINATING
            and not tgd_class.has_paper_bounds
            and report.depth_bound is not None
            and report.depth_bound <= self.depth_cap
        ):
            budget = base.budget.replace(max_depth=report.depth_bound)
            return BudgetDecision(
                budget=budget,
                tgd_class=tgd_class,
                source="analysis",
                max_atoms_source=base.max_atoms_source,
                max_depth_source="analysis-depth-bound",
                depth_bound_magnitude=magnitude(report.depth_bound),
                size_bound_magnitude=base.size_bound_magnitude,
                verdict=report.verdict,
                verdict_method=report.method,
            )
        return BudgetDecision(
            budget=base.budget,
            tgd_class=base.tgd_class,
            source=base.source,
            max_atoms_source=base.max_atoms_source,
            max_depth_source=base.max_depth_source,
            depth_bound_magnitude=base.depth_bound_magnitude,
            size_bound_magnitude=base.size_bound_magnitude,
            verdict=report.verdict,
            verdict_method=report.method,
        )

    def _derive_paper(
        self,
        program: TGDSet,
        database_size: int,
        tgd_class: TGDClass,
    ) -> BudgetDecision:
        """The seed derivation (paper bounds / default), analyzer-blind."""
        plain = BudgetPolicy(
            default=self.default, atom_cap=self.atom_cap, depth_cap=self.depth_cap
        )
        return plain.derive(program, database_size, tgd_class)

    def resolve(
        self,
        program: TGDSet,
        database_size: int,
        budget_mode: str = "auto",
        explicit: Optional[ChaseBudget] = None,
        database: Optional[Database] = None,
        variant: str = "semi-oblivious",
    ) -> BudgetDecision:
        """Resolve a job's budget according to its ``budget_mode``."""
        if budget_mode == "explicit":
            if explicit is None:
                raise ValueError("budget_mode='explicit' requires a budget")
            return BudgetDecision(
                budget=explicit,
                tgd_class=classify(program),
                source="explicit",
                max_atoms_source="explicit",
                max_depth_source="explicit" if explicit.max_depth is not None else "unset",
            )
        if budget_mode == "default":
            return BudgetDecision(
                budget=self.default,
                tgd_class=classify(program),
                source="default",
                max_atoms_source="default",
                max_depth_source="explicit" if self.default.max_depth is not None else "unset",
            )
        if budget_mode == "auto":
            return self.derive(program, database_size, database=database, variant=variant)
        raise ValueError(f"unknown budget mode {budget_mode!r}")
