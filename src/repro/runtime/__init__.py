"""Batch runtime: declarative chase jobs, auto-budgets, caching, pooling.

This layer turns the chase engine into a service-shaped runtime::

    ChaseJob ──▶ BudgetPolicy ──▶ ResultCache ──▶ BatchExecutor
    (what to     (paper-derived    (fingerprint-    (serial or
     run)         d_C/f_C limits)   keyed replay)    process pool)

``python -m repro batch`` is the CLI front end: it consumes a JSONL
manifest of jobs and emits JSONL results with outcome, sizes, timings,
and cache/budget provenance.
"""

from repro.runtime.budget_policy import (
    DEFAULT_ATOM_CAP,
    DEFAULT_DEPTH_CAP,
    BudgetDecision,
    BudgetPolicy,
)
from repro.runtime.cache import (
    CacheEntry,
    ResultCache,
    lineage_cache_key,
    result_cache_key,
)
from repro.runtime.executor import BatchExecutor, JobResult, execute_payload
from repro.runtime.jobs import (
    BUDGET_MODES,
    VARIANTS,
    ChaseJob,
    ManifestError,
    database_fingerprint,
    encode_database_snapshot,
    job_from_manifest_entry,
    manifest_entry,
    parse_manifest_text,
    program_fingerprint,
    read_manifest,
    read_manifest_lenient,
    write_manifest,
)

__all__ = [
    "BUDGET_MODES",
    "VARIANTS",
    "ChaseJob",
    "ManifestError",
    "database_fingerprint",
    "encode_database_snapshot",
    "program_fingerprint",
    "job_from_manifest_entry",
    "manifest_entry",
    "parse_manifest_text",
    "read_manifest",
    "read_manifest_lenient",
    "write_manifest",
    "BudgetDecision",
    "BudgetPolicy",
    "DEFAULT_ATOM_CAP",
    "DEFAULT_DEPTH_CAP",
    "CacheEntry",
    "ResultCache",
    "lineage_cache_key",
    "result_cache_key",
    "BatchExecutor",
    "JobResult",
    "execute_payload",
]
