"""Deterministic, seeded fault injection for the chase runtime.

The stack survives worker crashes, torn spill writes, truncated
snapshots and stuck workers — but only provably so if those failures
can be *produced* on demand.  This module is the production side of
that bargain: a ``FaultPlan`` names a list of fault points threaded
through the runtime (``worker.round``, ``cache.spill_write``,
``checkpoint.write``, ``http.response``) and the action to take when
execution reaches them.  Everything is opt-in: with no plan configured
``get_injector()`` returns a disabled singleton whose ``fire`` is a
single dict lookup, so the fault-free path stays byte-identical to a
build without this module.

Plans are deterministic, not probabilistic: each spec fires on exact
occurrence indices (``after`` skips, ``times`` fires), so a seeded
chaos schedule replays identically.  The ``seed`` field is provenance
for the generator that built the plan; the injector itself never draws
randomness.

Configuration travels through the ``REPRO_FAULTS`` environment
variable — either inline JSON or ``@/path/to/plan.json`` — because
pool workers are separate processes: a fork inherits the variable and
a respawned worker re-reads it.  Cross-process "how many times has
this spec fired" state lives in small counter files under
``state_dir`` (flock-serialised), so kill-once specs stay kill-once
even after the killed worker is replaced.  Fired faults append JSONL
rows to ``<state_dir>/fault_log.jsonl`` (or ``log``) for the chaos
suite and CI artifacts.

Fault points and the actions they honour:

``worker.round``
    Fired by :func:`repro.runtime.executor.execute_payload` at the end
    of every chase round with ``job=`` and ``round=`` context.
    Actions: ``kill`` (``os._exit(1)`` — a hard worker crash),
    ``error`` (raises a transient :class:`FaultError`), ``hang``
    (sleeps ``seconds`` — a stuck worker).
``cache.spill_write``
    Fired by :meth:`repro.runtime.cache.ResultCache.put` before
    appending a spill line.  Actions: ``error``, ``enospc`` (raises
    ``OSError(ENOSPC)``).
``checkpoint.write``
    Fired by :class:`repro.runtime.checkpoint.RoundCheckpointer`
    before persisting a mid-run snapshot.  Actions: ``truncate``
    (the blob is cut in half — a torn write), ``error``.
``http.response``
    Fired by the service request handler before writing a response
    body.  Actions: ``delay`` (sleeps ``seconds``), ``drop`` (the
    connection closes without a response).
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

#: Actions a spec may request, and the points that honour them.
ACTIONS = ("error", "kill", "hang", "enospc", "truncate", "delay", "drop")


class FaultError(RuntimeError):
    """An injected failure.

    ``transient`` mirrors the classification the executor applies to
    real failures: injected errors model crashes and I/O blips, which
    a retry may outrun, so they default to transient.
    """

    def __init__(self, message: str, *, point: str = "", transient: bool = True):
        super().__init__(message)
        self.point = point
        self.transient = transient


class FaultPlanError(ValueError):
    """The plan JSON is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One named fault: where, what, and on which occurrences."""

    point: str
    action: str
    times: int = 1
    after: int = 0
    at_round: Optional[int] = None
    match: Optional[str] = None
    seconds: float = 0.05

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} (expected one of {ACTIONS})"
            )
        if self.times < 1:
            raise FaultPlanError(f"fault times must be >= 1, got {self.times}")
        if self.after < 0:
            raise FaultPlanError(f"fault after must be >= 0, got {self.after}")

    def as_dict(self) -> dict:
        record = {"point": self.point, "action": self.action, "times": self.times}
        if self.after:
            record["after"] = self.after
        if self.at_round is not None:
            record["at_round"] = self.at_round
        if self.match is not None:
            record["match"] = self.match
        if self.action in ("hang", "delay"):
            record["seconds"] = self.seconds
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        if not isinstance(record, dict):
            raise FaultPlanError(f"fault spec must be an object, got {type(record).__name__}")
        unknown = set(record) - {
            "point", "action", "times", "after", "at_round", "match", "seconds"
        }
        if unknown:
            raise FaultPlanError(f"unknown fault spec keys: {sorted(unknown)}")
        if "point" not in record or "action" not in record:
            raise FaultPlanError("fault spec needs 'point' and 'action'")
        return cls(
            point=str(record["point"]),
            action=str(record["action"]),
            times=int(record.get("times", 1)),
            after=int(record.get("after", 0)),
            at_round=None if record.get("at_round") is None else int(record["at_round"]),
            match=None if record.get("match") is None else str(record["match"]),
            seconds=float(record.get("seconds", 0.05)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault schedule."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    state_dir: Optional[str] = None
    log: Optional[str] = None

    def as_dict(self) -> dict:
        record: dict = {"seed": self.seed, "faults": [f.as_dict() for f in self.faults]}
        if self.state_dir:
            record["state_dir"] = self.state_dir
        if self.log:
            record["log"] = self.log
        return record

    def to_env(self) -> str:
        """A value for ``REPRO_FAULTS`` that round-trips this plan."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, record: dict) -> "FaultPlan":
        if not isinstance(record, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(record).__name__}")
        unknown = set(record) - {"seed", "faults", "state_dir", "log"}
        if unknown:
            raise FaultPlanError(f"unknown fault plan keys: {sorted(unknown)}")
        faults = record.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a list")
        return cls(
            faults=tuple(FaultSpec.from_dict(spec) for spec in faults),
            seed=int(record.get("seed", 0)),
            state_dir=record.get("state_dir"),
            log=record.get("log"),
        )

    @classmethod
    def from_env_value(cls, value: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` value: inline JSON or ``@path``."""
        text = value.strip()
        if text.startswith("@"):
            try:
                text = Path(text[1:]).read_text()
            except OSError as exc:
                raise FaultPlanError(f"cannot read fault plan file: {exc}") from exc
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(record)


def _flocked(handle):
    """flock the handle exclusively for the caller's with-block."""
    import contextlib

    @contextlib.contextmanager
    def _ctx():
        try:
            import fcntl

            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                handle.flush()
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            yield

    return _ctx()


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named fault points.

    Thread-safe; cross-process occurrence counts when the plan names a
    ``state_dir`` (each spec owns one counter file, incremented under
    flock), in-memory otherwise.  ``fire`` is the single entry point —
    it either returns ``None`` (no fault), returns an effect string
    the caller must honour (``"truncate"``, ``"drop"``), raises,
    sleeps, or never returns (``kill``).
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self.plan = plan
        self._lock = threading.Lock()
        self._memory_counts: Dict[int, int] = {}
        self._fired_local: Dict[str, int] = {}
        self._by_point: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        if plan is not None:
            for index, spec in enumerate(plan.faults):
                self._by_point.setdefault(spec.point, []).append((index, spec))
            if plan.state_dir:
                Path(plan.state_dir).mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return bool(self._by_point)

    # -- occurrence bookkeeping -------------------------------------

    def _next_occurrence(self, index: int) -> int:
        """Atomically increment and return spec ``index``'s occurrence count."""
        state_dir = self.plan.state_dir if self.plan else None
        if not state_dir:
            with self._lock:
                count = self._memory_counts.get(index, 0) + 1
                self._memory_counts[index] = count
                return count
        path = Path(state_dir) / f"spec{index}.occ"
        with self._lock:
            with open(path, "a+") as handle:
                with _flocked(handle):
                    handle.seek(0)
                    text = handle.read().strip()
                    count = (int(text) if text else 0) + 1
                    handle.seek(0)
                    handle.truncate()
                    handle.write(str(count))
        return count

    def _log_path(self) -> Optional[Path]:
        if self.plan is None:
            return None
        if self.plan.log:
            return Path(self.plan.log)
        if self.plan.state_dir:
            return Path(self.plan.state_dir) / "fault_log.jsonl"
        return None

    def _record(self, index: int, spec: FaultSpec, context: dict) -> None:
        with self._lock:
            self._fired_local[spec.point] = self._fired_local.get(spec.point, 0) + 1
        path = self._log_path()
        if path is None:
            return
        row = {
            "spec": index,
            "point": spec.point,
            "action": spec.action,
            "pid": os.getpid(),
            "ts": round(time.time(), 3),
        }
        row.update({k: v for k, v in context.items() if v is not None})
        try:
            with open(path, "a") as handle:
                with _flocked(handle):
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - the log is best-effort
            pass

    # -- counters for metrics ---------------------------------------

    def fired_counts(self) -> Dict[str, int]:
        """Faults fired, per point.

        Reads the shared fault log when one exists (so a parent
        process sees faults fired inside pool workers); falls back to
        this process's local counts.
        """
        path = self._log_path()
        if path is not None and path.exists():
            counts: Dict[str, int] = {}
            try:
                for line in path.read_text().splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    point = row.get("point")
                    if isinstance(point, str):
                        counts[point] = counts.get(point, 0) + 1
                return counts
            except OSError:
                pass
        with self._lock:
            return dict(self._fired_local)

    def fired_total(self) -> int:
        return sum(self.fired_counts().values())

    # -- the fault point --------------------------------------------

    def fire(
        self,
        point: str,
        *,
        job: Optional[str] = None,
        round: Optional[int] = None,
        key: Optional[str] = None,
    ) -> Optional[str]:
        """Evaluate ``point``; honour any spec scheduled to fire here.

        Returns ``None`` when nothing fires, or an effect string the
        caller must apply (``"truncate"``, ``"drop"``).  ``error`` and
        ``enospc`` raise; ``kill`` exits the process; ``hang`` and
        ``delay`` sleep before returning.
        """
        specs = self._by_point.get(point)
        if not specs:
            return None
        effect: Optional[str] = None
        for index, spec in specs:
            if spec.at_round is not None and round != spec.at_round:
                continue
            if spec.match is not None:
                haystack = [v for v in (job, key) if v is not None]
                if not any(spec.match in value for value in haystack):
                    continue
            occurrence = self._next_occurrence(index)
            if occurrence <= spec.after or occurrence > spec.after + spec.times:
                continue
            self._record(index, spec, {"job": job, "round": round, "key": key})
            result = self._apply(point, spec)
            if result is not None:
                effect = result
        return effect

    def _apply(self, point: str, spec: FaultSpec) -> Optional[str]:
        if spec.action == "error":
            raise FaultError(
                f"injected fault: {spec.action} at {point}", point=point, transient=True
            )
        if spec.action == "enospc":
            raise OSError(errno.ENOSPC, f"No space left on device (injected at {point})")
        if spec.action == "kill":
            if _worker_process:
                # A hard crash: no exception propagation, no cleanup —
                # the same signature as an OOM kill.  The fault log was
                # already flushed, so the schedule stays auditable.
                os._exit(1)
            # In-process (serial) execution: exiting would take the
            # whole batch down, which no real worker crash can do.
            # Degrade to the transient error the retry loop handles.
            raise FaultError(
                f"injected fault: kill at {point} (serial mode)",
                point=point,
                transient=True,
            )
        if spec.action in ("hang", "delay"):
            time.sleep(spec.seconds)
            return None
        # "truncate" / "drop" are cooperative: the call site applies them.
        return spec.action


_DISABLED = FaultInjector(None)
_injector: Optional[FaultInjector] = None
_injector_env: Optional[str] = None
_injector_lock = threading.Lock()

#: True in pool worker processes (set by the pool initializer): only
#: there may a ``kill`` fault actually exit the process.
_worker_process = False


def mark_worker_process() -> None:
    """Pool-worker initializer: arm hard ``kill`` faults in this process."""
    global _worker_process
    _worker_process = True


def get_injector() -> FaultInjector:
    """The process-wide injector for the current ``REPRO_FAULTS`` value.

    Re-parses only when the environment variable changes (tests flip
    it; forked pool workers inherit it; respawned workers re-read it).
    A malformed plan raises :class:`FaultPlanError` — failing loudly
    beats silently running a chaos schedule with no faults.
    """
    global _injector, _injector_env
    value = os.environ.get(ENV_VAR)
    with _injector_lock:
        if value == _injector_env and _injector is not None:
            return _injector
        if not value:
            _injector = _DISABLED
        else:
            _injector = FaultInjector(FaultPlan.from_env_value(value))
        _injector_env = value
        return _injector


def reset_injector() -> None:
    """Drop the cached injector (tests call this around env changes)."""
    global _injector, _injector_env
    with _injector_lock:
        _injector = None
        _injector_env = None


def classify_failure(exc: BaseException) -> str:
    """``"transient"`` or ``"deterministic"`` for a job failure.

    Transient failures are worth retrying: injected faults, broken
    pools (a worker died), OS-level I/O errors, and connection drops.
    Everything else — parse errors, assertion failures, type errors in
    the engine — would fail identically on every attempt.
    """
    if isinstance(exc, FaultError):
        return "transient" if exc.transient else "deterministic"
    try:
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(exc, BrokenProcessPool):
            return "transient"
    except ImportError:  # pragma: no cover
        pass
    if isinstance(exc, (BrokenPipeError, ConnectionError, EOFError, OSError)):
        return "transient"
    return "deterministic"


def backoff_schedule(base: float, attempts: int, cap: float = 2.0) -> List[float]:
    """Deterministic exponential backoff: ``base * 2**i`` capped at ``cap``."""
    return [min(cap, base * (2 ** i)) for i in range(attempts)]
