"""Mid-run chase checkpoints: crash-safe snapshots a retry resumes from.

A long budget-bounded chase that dies at round 40 of 50 should not
restart cold.  ``checkpoint_every_rounds=N`` makes the engine call a
:class:`RoundCheckpointer` at every Nth round boundary; the
checkpointer persists the fact store (via ``FactStore.snapshot``)
together with the loop state the snapshot alone cannot carry — the
per-predicate row marks that delimit the current frontier, and the
cumulative statistics so a resumed run's final summary is
byte-identical to a cold run's.

A checkpoint is *not* the PR 5 incremental-resume snapshot: that path
re-interns the database and chases the difference, which over a
mid-run prefix plus the original database yields an empty delta and a
silently truncated result.  A checkpoint instead freezes the exact
semi-naive loop state: restore the store, seed ``marks`` from the
header, and the next iteration's ``delta_pending_rows(store, marks)``
re-derives precisely the frontier the dead run was about to expand.
That is sound without the applied-trigger memo because a trigger first
enumerable after round k has at least one body fact in round k's delta
— it was never enumerable before the checkpoint, so no cross-
checkpoint duplicate application is possible (within-round duplicates
self-prune against the fresh memo).

The on-disk format is ``MAGIC + <8-byte LE header length> + header
JSON + store snapshot``; writes go to a temp file then ``os.replace``
so a crash tears at most an invisible temp file.  Torn or truncated
blobs (including injected ``checkpoint.write`` truncation faults) fail
decoding loudly and the caller falls back to a cold start — a corrupt
checkpoint costs time, never correctness.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import List, Optional, Tuple

MAGIC = b"RPCKPT1\n"
_LEN = struct.Struct("<Q")


class CheckpointError(ValueError):
    """The checkpoint blob is torn, truncated, or not a checkpoint."""


def encode_checkpoint(
    store_blob: bytes,
    *,
    marks: List[int],
    rounds: int,
    considered: int,
    applied: int,
    created: int,
    database_size: int,
) -> bytes:
    header = json.dumps(
        {
            "marks": list(marks),
            "rounds": int(rounds),
            "considered": int(considered),
            "applied": int(applied),
            "created": int(created),
            "database_size": int(database_size),
            "store_bytes": len(store_blob),
        },
        sort_keys=True,
    ).encode("utf-8")
    return MAGIC + _LEN.pack(len(header)) + header + store_blob


def decode_checkpoint(data: bytes) -> Tuple[dict, bytes]:
    """``(header, store_blob)`` — raises :class:`CheckpointError` on damage."""
    if not data.startswith(MAGIC):
        raise CheckpointError("not a chase checkpoint (bad magic)")
    offset = len(MAGIC)
    if len(data) < offset + _LEN.size:
        raise CheckpointError("checkpoint truncated inside the header length")
    (header_len,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    if len(data) < offset + header_len:
        raise CheckpointError("checkpoint truncated inside the header")
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"checkpoint header is corrupt: {exc}") from exc
    blob = data[offset + header_len :]
    expected = header.get("store_bytes")
    if not isinstance(expected, int) or len(blob) != expected:
        raise CheckpointError(
            f"checkpoint store blob truncated: {len(blob)} bytes, expected {expected}"
        )
    for field in ("marks", "rounds", "considered", "applied", "created", "database_size"):
        if field not in header:
            raise CheckpointError(f"checkpoint header missing {field!r}")
    return header, blob


def load_checkpoint(path: str) -> Optional[Tuple[dict, bytes]]:
    """Decode the checkpoint at ``path``; ``None`` if absent or damaged.

    Damage is survivable by design (the retry starts cold), so this
    never raises on corrupt data.
    """
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    try:
        return decode_checkpoint(data)
    except CheckpointError:
        return None


class RoundCheckpointer:
    """An engine round hook that persists every Nth round boundary.

    Instances are callables matching the engine's ``round_hook``
    signature.  Writes are atomic (temp + ``os.replace``) and honour
    the ``checkpoint.write`` fault point: a ``truncate`` effect writes
    half the blob — exactly the torn write a crash mid-``write`` would
    leave — which ``decode_checkpoint`` later rejects.
    """

    def __init__(self, path: str, every_rounds: int, *, database_size: int = 0, injector=None):
        if every_rounds < 1:
            raise ValueError(f"checkpoint_every_rounds must be >= 1, got {every_rounds}")
        self.path = path
        self.every_rounds = every_rounds
        self.database_size = database_size
        self.injector = injector
        self.writes = 0

    def __call__(self, rounds, store, marks, stats) -> None:
        if marks is None or rounds <= 0 or rounds % self.every_rounds:
            return
        considered, applied, created = stats
        blob = store.snapshot(complete=False, rounds=rounds)
        data = encode_checkpoint(
            blob,
            marks=marks,
            rounds=rounds,
            considered=considered,
            applied=applied,
            created=created,
            database_size=self.database_size,
        )
        if self.injector is not None:
            effect = self.injector.fire("checkpoint.write", key=self.path, round=rounds)
            if effect == "truncate":
                data = data[: len(data) // 2]
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, self.path)
            self.writes += 1
        except OSError:
            # Checkpoints are an optimisation; never fail the run over one.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def discard(self) -> None:
        """Remove the checkpoint file (the job finished; nothing to resume)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
