"""Batch executor: run many chase jobs, serially or across processes.

The executor is the runtime's scheduler.  For each job it

1. resolves the budget through the :class:`BudgetPolicy` (paper-derived
   auto-budgets, explicit, or default — see
   :mod:`repro.runtime.budget_policy`),
2. consults the :class:`ResultCache` and replays hits without running
   anything,
3. otherwise ships a plain-data payload to a worker — the program as
   text, the database as a packed fact-store *snapshot*
   (:func:`~repro.runtime.jobs.encode_database_snapshot`; workers
   restore it and skip parse + intern entirely, and nothing with
   interpreter-local state such as interned null uids crosses a
   process boundary), and
4. streams :class:`JobResult` records back as jobs finish, storing
   deterministic outcomes in the cache.

With ``incremental=True`` the executor additionally recognises
"previous job + delta": cache misses consult the lineage index
(:func:`~repro.runtime.cache.lineage_cache_key`) for a snapshot of a
terminated run of the same program/variant/budget-policy over a
*subset* of the new database, and resume the chase from it with only
the delta facts (``resume_from``).  Resumed results report the same
instance/size/outcome as a cold run for the variants with
order-independent results, but their round/trigger statistics reflect
only the delta work — which is the point — so incremental mode is
opt-in for deployments that assert cold-run byte-identity.

``workers <= 1`` selects the serial in-process mode, which yields
results in submission order and is bit-for-bit deterministic; larger
values use a ``multiprocessing`` pool (fork context where available)
and yield in completion order.  Per-job timeouts are enforced
cooperatively through the engine's ``max_seconds`` budget, which the
chase driver checks after every trigger application.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget, ChaseOutcome, EngineCheckpoint
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import (
    database_to_text,
    instance_to_text,
    program_to_text,
)
from repro.model.store import FactStore
from repro.obs.conformance import conformance_report
from repro.obs.probe import ChaseProbe
from repro.obs.profile import RuleProfiler
from repro.obs.trace import TraceRecorder
from repro.runtime.budget_policy import BudgetDecision, BudgetPolicy
from repro.runtime.cache import CacheEntry, ResultCache, lineage_cache_key, result_cache_key
from repro.runtime.checkpoint import RoundCheckpointer, load_checkpoint
from repro.runtime.faults import (
    backoff_schedule,
    classify_failure,
    get_injector,
    mark_worker_process,
)
from repro.runtime.jobs import ChaseJob


@dataclass
class JobResult:
    """The outcome of one scheduled job, with full provenance."""

    job_id: str
    status: str  # "ok" | "timeout" | "error"
    summary: Optional[Dict[str, object]]
    variant: str
    cache_hit: bool
    cache_key: str
    budget_provenance: Dict[str, object]
    wall_seconds: float
    worker_seconds: Optional[float] = None
    instance_text: Optional[str] = None
    error: Optional[str] = None
    tags: Tuple[str, ...] = ()
    #: Cache key of the snapshot this run resumed from (incremental
    #: re-chase), None for cold runs.
    resumed_from: Optional[str] = None
    #: Transient-failure retries this job consumed (0 on the first
    #: successful attempt — and then absent from :meth:`as_dict`, so
    #: fault-free batch rows keep their exact pre-existing shape).
    retries: int = 0
    #: Checkpoint-resume provenance (``base_rounds`` already executed
    #: before the crash, ``resumed_rounds`` re-executed after it) when a
    #: retry resumed from a mid-run checkpoint; ``None`` otherwise and
    #: then absent from :meth:`as_dict`.  Deliberately *not* part of the
    #: summary: a resumed run's summary is byte-identical to a cold
    #: run's, and this records how little work that identity cost.
    checkpoint: Optional[Dict[str, object]] = None

    @property
    def outcome(self) -> Optional[str]:
        return self.summary.get("outcome") if self.summary else None  # type: ignore[return-value]

    def as_dict(self) -> Dict[str, object]:
        """The JSONL row ``python -m repro batch`` emits."""
        row: Dict[str, object] = {
            "id": self.job_id,
            "status": self.status,
            "outcome": self.outcome,
            "summary": self.summary,
            "variant": self.variant,
            "cache": {"hit": self.cache_hit, "key": self.cache_key},
            "budget": self.budget_provenance,
            "wall_seconds": round(self.wall_seconds, 6),
            "worker_seconds": self.worker_seconds,
            "instance": self.instance_text,
            "error": self.error,
            "tags": list(self.tags),
            "resumed_from": self.resumed_from,
        }
        if self.retries:
            row["retries"] = self.retries
        if self.checkpoint is not None:
            row["checkpoint"] = self.checkpoint
        return row

    def summary_json(self) -> str:
        """Canonical bytes of the summary (cache byte-identity checks)."""
        return json.dumps(self.summary, sort_keys=True)


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one job payload; module-level so it pickles into workers.

    The payload and the returned record are plain data: texts, numbers,
    bytes and dicts — nothing with interpreter-local state (interned
    null uids) crosses a process boundary.  Three database shapes:

    * ``database_snapshot`` — packed store bytes; the worker restores
      the store and chases it directly, skipping parse + intern (the
      default for store-engine jobs);
    * ``database_text`` alone — the legacy text form, re-parsed here
      (non-store engines, and the ``ship_snapshots=False`` knob);
    * ``resume_snapshot`` + ``database_text`` — incremental re-chase:
      the snapshot is a previously terminated run, the text carries
      only the *delta* facts, and ``database_size`` is the full grown
      database's size for summary bookkeeping.

    On the store engine a summary-only job never materialises atom
    objects at all; the instance is decoded to text solely when
    ``materialize`` asks for it, and ``want_snapshot`` returns the
    terminated run's snapshot bytes (taken before any materialisation)
    for the cache's lineage index.
    """
    try:
        injector = get_injector()
        program = parse_program(
            str(payload["program_text"]), name=str(payload.get("program_name", "Sigma"))
        )
        snapshot_bytes = payload.get("database_snapshot")
        if snapshot_bytes is not None:
            database = FactStore.restore(snapshot_bytes)  # type: ignore[arg-type]
        else:
            database = parse_database(str(payload["database_text"]))
        budget = ChaseBudget(**payload["budget"])  # type: ignore[arg-type]
        runner = VARIANT_RUNNERS[str(payload["variant"])]
        engine = payload.get("engine")
        resume_snapshot = payload.get("resume_snapshot")
        database_size = payload.get("database_size")
        probe = ChaseProbe() if payload.get("telemetry") else None
        profiler = RuleProfiler() if payload.get("profile") else None
        job_id = str(payload["job_id"])
        # Crash-safe execution: a checkpoint path makes the run persist
        # its loop state every N round boundaries, and — on a retry — a
        # decodable checkpoint left by a dead attempt turns this run
        # into a same-run resume instead of a cold start.  A corrupt or
        # truncated checkpoint silently falls back to cold (costs time,
        # never correctness).
        checkpoint_path = payload.get("checkpoint_path")
        checkpoint_every = payload.get("checkpoint_every_rounds")
        engine_checkpoint: Optional[EngineCheckpoint] = None
        checkpointer: Optional[RoundCheckpointer] = None
        if checkpoint_path and checkpoint_every:
            loaded = load_checkpoint(str(checkpoint_path))
            if loaded is not None:
                header, blob = loaded
                engine_checkpoint = EngineCheckpoint(
                    store_blob=blob,
                    marks=tuple(int(m) for m in header["marks"]),
                    rounds=int(header["rounds"]),
                    considered=int(header["considered"]),
                    applied=int(header["applied"]),
                    created=int(header["created"]),
                    database_size=int(header["database_size"]),
                )
            checkpointer = RoundCheckpointer(
                str(checkpoint_path),
                int(checkpoint_every),  # type: ignore[arg-type]
                database_size=(
                    int(database_size) if database_size is not None else len(database)
                ),
                injector=injector if injector.enabled else None,
            )
        round_hook = None
        if checkpointer is not None or injector.enabled:
            fire = injector.fire if injector.enabled else None

            def round_hook(rounds, store, marks, stats,
                           _ckpt=checkpointer, _fire=fire, _job=job_id):
                # Checkpoint before the fault fires: a kill at round N
                # must find the round-N state already durable.
                if _ckpt is not None:
                    _ckpt(rounds, store, marks, stats)
                if _fire is not None:
                    _fire("worker.round", job=_job, round=rounds)

        start = time.perf_counter()
        result = runner(
            database,
            program,
            budget=budget,
            record_derivation=False,
            engine=str(engine) if engine else None,
            resume_from=resume_snapshot,
            database_size=int(database_size) if database_size is not None else None,
            probe=probe,
            profile=profiler,
            round_hook=round_hook,
            checkpoint=engine_checkpoint,
        )
        status = (
            "timeout" if result.outcome is ChaseOutcome.TIME_BUDGET_EXCEEDED else "ok"
        )
        snapshot_out: Optional[bytes] = None
        if payload.get("want_snapshot") and status == "ok" and result.terminated:
            # Before reading .instance: materialisation releases the store.
            snapshot_out = result.store_snapshot()
        record: Dict[str, object] = {
            "job_id": payload["job_id"],
            "status": status,
            "summary": result.summary(),
            "worker_seconds": round(time.perf_counter() - start, 6),
            "instance_text": (
                instance_to_text(result.instance) if payload.get("materialize") else None
            ),
            "error": None,
            "snapshot": snapshot_out,
        }
        if engine_checkpoint is not None:
            record["checkpoint"] = {
                "base_rounds": engine_checkpoint.rounds,
                "resumed_rounds": result.statistics.rounds - engine_checkpoint.rounds,
            }
        if checkpointer is not None:
            # The run reached a verdict; there is nothing left to resume.
            checkpointer.discard()
        return record
    except Exception as exc:  # noqa: BLE001 - worker faults become job errors
        return {
            "job_id": payload.get("job_id", "?"),
            "status": "error",
            "summary": None,
            "worker_seconds": None,
            "instance_text": None,
            "error": f"{type(exc).__name__}: {exc}",
            "snapshot": None,
            "failure_kind": classify_failure(exc),
        }


@dataclass
class BatchExecutor:
    """Runs :class:`ChaseJob` batches against a policy and a cache."""

    workers: int = 1
    policy: BudgetPolicy = field(default_factory=BudgetPolicy)
    cache: Optional[ResultCache] = None
    materialize: bool = False
    per_job_timeout: Optional[float] = None
    #: Chase engine implementation ("store", "plans", "legacy"); None
    #: selects the library default.  Deliberately *not* part of the
    #: result cache key: the engines are equivalence-tested, so a
    #: summary replayed across engines is still correct.
    engine: Optional[str] = None
    #: Ship databases to workers as packed fact-store snapshots instead
    #: of text (store-engine jobs only) so workers skip parse + intern.
    #: Snapshots are encoded once per job and shared across retries and
    #: dedup re-runs (``ChaseJob.database_snapshot``).
    ship_snapshots: bool = True
    #: Opt-in incremental re-chase: on a cache miss, resume from a
    #: cached snapshot of "the same job over a smaller database" with
    #: only the delta facts, and store terminated runs' snapshots for
    #: future resumes.  Off by default because resumed summaries report
    #: delta-only round/trigger statistics (see the module docstring).
    incremental: bool = False
    #: Attach a round-level :class:`~repro.obs.probe.ChaseProbe` to
    #: every executed chase; its payload lands under
    #: ``summary["telemetry"]`` in the job result.  Telemetry is
    #: stripped before caching (wall times are non-deterministic), so
    #: replays stay byte-identical to unprobed runs.
    telemetry: bool = False
    #: Attach a per-rule :class:`~repro.obs.profile.RuleProfiler` to
    #: every executed chase; its payload lands under
    #: ``summary["profile"]``.  Stripped before caching for the same
    #: byte-identity reason as telemetry.
    profile: bool = False
    #: Stamp a paper-bound ``conformance`` block
    #: (:func:`~repro.obs.conformance.conformance_report`) into every
    #: SL/L/G summary.  Computed post-cache from the summary itself, so
    #: cached bytes stay identical and hits get the block too.
    conformance: bool = False
    #: Optional :class:`~repro.obs.trace.TraceRecorder`: when set, each
    #: executed job emits ``job.admission`` / ``cache.lookup`` /
    #: ``snapshot.encode`` / ``job.execute`` spans.  ``None`` (the
    #: default) keeps the run loops span-free.
    tracer: Optional[TraceRecorder] = None
    #: Bounded per-job retries for *transient* failures (dead workers,
    #: broken pools, injected faults, I/O blips).  Deterministic
    #: failures — the kind that would fail identically again — are
    #: never retried.  0 restores the old one-error-row behaviour.
    max_retries: int = 2
    #: First retry delay; attempt ``i`` sleeps ``base * 2**i`` (capped),
    #: a deterministic schedule with no jitter so retried batches stay
    #: reproducible.
    retry_backoff_base: float = 0.05
    #: Persist a mid-run checkpoint every N round boundaries (requires
    #: ``checkpoint_dir``); a retried job then resumes from its last
    #: checkpoint instead of cold.  Only the store engine's summary
    #: driver checkpoints, and only for the variants whose null
    #: labelling is restart-invariant (semi-oblivious, oblivious) —
    #: other jobs simply retry cold.  ``None`` disables checkpointing.
    checkpoint_every_rounds: Optional[int] = None
    #: Directory for checkpoint files (one per cache key, deleted when
    #: the job reaches a verdict).
    checkpoint_dir: Optional[str] = None
    #: Pool mode only: when a worker makes no progress for this many
    #: seconds past a job's submission, the pool's processes are
    #: recycled and the outstanding jobs retried (from their
    #: checkpoints where available).  ``None`` disables the watchdog.
    stuck_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        # Wire the tracer into the cache so ``cache.write`` /
        # ``cache.compact`` spans land in the same trace without every
        # caller having to remember the second hookup.
        if self.cache is not None and self.tracer is not None:
            self.cache.tracer = self.tracer
        #: Fault-recovery counters surfaced on the service's /metrics
        #: (``repro_job_retries_total``, ``repro_checkpoint_resumes_total``).
        self.fault_stats: Dict[str, int] = {"retries": 0, "checkpoint_resumes": 0}
        self._fault_stats_lock = threading.Lock()
        # Checkpoint writes deliberately swallow OSError (a checkpoint
        # is an optimisation), so a missing directory would silently
        # disable them — create it up front instead.
        if self.checkpoint_dir is not None:
            Path(self.checkpoint_dir).mkdir(parents=True, exist_ok=True)

    def _count(self, stat: str, amount: int = 1) -> None:
        if amount:
            with self._fault_stats_lock:
                self.fault_stats[stat] = self.fault_stats.get(stat, 0) + amount

    # -- job preparation --------------------------------------------------

    def _resolve(self, job: ChaseJob) -> Tuple[BudgetDecision, ChaseBudget, str]:
        """Budget decision, effective budget (timeout folded in), cache key."""
        decision = self.policy.resolve(
            job.program,
            len(job.database),
            job.budget_mode,
            job.budget,
            database=job.database,
            variant=job.variant,
        )
        key = result_cache_key(job, decision.budget)
        # A provably terminating job cannot run forever, so the daemon's
        # blanket per-job wall ceiling is dead weight: skip folding it
        # and let the analysis-derived depth/atom budget do the work.
        # Job-level explicit timeouts are still honoured.
        daemon_ceiling = (
            None if decision.verdict == "terminating" else self.per_job_timeout
        )
        timeouts = [
            t
            for t in (decision.budget.max_seconds, job.timeout_seconds, daemon_ceiling)
            if t is not None
        ]
        effective = (
            decision.budget.replace(max_seconds=min(timeouts))
            if timeouts
            else decision.budget
        )
        return decision, effective, key

    def _snapshot_capable(self) -> bool:
        """Snapshots require the store engine (the default)."""
        return self.engine in (None, "store")

    def _payload(
        self,
        job: ChaseJob,
        budget: ChaseBudget,
        include_database: bool = True,
        key: Optional[str] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job_id": job.job_id,
            "program_text": program_to_text(job.program),
            "program_name": job.program.name,
            "variant": job.variant,
            "budget": budget.as_dict(),
            "materialize": self.materialize,
            "engine": self.engine,
        }
        if include_database:
            if self.ship_snapshots and self._snapshot_capable():
                payload["database_snapshot"] = job.database_snapshot
            else:
                payload["database_text"] = database_to_text(job.database)
        if self.incremental and self.cache is not None and self._snapshot_capable():
            payload["want_snapshot"] = True
        if self.telemetry:
            payload["telemetry"] = True
        if self.profile:
            payload["profile"] = True
        if self._checkpoint_capable(job) and key is not None:
            payload["checkpoint_every_rounds"] = self.checkpoint_every_rounds
            payload["checkpoint_path"] = str(
                Path(self.checkpoint_dir)  # type: ignore[arg-type]
                / (hashlib.sha256(key.encode("utf-8")).hexdigest()[:24] + ".ckpt")
            )
        return payload

    def _checkpoint_capable(self, job: ChaseJob) -> bool:
        """Whether this job's runs persist (and resume from) checkpoints.

        Checkpoints freeze the columnar summary driver's loop state, so
        they need the store engine and a variant whose null labelling
        survives a restart (the restricted chase's per-run fire counter
        does not).  Probed/profiled runs are excluded: their payloads
        sample per-round, and a resume would observe only the tail.
        """
        return (
            self.checkpoint_every_rounds is not None
            and self.checkpoint_dir is not None
            and self._snapshot_capable()
            and job.variant in ("semi-oblivious", "oblivious")
            and not self.telemetry
            and not self.profile
        )

    def _resume_base(self, job: ChaseJob) -> Optional[Tuple["CacheEntry", List[str]]]:
        """A cached snapshot this job can resume from, plus the delta.

        Returns ``(entry, delta_lines)`` when the cache holds a
        terminated run of the job's lineage whose base database is a
        subset of the job's — the "previous job + delta" shape — and
        ``None`` otherwise.
        """
        if not self.incremental or self.cache is None or not self._snapshot_capable():
            return None
        entry = self.cache.snapshot_for(lineage_cache_key(job))
        if entry is None or entry.snapshot is None or entry.database_lines is None:
            return None
        new_lines = job.database_lines
        base = set(entry.database_lines)
        if not base.issubset(new_lines):
            return None
        return entry, [line for line in new_lines if line not in base]

    def _resume_payload(
        self, job: ChaseJob, budget: ChaseBudget, entry: "CacheEntry", delta: List[str]
    ) -> Dict[str, object]:
        # The cold payload minus the database, plus the resume fields —
        # so any future payload knob automatically covers resumed runs.
        payload = self._payload(job, budget, include_database=False)
        payload["database_text"] = "\n".join(delta)
        payload["resume_snapshot"] = entry.snapshot
        payload["database_size"] = len(job.database)
        payload["want_snapshot"] = self.cache is not None
        return payload

    def _build_payload(
        self, job: ChaseJob, budget: ChaseBudget, key: Optional[str] = None
    ) -> Tuple[Dict[str, object], Optional[str]]:
        """The payload to execute, plus the resumed-from key (if any)."""
        base = self._resume_base(job)
        if base is not None:
            entry, delta = base
            return self._resume_payload(job, budget, entry, delta), entry.key
        return self._payload(job, budget, key=key), None

    def _wrap(
        self,
        job: ChaseJob,
        decision: BudgetDecision,
        key: str,
        record: Dict[str, object],
        wall_seconds: float,
        resumed_from: Optional[str] = None,
        retries: int = 0,
    ) -> JobResult:
        checkpoint = record.get("checkpoint")
        if checkpoint is not None:
            self._count("checkpoint_resumes")
        result = JobResult(
            job_id=job.job_id,
            status=str(record["status"]),
            summary=record["summary"],  # type: ignore[arg-type]
            variant=job.variant,
            cache_hit=False,
            cache_key=key,
            budget_provenance=decision.provenance(),
            wall_seconds=wall_seconds,
            worker_seconds=record.get("worker_seconds"),  # type: ignore[arg-type]
            instance_text=record.get("instance_text"),  # type: ignore[arg-type]
            error=record.get("error"),  # type: ignore[arg-type]
            tags=job.tags,
            resumed_from=resumed_from,
            retries=retries,
            checkpoint=checkpoint,  # type: ignore[arg-type]
        )
        if self.cache is not None and result.status == "ok" and result.summary is not None:
            # Telemetry carries wall-clock round timings, which are not
            # deterministic; cached summaries must replay byte-identical
            # to an unprobed cold run, so the key is stripped before the
            # store (the caller's JobResult keeps it).
            cache_summary = result.summary
            if "telemetry" in cache_summary or "profile" in cache_summary:
                cache_summary = {
                    k: v
                    for k, v in cache_summary.items()
                    if k not in ("telemetry", "profile")
                }
            snapshot = record.get("snapshot")
            if resumed_from is not None:
                # A resumed run's statistics — and, under a tight round
                # budget, even its outcome — can differ from what a
                # cold execution of the same job would report, so it
                # must never become a replayable entry under the cold
                # result key.  Its snapshot still chains the lineage
                # (stored under a "delta:" key no result lookup ever
                # asks for).
                if snapshot is not None:
                    self.cache.put(
                        "delta:" + key,
                        cache_summary,
                        result.instance_text,
                        snapshot=snapshot,  # type: ignore[arg-type]
                        database_lines=job.database_lines,
                        lineage=lineage_cache_key(job),
                    )
            elif snapshot is not None:
                # A terminated cold run: replayable result and the
                # freshest incremental base of its lineage in one entry.
                self.cache.put(
                    key,
                    cache_summary,
                    result.instance_text,
                    snapshot=snapshot,  # type: ignore[arg-type]
                    database_lines=job.database_lines,
                    lineage=lineage_cache_key(job),
                )
            else:
                self.cache.put(key, cache_summary, result.instance_text)
        self._stamp_conformance(job, result)
        return result

    def _stamp_conformance(self, job: ChaseJob, result: JobResult) -> None:
        """Attach the paper-bound conformance block to ``result``.

        Runs strictly *after* caching so the stored bytes never carry
        the block; the block itself is deterministic (class + bounds +
        observed counts), so hits and cold runs agree.
        """
        if not self.conformance or result.summary is None:
            return
        block = conformance_report(result.summary, job.program)
        if block is None:
            return
        result.summary = dict(result.summary)
        result.summary["conformance"] = block

    def _hit(
        self, job: ChaseJob, decision: BudgetDecision, key: str, entry, wall_seconds: float
    ) -> JobResult:
        result = JobResult(
            job_id=job.job_id,
            status="ok",
            summary=entry.summary,
            variant=job.variant,
            cache_hit=True,
            cache_key=key,
            budget_provenance=decision.provenance(),
            wall_seconds=wall_seconds,
            worker_seconds=None,
            instance_text=entry.instance_text if self.materialize else None,
            tags=job.tags,
        )
        self._stamp_conformance(job, result)
        return result

    # -- execution --------------------------------------------------------

    def run(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        """Stream results as they complete (submission order when serial)."""
        if self.workers <= 1:
            yield from self._run_serial(jobs)
        else:
            yield from self._run_pool(jobs)

    def run_all(self, jobs: Iterable[ChaseJob]) -> List[JobResult]:
        """Run the whole batch and return the results as a list."""
        return list(self.run(jobs))

    @staticmethod
    def _transient_error(record: Dict[str, object]) -> bool:
        return (
            record.get("status") == "error"
            and record.get("failure_kind") == "transient"
        )

    def _execute_with_retries(
        self, payload: Dict[str, object]
    ) -> Tuple[Dict[str, object], int]:
        """Run a payload in-process, retrying transient failures.

        Deterministic failures return immediately; transient ones are
        re-executed up to ``max_retries`` times under the deterministic
        backoff schedule.  A checkpointed payload resumes from its last
        checkpoint on each retry (``execute_payload`` reads the file).
        Returns ``(record, retries_consumed)``.
        """
        record = execute_payload(payload)
        retries = 0
        if not self._transient_error(record) or self.max_retries <= 0:
            return record, retries
        for delay in backoff_schedule(self.retry_backoff_base, self.max_retries):
            retries += 1
            self._count("retries")
            if delay > 0:
                time.sleep(delay)
            record = execute_payload(payload)
            if not self._transient_error(record):
                break
        return record, retries

    def _cache_get(self, key: str):
        """A usable cache entry for this executor, or ``None``.

        A materialising executor must not replay entries stored without
        an instance — ``require_instance`` turns those into misses.
        """
        assert self.cache is not None
        return self.cache.get(key, require_instance=self.materialize)

    def _run_serial(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        tracer = self.tracer
        for job in jobs:
            start = time.perf_counter()
            mark = tracer.now() if tracer is not None else 0.0
            decision, budget, key = self._resolve(job)
            if tracer is not None:
                tracer.add_span(
                    "job.admission", mark, tracer.now(), args={"job": job.job_id}
                )
            if self.cache is not None:
                mark = tracer.now() if tracer is not None else 0.0
                entry = self._cache_get(key)
                if tracer is not None:
                    tracer.add_span(
                        "cache.lookup", mark, tracer.now(),
                        args={"job": job.job_id, "hit": entry is not None},
                    )
                if entry is not None:
                    yield self._hit(job, decision, key, entry, time.perf_counter() - start)
                    continue
            mark = tracer.now() if tracer is not None else 0.0
            payload, resumed_from = self._build_payload(job, budget, key=key)
            if tracer is not None:
                # Payload building is dominated by the database snapshot
                # encode (or the text serialisation fallback).
                tracer.add_span(
                    "snapshot.encode", mark, tracer.now(), args={"job": job.job_id}
                )
                mark = tracer.now()
            record, retries = self._execute_with_retries(payload)
            if tracer is not None:
                tracer.add_span(
                    "job.execute", mark, tracer.now(),
                    args={"job": job.job_id, "status": str(record["status"])},
                )
            yield self._wrap(
                job, decision, key, record, time.perf_counter() - start,
                resumed_from=resumed_from, retries=retries,
            )

    def _run_pool(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        jobs = list(jobs)
        tracer = self.tracer
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()

        def new_pool() -> ProcessPoolExecutor:
            # The initializer arms hard "kill" faults: only a real
            # worker process may honour one with os._exit.
            return ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=mark_worker_process,
            )

        pool = new_pool()
        # future -> mutable in-flight entry; entries survive their
        # future (a retry resubmits the same entry to a fresh future).
        pending: Dict[object, Dict[str, object]] = {}
        submitted_keys: set = set()
        duplicates: List[Tuple[ChaseJob, BudgetDecision, str]] = []
        # Pool-level collateral (a dead worker breaks every in-flight
        # future) is retried without consuming per-job budgets, bounded
        # globally so a crash-looping worker cannot respawn forever.
        respawns = 0
        max_respawns = max(8, 4 * self.workers)

        def submit(entry: Dict[str, object]) -> None:
            # A kill fault can break the pool *between* our bookkeeping
            # and this submit (or break the fresh replacement before we
            # reach it), in which case submit itself raises
            # BrokenProcessPool synchronously — respawn and retry here
            # too, under the same global budget.
            nonlocal pool, respawns
            while True:
                try:
                    future = pool.submit(execute_payload, entry["payload"])
                    break
                except BrokenProcessPool:
                    if respawns >= max_respawns:
                        raise
                    pool.shutdown(wait=False)
                    pool = new_pool()
                    respawns += 1
                    self._count("pool_respawns")
            entry["pool"] = pool
            entry.pop("running_since", None)
            pending[future] = entry
            if tracer is not None:
                entry["mark"] = tracer.now()

        def error_record(job: ChaseJob, exc: BaseException) -> Dict[str, object]:
            return {
                "job_id": job.job_id,
                "status": "error",
                "summary": None,
                "worker_seconds": None,
                "instance_text": None,
                "error": f"{type(exc).__name__}: {exc}",
                "failure_kind": classify_failure(exc),
            }

        try:
            for job in jobs:
                start = time.perf_counter()
                decision, budget, key = self._resolve(job)
                if self.cache is not None:
                    entry = self._cache_get(key)
                    if entry is not None:
                        yield self._hit(job, decision, key, entry, time.perf_counter() - start)
                        continue
                    if key in submitted_keys:
                        # An identical job is already in flight: replay
                        # its result once it lands instead of racing it.
                        duplicates.append((job, decision, key))
                        continue
                    submitted_keys.add(key)
                payload, resumed_from = self._build_payload(job, budget, key=key)
                submit({
                    "job": job, "decision": decision, "key": key, "start": start,
                    "resumed_from": resumed_from, "payload": payload, "retries": 0,
                })
            watchdog = self.stuck_timeout_seconds
            tick = None if watchdog is None else max(0.05, min(0.5, watchdog / 4.0))
            while pending:
                done, _ = wait(set(pending), timeout=tick, return_when=FIRST_COMPLETED)
                if not done:
                    # Watchdog tick: a future that has been *running*
                    # (not queued) past the stuck budget means a wedged
                    # worker — recycle the pool's processes; the broken
                    # futures surface below and retry from their
                    # checkpoints.
                    now = time.monotonic()
                    stuck = False
                    for future, entry in pending.items():
                        if entry["pool"] is not pool or not future.running():  # type: ignore[attr-defined]
                            continue
                        since = entry.setdefault("running_since", now)
                        if now - since > watchdog:  # type: ignore[operator]
                            stuck = True
                    if stuck:
                        self._count("stuck_recycles")
                        for process in list(getattr(pool, "_processes", {}).values()):
                            process.terminate()
                    continue
                resubmit: List[Dict[str, object]] = []
                for future in done:
                    entry = pending.pop(future)
                    job = entry["job"]  # type: ignore[assignment]
                    broken = False
                    try:
                        record = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        record = error_record(job, exc)
                    except Exception as exc:  # noqa: BLE001 - a dead worker
                        # costs a bounded retry, not the rest of the batch.
                        record = error_record(job, exc)
                    if broken:
                        if entry["pool"] is pool:
                            # First casualty of this pool: respawn once;
                            # later casualties just resubmit to the
                            # replacement.
                            pool.shutdown(wait=False)
                            pool = new_pool()
                            respawns += 1
                            self._count("pool_respawns")
                        if respawns <= max_respawns:
                            resubmit.append(entry)
                            continue
                        # Respawn budget exhausted: fall through to the
                        # per-job retry accounting.
                    if (
                        self._transient_error(record)
                        and int(entry["retries"]) < self.max_retries  # type: ignore[call-overload]
                    ):
                        entry["retries"] = int(entry["retries"]) + 1  # type: ignore[call-overload]
                        self._count("retries")
                        resubmit.append(entry)
                        continue
                    if tracer is not None:
                        # Pool spans run submit-to-completion: they
                        # include queueing inside the pool, which is
                        # the latency the caller actually observes.
                        tracer.add_span(
                            "job.execute", entry.get("mark", 0.0), tracer.now(),
                            args={"job": job.job_id, "status": str(record["status"])},
                        )
                    yield self._wrap(
                        job, entry["decision"], entry["key"], record,  # type: ignore[arg-type]
                        time.perf_counter() - float(entry["start"]),  # type: ignore[arg-type]
                        resumed_from=entry["resumed_from"],  # type: ignore[arg-type]
                        retries=int(entry["retries"]),  # type: ignore[call-overload]
                    )
                for entry in resubmit:
                    submit(entry)
        finally:
            pool.shutdown(wait=True)
        for job, decision, key in duplicates:
            start = time.perf_counter()
            entry = self._cache_get(key) if self.cache is not None else None
            if entry is not None:
                yield self._hit(job, decision, key, entry, time.perf_counter() - start)
            else:  # the in-flight twin failed or timed out: run it here
                decision, budget, key = self._resolve(job)
                payload, resumed_from = self._build_payload(job, budget, key=key)
                record, retries = self._execute_with_retries(payload)
                yield self._wrap(
                    job, decision, key, record, time.perf_counter() - start,
                    resumed_from=resumed_from, retries=retries,
                )
