"""Batch executor: run many chase jobs, serially or across processes.

The executor is the runtime's scheduler.  For each job it

1. resolves the budget through the :class:`BudgetPolicy` (paper-derived
   auto-budgets, explicit, or default — see
   :mod:`repro.runtime.budget_policy`),
2. consults the :class:`ResultCache` and replays hits without running
   anything,
3. otherwise ships a plain-data payload (program/database text plus
   budget numbers — nothing with interpreter-local state such as
   interned null uids crosses a process boundary) to a worker, and
4. streams :class:`JobResult` records back as jobs finish, storing
   deterministic outcomes in the cache.

``workers <= 1`` selects the serial in-process mode, which yields
results in submission order and is bit-for-bit deterministic; larger
values use a ``multiprocessing`` pool (fork context where available)
and yield in completion order.  Per-job timeouts are enforced
cooperatively through the engine's ``max_seconds`` budget, which the
chase driver checks after every trigger application.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget, ChaseOutcome
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import database_to_text, instance_to_text, program_to_text
from repro.runtime.budget_policy import BudgetDecision, BudgetPolicy
from repro.runtime.cache import ResultCache, result_cache_key
from repro.runtime.jobs import ChaseJob


@dataclass
class JobResult:
    """The outcome of one scheduled job, with full provenance."""

    job_id: str
    status: str  # "ok" | "timeout" | "error"
    summary: Optional[Dict[str, object]]
    variant: str
    cache_hit: bool
    cache_key: str
    budget_provenance: Dict[str, object]
    wall_seconds: float
    worker_seconds: Optional[float] = None
    instance_text: Optional[str] = None
    error: Optional[str] = None
    tags: Tuple[str, ...] = ()

    @property
    def outcome(self) -> Optional[str]:
        return self.summary.get("outcome") if self.summary else None  # type: ignore[return-value]

    def as_dict(self) -> Dict[str, object]:
        """The JSONL row ``python -m repro batch`` emits."""
        return {
            "id": self.job_id,
            "status": self.status,
            "outcome": self.outcome,
            "summary": self.summary,
            "variant": self.variant,
            "cache": {"hit": self.cache_hit, "key": self.cache_key},
            "budget": self.budget_provenance,
            "wall_seconds": round(self.wall_seconds, 6),
            "worker_seconds": self.worker_seconds,
            "instance": self.instance_text,
            "error": self.error,
            "tags": list(self.tags),
        }

    def summary_json(self) -> str:
        """Canonical bytes of the summary (cache byte-identity checks)."""
        return json.dumps(self.summary, sort_keys=True)


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one job payload; module-level so it pickles into workers.

    The payload and the returned record are plain data: texts, numbers
    and dicts.  Program/database are re-parsed in the worker, which
    keeps null and term interning local to each process.  On the store
    engine (the default) a summary-only job never materialises atom
    objects at all: the chase runs on packed id tuples and only the
    plain-data summary crosses the process boundary; the instance is
    decoded to text solely when ``materialize`` asks for it.
    """
    try:
        program = parse_program(
            str(payload["program_text"]), name=str(payload.get("program_name", "Sigma"))
        )
        database = parse_database(str(payload["database_text"]))
        budget = ChaseBudget(**payload["budget"])  # type: ignore[arg-type]
        runner = VARIANT_RUNNERS[str(payload["variant"])]
        engine = payload.get("engine")
        start = time.perf_counter()
        result = runner(
            database,
            program,
            budget=budget,
            record_derivation=False,
            engine=str(engine) if engine else None,
        )
        record: Dict[str, object] = {
            "job_id": payload["job_id"],
            "status": (
                "timeout"
                if result.outcome is ChaseOutcome.TIME_BUDGET_EXCEEDED
                else "ok"
            ),
            "summary": result.summary(),
            "worker_seconds": round(time.perf_counter() - start, 6),
            "instance_text": (
                instance_to_text(result.instance) if payload.get("materialize") else None
            ),
            "error": None,
        }
        return record
    except Exception as exc:  # noqa: BLE001 - worker faults become job errors
        return {
            "job_id": payload.get("job_id", "?"),
            "status": "error",
            "summary": None,
            "worker_seconds": None,
            "instance_text": None,
            "error": f"{type(exc).__name__}: {exc}",
        }


@dataclass
class BatchExecutor:
    """Runs :class:`ChaseJob` batches against a policy and a cache."""

    workers: int = 1
    policy: BudgetPolicy = field(default_factory=BudgetPolicy)
    cache: Optional[ResultCache] = None
    materialize: bool = False
    per_job_timeout: Optional[float] = None
    #: Chase engine implementation ("store", "plans", "legacy"); None
    #: selects the library default.  Deliberately *not* part of the
    #: result cache key: the engines are equivalence-tested, so a
    #: summary replayed across engines is still correct.
    engine: Optional[str] = None

    # -- job preparation --------------------------------------------------

    def _resolve(self, job: ChaseJob) -> Tuple[BudgetDecision, ChaseBudget, str]:
        """Budget decision, effective budget (timeout folded in), cache key."""
        decision = self.policy.resolve(
            job.program, len(job.database), job.budget_mode, job.budget
        )
        key = result_cache_key(job, decision.budget)
        timeouts = [
            t
            for t in (decision.budget.max_seconds, job.timeout_seconds, self.per_job_timeout)
            if t is not None
        ]
        effective = (
            decision.budget.replace(max_seconds=min(timeouts))
            if timeouts
            else decision.budget
        )
        return decision, effective, key

    def _payload(self, job: ChaseJob, budget: ChaseBudget) -> Dict[str, object]:
        return {
            "job_id": job.job_id,
            "program_text": program_to_text(job.program),
            "program_name": job.program.name,
            "database_text": database_to_text(job.database),
            "variant": job.variant,
            "budget": budget.as_dict(),
            "materialize": self.materialize,
            "engine": self.engine,
        }

    def _wrap(
        self,
        job: ChaseJob,
        decision: BudgetDecision,
        key: str,
        record: Dict[str, object],
        wall_seconds: float,
    ) -> JobResult:
        result = JobResult(
            job_id=job.job_id,
            status=str(record["status"]),
            summary=record["summary"],  # type: ignore[arg-type]
            variant=job.variant,
            cache_hit=False,
            cache_key=key,
            budget_provenance=decision.provenance(),
            wall_seconds=wall_seconds,
            worker_seconds=record.get("worker_seconds"),  # type: ignore[arg-type]
            instance_text=record.get("instance_text"),  # type: ignore[arg-type]
            error=record.get("error"),  # type: ignore[arg-type]
            tags=job.tags,
        )
        if self.cache is not None and result.status == "ok" and result.summary is not None:
            self.cache.put(key, result.summary, result.instance_text)
        return result

    def _hit(
        self, job: ChaseJob, decision: BudgetDecision, key: str, entry, wall_seconds: float
    ) -> JobResult:
        return JobResult(
            job_id=job.job_id,
            status="ok",
            summary=entry.summary,
            variant=job.variant,
            cache_hit=True,
            cache_key=key,
            budget_provenance=decision.provenance(),
            wall_seconds=wall_seconds,
            worker_seconds=None,
            instance_text=entry.instance_text if self.materialize else None,
            tags=job.tags,
        )

    # -- execution --------------------------------------------------------

    def run(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        """Stream results as they complete (submission order when serial)."""
        if self.workers <= 1:
            yield from self._run_serial(jobs)
        else:
            yield from self._run_pool(jobs)

    def run_all(self, jobs: Iterable[ChaseJob]) -> List[JobResult]:
        """Run the whole batch and return the results as a list."""
        return list(self.run(jobs))

    def _cache_get(self, key: str):
        """A usable cache entry for this executor, or ``None``.

        A materialising executor must not replay entries stored without
        an instance — ``require_instance`` turns those into misses.
        """
        assert self.cache is not None
        return self.cache.get(key, require_instance=self.materialize)

    def _run_serial(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        for job in jobs:
            start = time.perf_counter()
            decision, budget, key = self._resolve(job)
            if self.cache is not None:
                entry = self._cache_get(key)
                if entry is not None:
                    yield self._hit(job, decision, key, entry, time.perf_counter() - start)
                    continue
            record = execute_payload(self._payload(job, budget))
            yield self._wrap(job, decision, key, record, time.perf_counter() - start)

    def _run_pool(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        jobs = list(jobs)
        pending: Dict[object, Tuple[ChaseJob, BudgetDecision, str, float]] = {}
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        submitted_keys: set = set()
        duplicates: List[Tuple[ChaseJob, BudgetDecision, str]] = []
        with ProcessPoolExecutor(max_workers=self.workers, mp_context=context) as pool:
            for job in jobs:
                start = time.perf_counter()
                decision, budget, key = self._resolve(job)
                if self.cache is not None:
                    entry = self._cache_get(key)
                    if entry is not None:
                        yield self._hit(job, decision, key, entry, time.perf_counter() - start)
                        continue
                    if key in submitted_keys:
                        # An identical job is already in flight: replay
                        # its result once it lands instead of racing it.
                        duplicates.append((job, decision, key))
                        continue
                    submitted_keys.add(key)
                future = pool.submit(execute_payload, self._payload(job, budget))
                pending[future] = (job, decision, key, start)
            outstanding = set(pending)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    job, decision, key, start = pending.pop(future)
                    try:
                        record = future.result()
                    except Exception as exc:  # noqa: BLE001 - a dead worker
                        # (OOM kill, BrokenProcessPool) costs one error
                        # row, not the rest of the batch.
                        record = {
                            "job_id": job.job_id,
                            "status": "error",
                            "summary": None,
                            "worker_seconds": None,
                            "instance_text": None,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    yield self._wrap(job, decision, key, record, time.perf_counter() - start)
        for job, decision, key in duplicates:
            start = time.perf_counter()
            entry = self._cache_get(key) if self.cache is not None else None
            if entry is not None:
                yield self._hit(job, decision, key, entry, time.perf_counter() - start)
            else:  # the in-flight twin failed or timed out: run it here
                decision, budget, key = self._resolve(job)
                record = execute_payload(self._payload(job, budget))
                yield self._wrap(job, decision, key, record, time.perf_counter() - start)
