"""Batch executor: run many chase jobs, serially or across processes.

The executor is the runtime's scheduler.  For each job it

1. resolves the budget through the :class:`BudgetPolicy` (paper-derived
   auto-budgets, explicit, or default — see
   :mod:`repro.runtime.budget_policy`),
2. consults the :class:`ResultCache` and replays hits without running
   anything,
3. otherwise ships a plain-data payload to a worker — the program as
   text, the database as a packed fact-store *snapshot*
   (:func:`~repro.runtime.jobs.encode_database_snapshot`; workers
   restore it and skip parse + intern entirely, and nothing with
   interpreter-local state such as interned null uids crosses a
   process boundary), and
4. streams :class:`JobResult` records back as jobs finish, storing
   deterministic outcomes in the cache.

With ``incremental=True`` the executor additionally recognises
"previous job + delta": cache misses consult the lineage index
(:func:`~repro.runtime.cache.lineage_cache_key`) for a snapshot of a
terminated run of the same program/variant/budget-policy over a
*subset* of the new database, and resume the chase from it with only
the delta facts (``resume_from``).  Resumed results report the same
instance/size/outcome as a cold run for the variants with
order-independent results, but their round/trigger statistics reflect
only the delta work — which is the point — so incremental mode is
opt-in for deployments that assert cold-run byte-identity.

``workers <= 1`` selects the serial in-process mode, which yields
results in submission order and is bit-for-bit deterministic; larger
values use a ``multiprocessing`` pool (fork context where available)
and yield in completion order.  Per-job timeouts are enforced
cooperatively through the engine's ``max_seconds`` budget, which the
chase driver checks after every trigger application.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.chase import VARIANT_RUNNERS
from repro.chase.engine import ChaseBudget, ChaseOutcome
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import (
    database_to_text,
    instance_to_text,
    program_to_text,
)
from repro.model.store import FactStore
from repro.obs.conformance import conformance_report
from repro.obs.probe import ChaseProbe
from repro.obs.profile import RuleProfiler
from repro.obs.trace import TraceRecorder
from repro.runtime.budget_policy import BudgetDecision, BudgetPolicy
from repro.runtime.cache import CacheEntry, ResultCache, lineage_cache_key, result_cache_key
from repro.runtime.jobs import ChaseJob


@dataclass
class JobResult:
    """The outcome of one scheduled job, with full provenance."""

    job_id: str
    status: str  # "ok" | "timeout" | "error"
    summary: Optional[Dict[str, object]]
    variant: str
    cache_hit: bool
    cache_key: str
    budget_provenance: Dict[str, object]
    wall_seconds: float
    worker_seconds: Optional[float] = None
    instance_text: Optional[str] = None
    error: Optional[str] = None
    tags: Tuple[str, ...] = ()
    #: Cache key of the snapshot this run resumed from (incremental
    #: re-chase), None for cold runs.
    resumed_from: Optional[str] = None

    @property
    def outcome(self) -> Optional[str]:
        return self.summary.get("outcome") if self.summary else None  # type: ignore[return-value]

    def as_dict(self) -> Dict[str, object]:
        """The JSONL row ``python -m repro batch`` emits."""
        return {
            "id": self.job_id,
            "status": self.status,
            "outcome": self.outcome,
            "summary": self.summary,
            "variant": self.variant,
            "cache": {"hit": self.cache_hit, "key": self.cache_key},
            "budget": self.budget_provenance,
            "wall_seconds": round(self.wall_seconds, 6),
            "worker_seconds": self.worker_seconds,
            "instance": self.instance_text,
            "error": self.error,
            "tags": list(self.tags),
            "resumed_from": self.resumed_from,
        }

    def summary_json(self) -> str:
        """Canonical bytes of the summary (cache byte-identity checks)."""
        return json.dumps(self.summary, sort_keys=True)


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one job payload; module-level so it pickles into workers.

    The payload and the returned record are plain data: texts, numbers,
    bytes and dicts — nothing with interpreter-local state (interned
    null uids) crosses a process boundary.  Three database shapes:

    * ``database_snapshot`` — packed store bytes; the worker restores
      the store and chases it directly, skipping parse + intern (the
      default for store-engine jobs);
    * ``database_text`` alone — the legacy text form, re-parsed here
      (non-store engines, and the ``ship_snapshots=False`` knob);
    * ``resume_snapshot`` + ``database_text`` — incremental re-chase:
      the snapshot is a previously terminated run, the text carries
      only the *delta* facts, and ``database_size`` is the full grown
      database's size for summary bookkeeping.

    On the store engine a summary-only job never materialises atom
    objects at all; the instance is decoded to text solely when
    ``materialize`` asks for it, and ``want_snapshot`` returns the
    terminated run's snapshot bytes (taken before any materialisation)
    for the cache's lineage index.
    """
    try:
        program = parse_program(
            str(payload["program_text"]), name=str(payload.get("program_name", "Sigma"))
        )
        snapshot_bytes = payload.get("database_snapshot")
        if snapshot_bytes is not None:
            database = FactStore.restore(snapshot_bytes)  # type: ignore[arg-type]
        else:
            database = parse_database(str(payload["database_text"]))
        budget = ChaseBudget(**payload["budget"])  # type: ignore[arg-type]
        runner = VARIANT_RUNNERS[str(payload["variant"])]
        engine = payload.get("engine")
        resume_snapshot = payload.get("resume_snapshot")
        database_size = payload.get("database_size")
        probe = ChaseProbe() if payload.get("telemetry") else None
        profiler = RuleProfiler() if payload.get("profile") else None
        start = time.perf_counter()
        result = runner(
            database,
            program,
            budget=budget,
            record_derivation=False,
            engine=str(engine) if engine else None,
            resume_from=resume_snapshot,
            database_size=int(database_size) if database_size is not None else None,
            probe=probe,
            profile=profiler,
        )
        status = (
            "timeout" if result.outcome is ChaseOutcome.TIME_BUDGET_EXCEEDED else "ok"
        )
        snapshot_out: Optional[bytes] = None
        if payload.get("want_snapshot") and status == "ok" and result.terminated:
            # Before reading .instance: materialisation releases the store.
            snapshot_out = result.store_snapshot()
        record: Dict[str, object] = {
            "job_id": payload["job_id"],
            "status": status,
            "summary": result.summary(),
            "worker_seconds": round(time.perf_counter() - start, 6),
            "instance_text": (
                instance_to_text(result.instance) if payload.get("materialize") else None
            ),
            "error": None,
            "snapshot": snapshot_out,
        }
        return record
    except Exception as exc:  # noqa: BLE001 - worker faults become job errors
        return {
            "job_id": payload.get("job_id", "?"),
            "status": "error",
            "summary": None,
            "worker_seconds": None,
            "instance_text": None,
            "error": f"{type(exc).__name__}: {exc}",
            "snapshot": None,
        }


@dataclass
class BatchExecutor:
    """Runs :class:`ChaseJob` batches against a policy and a cache."""

    workers: int = 1
    policy: BudgetPolicy = field(default_factory=BudgetPolicy)
    cache: Optional[ResultCache] = None
    materialize: bool = False
    per_job_timeout: Optional[float] = None
    #: Chase engine implementation ("store", "plans", "legacy"); None
    #: selects the library default.  Deliberately *not* part of the
    #: result cache key: the engines are equivalence-tested, so a
    #: summary replayed across engines is still correct.
    engine: Optional[str] = None
    #: Ship databases to workers as packed fact-store snapshots instead
    #: of text (store-engine jobs only) so workers skip parse + intern.
    #: Snapshots are encoded once per job and shared across retries and
    #: dedup re-runs (``ChaseJob.database_snapshot``).
    ship_snapshots: bool = True
    #: Opt-in incremental re-chase: on a cache miss, resume from a
    #: cached snapshot of "the same job over a smaller database" with
    #: only the delta facts, and store terminated runs' snapshots for
    #: future resumes.  Off by default because resumed summaries report
    #: delta-only round/trigger statistics (see the module docstring).
    incremental: bool = False
    #: Attach a round-level :class:`~repro.obs.probe.ChaseProbe` to
    #: every executed chase; its payload lands under
    #: ``summary["telemetry"]`` in the job result.  Telemetry is
    #: stripped before caching (wall times are non-deterministic), so
    #: replays stay byte-identical to unprobed runs.
    telemetry: bool = False
    #: Attach a per-rule :class:`~repro.obs.profile.RuleProfiler` to
    #: every executed chase; its payload lands under
    #: ``summary["profile"]``.  Stripped before caching for the same
    #: byte-identity reason as telemetry.
    profile: bool = False
    #: Stamp a paper-bound ``conformance`` block
    #: (:func:`~repro.obs.conformance.conformance_report`) into every
    #: SL/L/G summary.  Computed post-cache from the summary itself, so
    #: cached bytes stay identical and hits get the block too.
    conformance: bool = False
    #: Optional :class:`~repro.obs.trace.TraceRecorder`: when set, each
    #: executed job emits ``job.admission`` / ``cache.lookup`` /
    #: ``snapshot.encode`` / ``job.execute`` spans.  ``None`` (the
    #: default) keeps the run loops span-free.
    tracer: Optional[TraceRecorder] = None

    def __post_init__(self) -> None:
        # Wire the tracer into the cache so ``cache.write`` /
        # ``cache.compact`` spans land in the same trace without every
        # caller having to remember the second hookup.
        if self.cache is not None and self.tracer is not None:
            self.cache.tracer = self.tracer

    # -- job preparation --------------------------------------------------

    def _resolve(self, job: ChaseJob) -> Tuple[BudgetDecision, ChaseBudget, str]:
        """Budget decision, effective budget (timeout folded in), cache key."""
        decision = self.policy.resolve(
            job.program,
            len(job.database),
            job.budget_mode,
            job.budget,
            database=job.database,
            variant=job.variant,
        )
        key = result_cache_key(job, decision.budget)
        # A provably terminating job cannot run forever, so the daemon's
        # blanket per-job wall ceiling is dead weight: skip folding it
        # and let the analysis-derived depth/atom budget do the work.
        # Job-level explicit timeouts are still honoured.
        daemon_ceiling = (
            None if decision.verdict == "terminating" else self.per_job_timeout
        )
        timeouts = [
            t
            for t in (decision.budget.max_seconds, job.timeout_seconds, daemon_ceiling)
            if t is not None
        ]
        effective = (
            decision.budget.replace(max_seconds=min(timeouts))
            if timeouts
            else decision.budget
        )
        return decision, effective, key

    def _snapshot_capable(self) -> bool:
        """Snapshots require the store engine (the default)."""
        return self.engine in (None, "store")

    def _payload(
        self, job: ChaseJob, budget: ChaseBudget, include_database: bool = True
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job_id": job.job_id,
            "program_text": program_to_text(job.program),
            "program_name": job.program.name,
            "variant": job.variant,
            "budget": budget.as_dict(),
            "materialize": self.materialize,
            "engine": self.engine,
        }
        if include_database:
            if self.ship_snapshots and self._snapshot_capable():
                payload["database_snapshot"] = job.database_snapshot
            else:
                payload["database_text"] = database_to_text(job.database)
        if self.incremental and self.cache is not None and self._snapshot_capable():
            payload["want_snapshot"] = True
        if self.telemetry:
            payload["telemetry"] = True
        if self.profile:
            payload["profile"] = True
        return payload

    def _resume_base(self, job: ChaseJob) -> Optional[Tuple["CacheEntry", List[str]]]:
        """A cached snapshot this job can resume from, plus the delta.

        Returns ``(entry, delta_lines)`` when the cache holds a
        terminated run of the job's lineage whose base database is a
        subset of the job's — the "previous job + delta" shape — and
        ``None`` otherwise.
        """
        if not self.incremental or self.cache is None or not self._snapshot_capable():
            return None
        entry = self.cache.snapshot_for(lineage_cache_key(job))
        if entry is None or entry.snapshot is None or entry.database_lines is None:
            return None
        new_lines = job.database_lines
        base = set(entry.database_lines)
        if not base.issubset(new_lines):
            return None
        return entry, [line for line in new_lines if line not in base]

    def _resume_payload(
        self, job: ChaseJob, budget: ChaseBudget, entry: "CacheEntry", delta: List[str]
    ) -> Dict[str, object]:
        # The cold payload minus the database, plus the resume fields —
        # so any future payload knob automatically covers resumed runs.
        payload = self._payload(job, budget, include_database=False)
        payload["database_text"] = "\n".join(delta)
        payload["resume_snapshot"] = entry.snapshot
        payload["database_size"] = len(job.database)
        payload["want_snapshot"] = self.cache is not None
        return payload

    def _build_payload(
        self, job: ChaseJob, budget: ChaseBudget
    ) -> Tuple[Dict[str, object], Optional[str]]:
        """The payload to execute, plus the resumed-from key (if any)."""
        base = self._resume_base(job)
        if base is not None:
            entry, delta = base
            return self._resume_payload(job, budget, entry, delta), entry.key
        return self._payload(job, budget), None

    def _wrap(
        self,
        job: ChaseJob,
        decision: BudgetDecision,
        key: str,
        record: Dict[str, object],
        wall_seconds: float,
        resumed_from: Optional[str] = None,
    ) -> JobResult:
        result = JobResult(
            job_id=job.job_id,
            status=str(record["status"]),
            summary=record["summary"],  # type: ignore[arg-type]
            variant=job.variant,
            cache_hit=False,
            cache_key=key,
            budget_provenance=decision.provenance(),
            wall_seconds=wall_seconds,
            worker_seconds=record.get("worker_seconds"),  # type: ignore[arg-type]
            instance_text=record.get("instance_text"),  # type: ignore[arg-type]
            error=record.get("error"),  # type: ignore[arg-type]
            tags=job.tags,
            resumed_from=resumed_from,
        )
        if self.cache is not None and result.status == "ok" and result.summary is not None:
            # Telemetry carries wall-clock round timings, which are not
            # deterministic; cached summaries must replay byte-identical
            # to an unprobed cold run, so the key is stripped before the
            # store (the caller's JobResult keeps it).
            cache_summary = result.summary
            if "telemetry" in cache_summary or "profile" in cache_summary:
                cache_summary = {
                    k: v
                    for k, v in cache_summary.items()
                    if k not in ("telemetry", "profile")
                }
            snapshot = record.get("snapshot")
            if resumed_from is not None:
                # A resumed run's statistics — and, under a tight round
                # budget, even its outcome — can differ from what a
                # cold execution of the same job would report, so it
                # must never become a replayable entry under the cold
                # result key.  Its snapshot still chains the lineage
                # (stored under a "delta:" key no result lookup ever
                # asks for).
                if snapshot is not None:
                    self.cache.put(
                        "delta:" + key,
                        cache_summary,
                        result.instance_text,
                        snapshot=snapshot,  # type: ignore[arg-type]
                        database_lines=job.database_lines,
                        lineage=lineage_cache_key(job),
                    )
            elif snapshot is not None:
                # A terminated cold run: replayable result and the
                # freshest incremental base of its lineage in one entry.
                self.cache.put(
                    key,
                    cache_summary,
                    result.instance_text,
                    snapshot=snapshot,  # type: ignore[arg-type]
                    database_lines=job.database_lines,
                    lineage=lineage_cache_key(job),
                )
            else:
                self.cache.put(key, cache_summary, result.instance_text)
        self._stamp_conformance(job, result)
        return result

    def _stamp_conformance(self, job: ChaseJob, result: JobResult) -> None:
        """Attach the paper-bound conformance block to ``result``.

        Runs strictly *after* caching so the stored bytes never carry
        the block; the block itself is deterministic (class + bounds +
        observed counts), so hits and cold runs agree.
        """
        if not self.conformance or result.summary is None:
            return
        block = conformance_report(result.summary, job.program)
        if block is None:
            return
        result.summary = dict(result.summary)
        result.summary["conformance"] = block

    def _hit(
        self, job: ChaseJob, decision: BudgetDecision, key: str, entry, wall_seconds: float
    ) -> JobResult:
        result = JobResult(
            job_id=job.job_id,
            status="ok",
            summary=entry.summary,
            variant=job.variant,
            cache_hit=True,
            cache_key=key,
            budget_provenance=decision.provenance(),
            wall_seconds=wall_seconds,
            worker_seconds=None,
            instance_text=entry.instance_text if self.materialize else None,
            tags=job.tags,
        )
        self._stamp_conformance(job, result)
        return result

    # -- execution --------------------------------------------------------

    def run(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        """Stream results as they complete (submission order when serial)."""
        if self.workers <= 1:
            yield from self._run_serial(jobs)
        else:
            yield from self._run_pool(jobs)

    def run_all(self, jobs: Iterable[ChaseJob]) -> List[JobResult]:
        """Run the whole batch and return the results as a list."""
        return list(self.run(jobs))

    def _cache_get(self, key: str):
        """A usable cache entry for this executor, or ``None``.

        A materialising executor must not replay entries stored without
        an instance — ``require_instance`` turns those into misses.
        """
        assert self.cache is not None
        return self.cache.get(key, require_instance=self.materialize)

    def _run_serial(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        tracer = self.tracer
        for job in jobs:
            start = time.perf_counter()
            mark = tracer.now() if tracer is not None else 0.0
            decision, budget, key = self._resolve(job)
            if tracer is not None:
                tracer.add_span(
                    "job.admission", mark, tracer.now(), args={"job": job.job_id}
                )
            if self.cache is not None:
                mark = tracer.now() if tracer is not None else 0.0
                entry = self._cache_get(key)
                if tracer is not None:
                    tracer.add_span(
                        "cache.lookup", mark, tracer.now(),
                        args={"job": job.job_id, "hit": entry is not None},
                    )
                if entry is not None:
                    yield self._hit(job, decision, key, entry, time.perf_counter() - start)
                    continue
            mark = tracer.now() if tracer is not None else 0.0
            payload, resumed_from = self._build_payload(job, budget)
            if tracer is not None:
                # Payload building is dominated by the database snapshot
                # encode (or the text serialisation fallback).
                tracer.add_span(
                    "snapshot.encode", mark, tracer.now(), args={"job": job.job_id}
                )
                mark = tracer.now()
            record = execute_payload(payload)
            if tracer is not None:
                tracer.add_span(
                    "job.execute", mark, tracer.now(),
                    args={"job": job.job_id, "status": str(record["status"])},
                )
            yield self._wrap(
                job, decision, key, record, time.perf_counter() - start,
                resumed_from=resumed_from,
            )

    def _run_pool(self, jobs: Iterable[ChaseJob]) -> Iterator[JobResult]:
        jobs = list(jobs)
        tracer = self.tracer
        pending: Dict[
            object, Tuple[ChaseJob, BudgetDecision, str, float, Optional[str]]
        ] = {}
        submit_marks: Dict[object, float] = {}
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        submitted_keys: set = set()
        duplicates: List[Tuple[ChaseJob, BudgetDecision, str]] = []
        with ProcessPoolExecutor(max_workers=self.workers, mp_context=context) as pool:
            for job in jobs:
                start = time.perf_counter()
                decision, budget, key = self._resolve(job)
                if self.cache is not None:
                    entry = self._cache_get(key)
                    if entry is not None:
                        yield self._hit(job, decision, key, entry, time.perf_counter() - start)
                        continue
                    if key in submitted_keys:
                        # An identical job is already in flight: replay
                        # its result once it lands instead of racing it.
                        duplicates.append((job, decision, key))
                        continue
                    submitted_keys.add(key)
                payload, resumed_from = self._build_payload(job, budget)
                future = pool.submit(execute_payload, payload)
                pending[future] = (job, decision, key, start, resumed_from)
                if tracer is not None:
                    submit_marks[future] = tracer.now()
            outstanding = set(pending)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    job, decision, key, start, resumed_from = pending.pop(future)
                    try:
                        record = future.result()
                    except Exception as exc:  # noqa: BLE001 - a dead worker
                        # (OOM kill, BrokenProcessPool) costs one error
                        # row, not the rest of the batch.
                        record = {
                            "job_id": job.job_id,
                            "status": "error",
                            "summary": None,
                            "worker_seconds": None,
                            "instance_text": None,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    if tracer is not None:
                        # Pool spans run submit-to-completion: they
                        # include queueing inside the pool, which is
                        # the latency the caller actually observes.
                        tracer.add_span(
                            "job.execute", submit_marks.pop(future), tracer.now(),
                            args={"job": job.job_id, "status": str(record["status"])},
                        )
                    yield self._wrap(
                        job, decision, key, record, time.perf_counter() - start,
                        resumed_from=resumed_from,
                    )
        for job, decision, key in duplicates:
            start = time.perf_counter()
            entry = self._cache_get(key) if self.cache is not None else None
            if entry is not None:
                yield self._hit(job, decision, key, entry, time.perf_counter() - start)
            else:  # the in-flight twin failed or timed out: run it here
                decision, budget, key = self._resolve(job)
                payload, resumed_from = self._build_payload(job, budget)
                record = execute_payload(payload)
                yield self._wrap(
                    job, decision, key, record, time.perf_counter() - start,
                    resumed_from=resumed_from,
                )
