"""Machine-readable benchmark history and regression comparison.

Every ``bench-*`` report is regenerated per PR, but until now the
previous numbers were gone the moment the artifact was overwritten —
regressions were only caught by the coarse quick-mode gates.  This
module gives each report a durable trail: one schema-versioned JSON
line per run appended to ``benchmarks/history.jsonl`` (experiment, git
SHA, per-row wall-second metrics, telemetry/profile overheads), plus a
comparator that pairs the rows of two entries and flags per-row
slowdowns beyond a noise threshold.

The comparison is a *soft* gate by design: benchmark runners (CI
machines especially) are noisy, so a flagged regression is a prompt to
look at the uploaded artifacts, not an automatic failure.  Callers
that want a hard verdict (the CI smoke that injects a synthetic 2×
slowdown to prove detection works) opt in via
``exit_code=`` / ``--fail-on-regression``.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_THRESHOLD",
    "git_sha",
    "row_metrics",
    "history_entry",
    "append_history",
    "load_history",
    "compare_entries",
    "format_history",
    "format_comparison",
]

HISTORY_SCHEMA_VERSION = 1

DEFAULT_HISTORY_PATH = "benchmarks/history.jsonl"

#: Per-row slowdown tolerated before a metric is flagged (15%).
DEFAULT_THRESHOLD = 0.15

#: Row fields that identify *what* was measured (vs how long it took);
#: together with ``label`` they form the pairing key between entries.
_IDENTITY_FIELDS = (
    "workload",
    "variant",
    "engine",
    "layout",
    "family",
    "jobs",
    "workers",
    "clients",
    "big",
)


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git HEAD SHA, or ``None`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def _row_key(row: Mapping[str, object], ordinal: int) -> str:
    parts = [str(row.get("label", f"row{ordinal}"))]
    for field in _IDENTITY_FIELDS:
        if field in row:
            parts.append(f"{field}={row[field]}")
    return " ".join(parts)


def row_metrics(row: Mapping[str, object]) -> Dict[str, float]:
    """The comparable metrics of one flat report row.

    Wall-second fields (``seconds``, ``*_seconds``) and instrumentation
    overhead ratios (``*_overhead``) — the numbers whose growth means a
    regression.  Throughput-style fields are deliberately excluded:
    comparing seconds once is enough, and higher-is-better metrics
    would need inverted thresholds.
    """
    metrics: Dict[str, float] = {}
    for key, value in row.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key == "seconds" or key.endswith("_seconds") or key.endswith("_overhead"):
            metrics[key] = float(value)
    return metrics


def history_entry(
    report: Mapping[str, object],
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """One history line for a ``write_*_report`` payload."""
    rows = report.get("rows") or []
    entry_rows = []
    for ordinal, row in enumerate(rows):
        metrics = row_metrics(row)
        if not metrics:
            continue
        entry_rows.append({"key": _row_key(row, ordinal), "metrics": metrics})
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "experiment": report.get("experiment"),
        "git_sha": sha if sha is not None else git_sha(),
        "timestamp": round(timestamp if timestamp is not None else time.time(), 3),
        "python": report.get("python"),
        "rows": entry_rows,
    }


def append_history(
    report: Mapping[str, object],
    path: str = DEFAULT_HISTORY_PATH,
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """Append one entry for ``report`` to the JSONL file at ``path``."""
    entry = history_entry(report, sha=sha, timestamp=timestamp)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str = DEFAULT_HISTORY_PATH) -> List[Dict[str, object]]:
    """All history entries at ``path`` in append order (oldest first).

    Tolerates a missing file and skips corrupt or foreign-schema lines
    (a newer writer's rows are not comparable) instead of failing the
    whole read — history is an append-only log that survives schema
    bumps.
    """
    target = Path(path)
    if not target.exists():
        return []
    entries: List[Dict[str, object]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(entry, dict):
            continue
        if entry.get("schema") != HISTORY_SCHEMA_VERSION:
            continue
        entries.append(entry)
    return entries


def compare_entries(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Per-row metric deltas of ``current`` against ``baseline``.

    A metric regresses when ``current > baseline · (1 + threshold)``;
    the ratio is reported either way so improvements are visible too.
    Rows or metrics present on only one side are listed under
    ``unmatched`` (a structure change, not a regression).
    """
    baseline_rows = {row["key"]: row["metrics"] for row in baseline.get("rows", [])}
    current_rows = {row["key"]: row["metrics"] for row in current.get("rows", [])}
    deltas: List[Dict[str, object]] = []
    regressions: List[Dict[str, object]] = []
    unmatched: List[str] = []
    for key in sorted(set(baseline_rows) | set(current_rows)):
        base_metrics = baseline_rows.get(key)
        cur_metrics = current_rows.get(key)
        if base_metrics is None or cur_metrics is None:
            unmatched.append(key)
            continue
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            base = base_metrics.get(metric)
            cur = cur_metrics.get(metric)
            if base is None or cur is None:
                unmatched.append(f"{key} :: {metric}")
                continue
            ratio = cur / base if base > 0 else (1.0 if cur == base else float("inf"))
            delta = {
                "row": key,
                "metric": metric,
                "baseline": base,
                "current": cur,
                "ratio": round(ratio, 4) if ratio != float("inf") else "inf",
                "regressed": bool(ratio > 1.0 + threshold),
            }
            deltas.append(delta)
            if delta["regressed"]:
                regressions.append(delta)
    return {
        "experiment": current.get("experiment"),
        "baseline_sha": baseline.get("git_sha"),
        "current_sha": current.get("git_sha"),
        "threshold": threshold,
        "rows_compared": len(set(baseline_rows) & set(current_rows)),
        "deltas": deltas,
        "regressions": regressions,
        "unmatched": unmatched,
    }


def format_history(entries: Sequence[Mapping[str, object]], limit: int = 20) -> str:
    """Render the newest ``limit`` history entries as a text table."""
    shown = list(entries)[-max(limit, 0):]
    if not shown:
        return "(no history entries)"
    lines = [f"{'when':<20} {'experiment':<24} {'sha':<12} {'rows':>5} {'total_s':>9}"]
    lines.append("-" * len(lines[0]))
    for entry in shown:
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(float(entry.get("timestamp", 0)))
        )
        sha = str(entry.get("git_sha") or "-")[:12]
        rows = entry.get("rows", [])
        total = sum(
            value
            for row in rows
            for name, value in row.get("metrics", {}).items()
            if name == "seconds" or name.endswith("_seconds")
        )
        lines.append(
            f"{when:<20} {str(entry.get('experiment'))[:24]:<24} {sha:<12} "
            f"{len(rows):>5} {total:>9.3f}"
        )
    return "\n".join(lines)


def format_comparison(comparison: Mapping[str, object]) -> str:
    """Render a :func:`compare_entries` result for terminals and CI logs."""
    lines = [
        f"experiment: {comparison.get('experiment')}",
        f"baseline:   {comparison.get('baseline_sha') or '-'}",
        f"current:    {comparison.get('current_sha') or '-'}",
        f"rows compared: {comparison.get('rows_compared')} "
        f"(threshold {float(comparison.get('threshold', 0)) * 100:.0f}%)",
    ]
    regressions = comparison.get("regressions", [])
    if regressions:
        lines.append(f"REGRESSIONS ({len(regressions)}):")
        for delta in regressions:
            lines.append(
                f"  {delta['row']} :: {delta['metric']}: "
                f"{delta['baseline']} -> {delta['current']} ({delta['ratio']}x)"
            )
    else:
        lines.append("no regressions beyond threshold")
    unmatched = comparison.get("unmatched", [])
    if unmatched:
        lines.append(f"unmatched rows/metrics: {len(unmatched)} (structure changed)")
    return "\n".join(lines)
