"""Observability: metrics registry, chase probe, trace spans.

Stdlib-only. Everything is opt-in; the disabled configurations
(:data:`NULL_REGISTRY`, ``probe=None``, ``tracer=None``) are designed
to keep hot paths byte-identical and within noise of un-instrumented
builds — see ``docs/ARCHITECTURE.md`` for the reasoning.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_REGISTRY,
    histogram_consistency_errors,
    parse_prometheus_text,
)
from .benchhist import (
    append_history,
    compare_entries,
    format_comparison,
    format_history,
    load_history,
)
from .conformance import conformance_report, record_conformance
from .probe import ChaseProbe, RoundSample
from .profile import RuleProfiler, format_profile_table, top_rules
from .trace import TraceRecorder, load_trace, summarize_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_prometheus_text",
    "histogram_consistency_errors",
    "ChaseProbe",
    "RoundSample",
    "TraceRecorder",
    "load_trace",
    "summarize_trace",
    "RuleProfiler",
    "top_rules",
    "format_profile_table",
    "conformance_report",
    "record_conformance",
    "append_history",
    "load_history",
    "compare_entries",
    "format_history",
    "format_comparison",
]
