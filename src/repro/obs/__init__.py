"""Observability: metrics registry, chase probe, trace spans.

Stdlib-only. Everything is opt-in; the disabled configurations
(:data:`NULL_REGISTRY`, ``probe=None``, ``tracer=None``) are designed
to keep hot paths byte-identical and within noise of un-instrumented
builds — see ``docs/ARCHITECTURE.md`` for the reasoning.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_REGISTRY,
    histogram_consistency_errors,
    parse_prometheus_text,
)
from .probe import ChaseProbe, RoundSample
from .trace import TraceRecorder, load_trace, summarize_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_prometheus_text",
    "histogram_consistency_errors",
    "ChaseProbe",
    "RoundSample",
    "TraceRecorder",
    "load_trace",
    "summarize_trace",
]
