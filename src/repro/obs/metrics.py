"""Thread-safe metrics registry with Prometheus text exposition.

Three metric kinds, the minimum a service dashboard needs:

* :class:`Counter` — monotone event totals (jobs executed, cache hits),
* :class:`Gauge` — point-in-time levels (queue depth, retained records),
* :class:`Histogram` — fixed-bucket distributions (request latency).

A :class:`MetricsRegistry` hands out metric *children* keyed by
``(family name, label items)`` and renders the whole registry in the
Prometheus text exposition format (``render``); the module also ships
the inverse, :func:`parse_prometheus_text`, used by the test-suite's
round-trip checks and the CI scrape smoke.

Disabled mode costs nothing.  :data:`NULL_REGISTRY` is a process-wide
no-op singleton: every accessor returns a shared null metric whose
``inc``/``set``/``observe`` are empty methods, so instrumented call
sites stay unconditional (no ``if telemetry:`` branches) while the
disabled hot path does no locking, no allocation and no arithmetic.
Code that *reads* metrics (the ``/metrics`` endpoint) checks
``registry.enabled`` instead.

Everything here is stdlib-only and safe under free threading: each
metric owns one lock taken for a handful of arithmetic operations, and
the registry lock is only taken on child creation and render.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_prometheus_text",
]

#: Default histogram buckets, tuned for HTTP/job latencies in seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Canonical label identity: sorted ``(name, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style number formatting: integers without the ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in items)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    def set_to(self, value: float) -> None:
        """Mirror an externally maintained monotone counter.

        The ``/metrics`` endpoint uses this at scrape time to project
        counters that already exist elsewhere (scheduler stats, cache
        stats) into the registry without double-instrumenting their hot
        paths.  Regressing the value raises: that would break every
        ``rate()`` a scraper computes.
        """
        with self._lock:
            if value < self._value:
                raise ValueError(
                    f"counter mirror regressed: {value} < {self._value}"
                )
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str, key: LabelKey) -> List[str]:
        return [f"{name}{_render_labels(key)} {_format_value(self.value)}"]


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str, key: LabelKey) -> List[str]:
        return [f"{name}{_render_labels(key)} {_format_value(self.value)}"]


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus exposition.

    Buckets are upper bounds (``observe(v)`` lands in the first bucket
    with ``v <= bound``); the implicit ``+Inf`` bucket catches the
    rest.  Bounds are fixed at construction — no resizing, no
    allocation on the observe path.
    """

    kind = "histogram"
    __slots__ = ("bounds", "_counts", "_sum", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Tuple[List[int], float]:
        """Consistent (per-bucket counts, sum) pair."""
        with self._lock:
            return list(self._counts), self._sum

    def samples(self, name: str, key: LabelKey) -> List[str]:
        counts, total = self.snapshot()
        lines: List[str] = []
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            labels = _render_labels(key, [("le", _format_value(bound))])
            lines.append(f"{name}_bucket{labels} {cumulative}")
        cumulative += counts[-1]
        lines.append(f"{name}_bucket{_render_labels(key, [('le', '+Inf')])} {cumulative}")
        lines.append(f"{name}_sum{_render_labels(key)} {_format_value(total)}")
        lines.append(f"{name}_count{_render_labels(key)} {cumulative}")
        return lines


class _Family:
    """One metric name: kind, help text, and children per label set."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str, buckets) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Get-or-create metric families and render them for scraping."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(
        self, name: str, kind: str, help_text: str, buckets=None
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}, "
                    f"cannot re-register as a {kind}"
                )
            return family

    def _child(self, family: _Family, labels: Optional[Mapping[str, str]]):
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                if family.kind == "counter":
                    child = Counter()
                elif family.kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(family.buckets or DEFAULT_LATENCY_BUCKETS)
                family.children[key] = child
            return child

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._child(self._family(name, "counter", help_text), labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._child(self._family(name, "gauge", help_text), labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._child(self._family(name, "histogram", help_text, buckets), labels)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format.

        Families sort by name and children by label key, so two renders
        of the same state are byte-identical (scrape diffing works).
        """
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
            children = {
                family.name: sorted(family.children.items()) for family in families
            }
        lines: List[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in children[family.name]:
                lines.extend(child.samples(family.name, key))
        return "\n".join(lines) + "\n" if lines else ""


class _NullMetric:
    """Shared do-nothing metric: every mutator is a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_to(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """The disabled registry: a singleton of no-ops.

    Instrumented code calls ``registry.counter(...).inc()``
    unconditionally; with this registry installed the whole chain is
    two attribute lookups and an empty method — no locks, no dict
    writes, no per-call allocation — and ``render()`` is empty.
    """

    enabled = False

    def counter(self, name, help_text="", labels=None) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name, help_text="", labels=None) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name, help_text="", labels=None, buckets=None) -> _NullMetric:
        return _NULL_METRIC

    def render(self) -> str:
        return ""


NULL_REGISTRY = NullMetricsRegistry()


# -- exposition parsing (tests + CI smoke) ---------------------------------


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>\S+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse text exposition into ``{family: {type, help, samples}}``.

    ``samples`` maps ``(sample name, label key)`` to a float value,
    where the sample name keeps the ``_bucket``/``_sum``/``_count``
    suffixes and the label key is the sorted ``(name, value)`` tuple.
    This is the verifier for :meth:`MetricsRegistry.render` (and the
    CI scrape smoke), not a general-purpose Prometheus client.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        return sample_name

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        sample_name = match.group("name")
        labels_text = match.group("labels") or ""
        labels: List[Tuple[str, str]] = []
        consumed = 0
        for pair in _LABEL_PAIR_RE.finditer(labels_text):
            labels.append((pair.group(1), _unescape_label_value(pair.group(2))))
            consumed = pair.end()
        leftover = labels_text[consumed:].strip().strip(",")
        if leftover:
            raise ValueError(f"unparseable label text {labels_text!r} in {raw!r}")
        raw_value = match.group("value")
        value = {"+Inf": math.inf, "-Inf": -math.inf}.get(raw_value)
        if value is None:
            value = float(raw_value)
        family = families.setdefault(
            family_of(sample_name), {"type": None, "help": None, "samples": {}}
        )
        family["samples"][(sample_name, tuple(sorted(labels)))] = value  # type: ignore[index]
    return families


def histogram_consistency_errors(
    families: Mapping[str, Mapping[str, object]]
) -> List[str]:
    """Structural checks on parsed histograms (used by tests and CI).

    For every histogram family: bucket counts must be monotonically
    non-decreasing in ``le`` order, the ``+Inf`` bucket must equal
    ``_count``, and ``_sum`` must be present.  Returns human-readable
    problem strings (empty = consistent).
    """
    problems: List[str] = []
    for name, family in families.items():
        if family.get("type") != "histogram":
            continue
        samples: Mapping[Tuple[str, tuple], float] = family["samples"]  # type: ignore[assignment]
        series: Dict[tuple, List[Tuple[float, float]]] = {}
        counts: Dict[tuple, float] = {}
        sums: Dict[tuple, float] = {}
        for (sample_name, labels), value in samples.items():
            if sample_name == f"{name}_bucket":
                bound_text = dict(labels)["le"]
                bound = math.inf if bound_text == "+Inf" else float(bound_text)
                rest = tuple(item for item in labels if item[0] != "le")
                series.setdefault(rest, []).append((bound, value))
            elif sample_name == f"{name}_count":
                counts[labels] = value
            elif sample_name == f"{name}_sum":
                sums[labels] = value
        for labels, buckets in series.items():
            buckets.sort()
            values = [v for _, v in buckets]
            if any(b > a for a, b in zip(values[1:], values)):
                problems.append(f"{name}{dict(labels)}: bucket counts not cumulative")
            if not buckets or buckets[-1][0] != math.inf:
                problems.append(f"{name}{dict(labels)}: missing +Inf bucket")
            elif counts.get(labels) != buckets[-1][1]:
                problems.append(
                    f"{name}{dict(labels)}: _count {counts.get(labels)} != "
                    f"+Inf bucket {buckets[-1][1]}"
                )
            if labels not in sums:
                problems.append(f"{name}{dict(labels)}: missing _sum")
    return problems
