"""Per-rule attribution profiling for the chase engine drivers.

A :class:`RuleProfiler` rides along a single chase run and answers the
question the round-level :class:`~repro.obs.probe.ChaseProbe` cannot:
*which rule* is eating the time.  The drivers attribute three phases to
rules:

compile
    Each rule's plan compilation inside the trigger pipeline
    (:class:`~repro.chase.store_plan.StoreTriggerPipeline` /
    :class:`~repro.chase.plan.TriggerPipeline`), timed per rule at
    construction.
enumerate
    Trigger enumeration.  Pending lists are built rule-major (the
    pipelines walk rules, then their delta entries, in registration
    order), so the pipelines stamp a clock only at rule *boundaries*
    and accumulate the elapsed segment into the producing rule.
apply
    The driver's apply loop.  Pending lists stay contiguous per rule,
    so the drivers again time contiguous rule segments — one
    ``perf_counter()`` pair per boundary change, never per trigger —
    which is what keeps the profiled overhead under the benchmark's
    1.10x gate while still attributing ≥ 90% of driver wall time.

Trigger counters (considered / fired / pruned) and produced facts are
exact per rule.  Nulls invented are exact on the store engine (O(1)
``null_count()`` diffs at segment boundaries) and counted from the
rule's existential variables on the term-level engines.

Like the probe, the profiler is strictly opt-in: ``profile=None`` (the
default) keeps every driver on its profile-free path and the summary
payload absent, so unprofiled runs stay byte-identical — cache keys,
fingerprints and summaries unchanged.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["RuleProfiler", "top_rules", "format_profile_table"]


class RuleProfiler:
    """Accumulates per-rule attribution across one chase run.

    The hot-path contract mirrors :class:`~repro.obs.probe.ChaseProbe`:
    drivers index the plain list attributes directly (no method call
    per trigger), stamp wall clocks only at rule-segment boundaries,
    and fold everything into :meth:`as_dict` once at the end.
    """

    __slots__ = (
        "rule_ids",
        "_slot_of",
        "seconds",
        "compile_seconds",
        "considered",
        "fired",
        "pruned",
        "facts",
        "nulls",
        "driver_seconds",
        "setup_seconds",
        "runs",
        "index_builds",
        "posting_memory_bytes",
        "engine",
    )

    def __init__(self) -> None:
        self.rule_ids: List[str] = []
        self._slot_of: Dict[str, int] = {}
        #: Enumerate + apply wall seconds per rule slot.
        self.seconds: List[float] = []
        #: Plan-compilation wall seconds per rule slot.
        self.compile_seconds: List[float] = []
        self.considered: List[int] = []
        self.fired: List[int] = []
        #: Applied-memo skips (trigger already fired or found inactive).
        self.pruned: List[int] = []
        #: Facts actually added to the instance/store per rule.
        self.facts: List[int] = []
        self.nulls: List[int] = []
        #: Wall time of the driver region (compile + enumerate + apply
        #: + round bookkeeping); the attribution denominator.
        self.driver_seconds = 0.0
        #: Pre-driver setup (database interning / instance copy) — kept
        #: out of the attribution denominator but reported.
        self.setup_seconds = 0.0
        self.runs = 0
        #: Per-predicate lazy index construction: name -> {builds, seconds}.
        self.index_builds: Dict[str, Dict[str, Any]] = {}
        #: Per-predicate posting/projection container memory: name -> bytes.
        self.posting_memory_bytes: Dict[str, int] = {}
        #: Engine of the (last) profiled run, for display.
        self.engine: Optional[str] = None

    # -- registration -------------------------------------------------------

    def slot(self, rule_id: str) -> int:
        """Bucket index for ``rule_id`` (created on first sight)."""
        index = self._slot_of.get(rule_id)
        if index is None:
            index = len(self.rule_ids)
            self._slot_of[rule_id] = index
            self.rule_ids.append(rule_id)
            self.seconds.append(0.0)
            self.compile_seconds.append(0.0)
            self.considered.append(0)
            self.fired.append(0)
            self.pruned.append(0)
            self.facts.append(0)
            self.nulls.append(0)
        return index

    def attach(self, rule_ids: Iterable[str]) -> List[int]:
        """Register a run's rules; returns their slots in input order.

        Drivers call this once per run with the pipeline's rules in
        rule-index order and then translate ``rule.index`` to a bucket
        through the returned list — so one profiler can aggregate
        repeated runs (benchmark repeats) of the same program.
        """
        return [self.slot(rule_id) for rule_id in rule_ids]

    # -- folding ------------------------------------------------------------

    def add_rule_seconds(self, slots: List[int], seconds: List[float]) -> None:
        """Fold a pipeline's per-rule-index seconds into the buckets."""
        buckets = self.seconds
        for index, elapsed in enumerate(seconds):
            if elapsed:
                buckets[slots[index]] += elapsed

    def add_compile_seconds(self, slots: List[int], seconds: List[float]) -> None:
        buckets = self.compile_seconds
        for index, elapsed in enumerate(seconds):
            if elapsed:
                buckets[slots[index]] += elapsed

    def observe_store(self, store: Any) -> None:
        """Merge a :class:`~repro.model.store.FactStore`'s index-build
        profile and posting-memory footprint (store engine only)."""
        for name, stats in store.index_build_profile().items():
            entry = self.index_builds.setdefault(
                name, {"builds": 0, "seconds": 0.0}
            )
            entry["builds"] += stats["builds"]
            entry["seconds"] += stats["seconds"]
        for name, size in store.posting_memory().items():
            self.posting_memory_bytes[name] = (
                self.posting_memory_bytes.get(name, 0) + size
            )

    def finish_run(self, driver_seconds: float, setup_seconds: float = 0.0,
                   engine: Optional[str] = None) -> None:
        self.driver_seconds += driver_seconds
        self.setup_seconds += setup_seconds
        self.runs += 1
        if engine is not None:
            self.engine = engine

    # -- export -------------------------------------------------------------

    def attributed_seconds(self) -> float:
        return sum(self.seconds) + sum(self.compile_seconds)

    def as_dict(self) -> Dict[str, Any]:
        """Summary payload for ``ChaseResult.summary()["profile"]``.

        Rules come out sorted by attributed seconds, descending — the
        top-K table is a prefix of the list.
        """
        order = sorted(
            range(len(self.rule_ids)),
            key=lambda i: (self.seconds[i] + self.compile_seconds[i]),
            reverse=True,
        )
        attributed = self.attributed_seconds()
        driver = self.driver_seconds
        payload: Dict[str, Any] = {
            "runs": self.runs,
            "driver_seconds": round(driver, 9),
            "setup_seconds": round(self.setup_seconds, 9),
            "attributed_seconds": round(attributed, 9),
            "attributed_fraction": (
                round(attributed / driver, 6) if driver > 0 else 1.0
            ),
            "rules": [
                {
                    "rule": self.rule_ids[i],
                    "seconds": round(self.seconds[i], 9),
                    "compile_seconds": round(self.compile_seconds[i], 9),
                    "triggers_considered": self.considered[i],
                    "triggers_fired": self.fired[i],
                    "triggers_pruned": self.pruned[i],
                    "facts_produced": self.facts[i],
                    "nulls_invented": self.nulls[i],
                }
                for i in order
            ],
        }
        if self.engine is not None:
            payload["engine"] = self.engine
        if self.index_builds:
            payload["index_builds"] = {
                name: {
                    "builds": stats["builds"],
                    "seconds": round(stats["seconds"], 9),
                }
                for name, stats in sorted(self.index_builds.items())
            }
        if self.posting_memory_bytes:
            payload["posting_memory_bytes"] = dict(
                sorted(self.posting_memory_bytes.items())
            )
        return payload


def top_rules(profile: Dict[str, Any], top: int = 10) -> List[Dict[str, Any]]:
    """The top-K rule rows of a profile payload (already ranked)."""
    rules = profile.get("rules", [])
    return list(rules[: max(top, 0)])


def format_profile_table(profile: Dict[str, Any], top: int = 10) -> str:
    """Render a profile payload as the ``repro profile`` top-K table."""
    rows = top_rules(profile, top)
    header = (
        f"{'rule':<24} {'seconds':>10} {'considered':>11} {'fired':>9} "
        f"{'pruned':>9} {'facts':>9} {'nulls':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        seconds = row.get("seconds", 0.0) + row.get("compile_seconds", 0.0)
        lines.append(
            f"{str(row.get('rule', '?'))[:24]:<24} {seconds:>10.6f} "
            f"{row.get('triggers_considered', 0):>11} "
            f"{row.get('triggers_fired', 0):>9} "
            f"{row.get('triggers_pruned', 0):>9} "
            f"{row.get('facts_produced', 0):>9} "
            f"{row.get('nulls_invented', 0):>9}"
        )
    driver = profile.get("driver_seconds", 0.0)
    attributed = profile.get("attributed_seconds", 0.0)
    fraction = profile.get("attributed_fraction", 0.0)
    lines.append(
        f"attributed {attributed:.6f}s of {driver:.6f}s driver time "
        f"({fraction * 100:.1f}%)"
    )
    index_builds = profile.get("index_builds")
    if index_builds:
        total_builds = sum(int(s.get("builds", 0)) for s in index_builds.values())
        total_seconds = sum(float(s.get("seconds", 0.0)) for s in index_builds.values())
        lines.append(
            f"lazy index builds: {total_builds} across "
            f"{len(index_builds)} predicates ({total_seconds:.6f}s)"
        )
    memory = profile.get("posting_memory_bytes")
    if memory:
        lines.append(
            f"posting/projection memory: {sum(memory.values())} bytes across "
            f"{len(memory)} predicates"
        )
    return "\n".join(lines)


# Re-exported for drivers that want a monotonic clock without importing
# ``time`` under a second name.
perf_counter = time.perf_counter
