"""Job-lifecycle trace spans in Chrome trace event format.

A :class:`TraceRecorder` collects *complete* events (``"ph": "X"``) —
one per span — with microsecond timestamps on a shared monotonic
clock, so spans recorded by different threads (HTTP handler, scheduler
worker, executor pool) line up on one timeline.  Export is JSONL: one
event per line, loadable by ``chrome://tracing`` / Perfetto after
wrapping in a JSON array (``trace inspect`` does the wrapping check;
Perfetto accepts raw JSONL directly).

The span vocabulary used across the repo:

=====================  ====================================================
``job.submit``         HTTP ingest: parse + validate + registry insert
``job.admission``      termination analysis + budget-policy decision
``job.queue_wait``     accepted → picked up by a scheduler worker
``job.execute``        whole executor run for one job
``snapshot.encode``    database/resume snapshot encode before dispatch
``snapshot.decode``    worker-side snapshot decode (serial path only)
``chase.run``          the chase itself inside the executor
``cache.lookup``       cache get (hit or miss)
``cache.write``        cache put (append + index update)
``request``            one HTTP request, by method+route
=====================  ====================================================

Recording is cheap (one lock, one list append) but not free, so the
recorder is opt-in: when no recorder is configured the instrumented
code paths skip straight through (``tracer is None`` checks / null
context managers).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecorder", "load_trace", "summarize_trace"]


class TraceRecorder:
    """Thread-safe collector of Chrome-trace complete events."""

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        # One shared origin so ts values are small and comparable.
        self._origin = time.perf_counter()

    def now(self) -> float:
        """Seconds since the recorder's origin (monotonic)."""
        return time.perf_counter() - self._origin

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        tid: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span from explicit ``now()`` timestamps.

        Used when begin and end happen in different call frames (queue
        wait: stamped at enqueue, closed at worker pickup).
        """
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round(max(0.0, end - start) * 1e6, 3),
            "pid": self.process_name,
            "tid": tid or threading.current_thread().name,
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        tid: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Context manager span. Yields the mutable ``args`` dict so the
        body can attach results (cache hit/miss, atom counts)."""
        span_args: Dict[str, Any] = dict(args) if args else {}
        start = self.now()
        try:
            yield span_args
        finally:
            self.add_span(name, start, self.now(), tid=tid, args=span_args or None)

    def counter(self, name: str, values: Dict[str, float]) -> None:
        """Chrome-trace counter event (``ph: C``) — optional extras."""
        event = {
            "name": name,
            "ph": "C",
            "ts": round(self.now() * 1e6, 3),
            "pid": self.process_name,
            "args": values,
        }
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def export_jsonl(self, path: str) -> int:
        """Write one event per line; returns the number of events."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return len(events)


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load a trace JSONL file back into a list of events."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            if not isinstance(event, dict) or "ph" not in event:
                raise ValueError(f"{path}:{line_number}: not a trace event: {line!r}")
            events.append(event)
    return events


def summarize_trace(events: List[Dict[str, Any]], top: int = 0) -> Dict[str, Any]:
    """Aggregate a trace: per-span-name counts and total/mean durations.

    This powers ``python -m repro trace inspect`` and the span-sum
    acceptance check (compare e.g. ``job.execute`` total against
    end-to-end wall time).  Span durations are reported in
    milliseconds — the unit the probe/latency summaries already use
    (``latency_p50_ms`` etc.); only the whole-trace wall stays in
    seconds.  ``top > 0`` adds a ``top_spans`` ranking by total time.
    """
    by_name: Dict[str, Dict[str, float]] = {}
    first_ts = None
    last_end = None
    for event in events:
        if event.get("ph") != "X":
            continue
        ts = float(event.get("ts", 0.0))
        dur = float(event.get("dur", 0.0))
        first_ts = ts if first_ts is None else min(first_ts, ts)
        end = ts + dur
        last_end = end if last_end is None else max(last_end, end)
        stats = by_name.setdefault(
            event.get("name", "?"), {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        stats["count"] += 1
        stats["total_us"] += dur
        stats["max_us"] = max(stats["max_us"], dur)
    spans = {
        name: {
            "count": int(stats["count"]),
            "total_ms": round(stats["total_us"] / 1e3, 3),
            "mean_ms": round(stats["total_us"] / stats["count"] / 1e3, 6),
            "max_ms": round(stats["max_us"] / 1e3, 3),
        }
        for name, stats in sorted(by_name.items())
    }
    wall = 0.0
    if first_ts is not None and last_end is not None:
        wall = round((last_end - first_ts) / 1e6, 6)
    summary: Dict[str, Any] = {
        "events": len(events),
        "spans": spans,
        "wall_seconds": wall,
    }
    if top > 0:
        ranked = sorted(spans.items(), key=lambda item: item[1]["total_ms"], reverse=True)
        summary["top_spans"] = [
            {"name": name, **stats} for name, stats in ranked[:top]
        ]
    return summary
