"""Sampled round-level instrumentation for the chase engine drivers.

A :class:`ChaseProbe` rides along a single chase run.  The engine calls
``begin_round()`` / ``end_round(...)`` once per round — never per
trigger — so the enabled overhead is a handful of attribute writes per
round, and the disabled path is the engine's existing ``probe is None``
branch (telemetry off means no probe object exists at all).

Totals (rounds, triggers, atoms, nulls, index builds) are always exact.
Per-round *samples* are bounded: the probe keeps at most
``max_samples`` rounds, recording every ``sample_every``-th round and,
when the buffer would overflow, decimating it (drop every other sample,
double the stride).  Long runs therefore keep an evenly spaced timeline
instead of only the first N rounds, and memory stays O(max_samples)
regardless of run length.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["ChaseProbe", "RoundSample"]


class RoundSample:
    """One sampled round. Plain attributes, converted to a dict on export."""

    __slots__ = (
        "round_index",
        "wall_seconds",
        "delta_size",
        "triggers_considered",
        "triggers_applied",
        "atoms_created",
        "nulls_invented",
        "index_builds",
    )

    def __init__(
        self,
        round_index: int,
        wall_seconds: float,
        delta_size: int,
        triggers_considered: int,
        triggers_applied: int,
        atoms_created: int,
        nulls_invented: int,
        index_builds: int,
    ) -> None:
        self.round_index = round_index
        self.wall_seconds = wall_seconds
        self.delta_size = delta_size
        self.triggers_considered = triggers_considered
        self.triggers_applied = triggers_applied
        self.atoms_created = atoms_created
        self.nulls_invented = nulls_invented
        self.index_builds = index_builds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round_index,
            "wall_seconds": round(self.wall_seconds, 9),
            "delta_size": self.delta_size,
            "triggers_considered": self.triggers_considered,
            "triggers_applied": self.triggers_applied,
            "atoms_created": self.atoms_created,
            "nulls_invented": self.nulls_invented,
            "index_builds": self.index_builds,
        }


class ChaseProbe:
    """Collects per-round chase telemetry with bounded sampling."""

    __slots__ = (
        "sample_every",
        "max_samples",
        "samples",
        "rounds",
        "total_wall_seconds",
        "total_triggers_considered",
        "total_triggers_applied",
        "total_atoms_created",
        "total_nulls_invented",
        "total_index_builds",
        "_round_start",
        "_stride",
        "_clock",
    )

    def __init__(self, sample_every: int = 1, max_samples: int = 512) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.sample_every = sample_every
        self.max_samples = max_samples
        self.samples: List[RoundSample] = []
        self.rounds = 0
        self.total_wall_seconds = 0.0
        self.total_triggers_considered = 0
        self.total_triggers_applied = 0
        self.total_atoms_created = 0
        self.total_nulls_invented = 0
        self.total_index_builds = 0
        self._round_start = 0.0
        self._stride = sample_every
        self._clock = time.perf_counter

    def begin_round(self) -> None:
        self._round_start = self._clock()

    def end_round(
        self,
        delta_size: int,
        triggers_considered: int,
        triggers_applied: int,
        atoms_created: int,
        nulls_invented: int = 0,
        index_builds: int = 0,
    ) -> None:
        elapsed = self._clock() - self._round_start
        round_index = self.rounds
        self.rounds += 1
        self.total_wall_seconds += elapsed
        self.total_triggers_considered += triggers_considered
        self.total_triggers_applied += triggers_applied
        self.total_atoms_created += atoms_created
        self.total_nulls_invented += nulls_invented
        self.total_index_builds += index_builds
        if round_index % self._stride:
            return
        self.samples.append(
            RoundSample(
                round_index,
                elapsed,
                delta_size,
                triggers_considered,
                triggers_applied,
                atoms_created,
                nulls_invented,
                index_builds,
            )
        )
        if len(self.samples) > self.max_samples:
            # Decimate: keep every other sample, double the stride.  The
            # retained samples remain evenly spaced at the new stride.
            self.samples = self.samples[::2]
            self._stride *= 2

    def as_dict(self) -> Dict[str, Any]:
        """Summary payload for ``ChaseResult.summary()["telemetry"]``."""
        return {
            "rounds": self.rounds,
            "wall_seconds": round(self.total_wall_seconds, 9),
            "triggers_considered": self.total_triggers_considered,
            "triggers_applied": self.total_triggers_applied,
            "atoms_created": self.total_atoms_created,
            "nulls_invented": self.total_nulls_invented,
            "index_builds": self.total_index_builds,
            "sample_stride": self._stride,
            "samples": [sample.as_dict() for sample in self.samples],
        }
