"""Paper-bound conformance monitoring.

The paper proves, for each class ``C ∈ {SL, L, G}``, a depth bound
``d_C(Σ)`` on ``maxdepth(D, Σ)`` and a size bound ``|D| · f_C(Σ)`` on
``|chase(D, Σ)|`` whenever ``Σ ∈ C ∩ CT_D``.  A terminated run of a
program in one of these classes must therefore land *under* its
bounds; observing a run above them means either the classifier put the
program in the wrong class or an engine invented facts it should not
have — a bug worth a structured warning, not a log line.

:func:`conformance_report` turns a run summary into a plain-data block
with the observed-over-bound utilizations, and
:func:`record_conformance` mirrors that block into a metrics registry
as ``repro_bound_utilization{kind=...}`` gauges plus a
``repro_bound_violations_total`` counter surfaced at ``/metrics``.

Bounds are only *computed* when they are comparable to the observed
run: the guarded bounds are astronomically large for most programs,
and materialising them exactly would cost more than the chase.  The
``*_within`` helpers in :mod:`repro.core.bounds` refuse over-cap
powers, in which case the utilization reports as 0.0 (the run is
unmeasurably far below its bound) and the bound itself as the
printable :func:`~repro.core.bounds.magnitude` estimate.

Conformance is computed *post-run* from the summary — nothing here
touches engine hot paths, cache keys, or stored summaries unless a
caller explicitly asks for the block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.classify import TGDClass
    from repro.model.tgd import TGDSet

__all__ = ["conformance_report", "record_conformance"]

#: Bounds are materialised exactly only while they are within this
#: factor of the observed value; beyond it the utilization is an
#: unmeasurable ~0 and only a magnitude estimate is reported.
BOUND_CAP_FACTOR = 1_000_000


def conformance_report(
    summary: Mapping[str, object],
    tgds: TGDSet,
    tgd_class: Optional[TGDClass] = None,
) -> Optional[Dict[str, object]]:
    """The ``conformance`` block for a run summary, or ``None``.

    ``None`` means the program's class (``tgd_class`` overrides the
    classifier — test fixtures use that to simulate misclassification)
    carries no paper bounds, so there is nothing to conform to.
    Violations are only reported for *terminated* runs: a
    budget-stopped prefix of a diverging chase is not a counterexample
    to anything.
    """
    # Imported here, not at module top: repro.core reaches back into
    # repro.chase.engine, which imports repro.obs — a module-level
    # import would be circular.
    from repro.core.bounds import (
        depth_bound,
        depth_bound_within,
        magnitude,
        size_bound_factor,
        size_bound_within,
    )
    from repro.core.classify import classify

    tgd_class = tgd_class or classify(tgds)
    if not tgd_class.has_paper_bounds:
        return None
    size = int(summary.get("size", 0))
    database_size = int(summary.get("database_size", 0))
    max_depth = int(summary.get("max_depth", 0))
    terminated = bool(summary.get("terminated", False))

    size_bound = size_bound_within(
        database_size, tgds, max(size, 1) * BOUND_CAP_FACTOR, tgd_class
    )
    observed_depth_bound = depth_bound_within(
        tgds, max(max_depth, 1) * BOUND_CAP_FACTOR, tgd_class
    )

    report: Dict[str, object] = {"class": str(tgd_class), "terminated": terminated}
    if size_bound is not None:
        report["size_bound"] = size_bound
        report["size_utilization"] = (
            round(size / size_bound, 6) if size_bound > 0 else 0.0
        )
    else:
        # Astronomically above anything observable; report the
        # magnitude of f_C alone (|D| · f_C may not be materialisable).
        report["size_bound"] = None
        report["size_bound_magnitude"] = magnitude(size_bound_factor(tgds, tgd_class))
        report["size_utilization"] = 0.0
    if observed_depth_bound is not None:
        report["depth_bound"] = observed_depth_bound
        report["depth_utilization"] = (
            round(max_depth / observed_depth_bound, 6)
            if observed_depth_bound > 0
            else 0.0
        )
    else:
        report["depth_bound"] = None
        report["depth_bound_magnitude"] = magnitude(depth_bound(tgds, tgd_class))
        report["depth_utilization"] = 0.0

    violations = []
    if terminated:
        if size_bound is not None and size_bound > 0 and size > size_bound:
            violations.append("size")
        if observed_depth_bound is not None and max_depth > observed_depth_bound:
            violations.append("depth")
    report["violations"] = violations
    return report


def record_conformance(registry, report: Optional[Mapping[str, object]]) -> None:
    """Mirror a conformance block into ``registry`` (no-op on ``None``).

    Exports the latest run's utilizations as
    ``repro_bound_utilization{kind="size"|"depth"}`` gauges and counts
    bound violations into ``repro_bound_violations_total`` — the
    structured warning a dashboard alerts on, since a violation is a
    classification or engine bug by construction.
    """
    if report is None:
        return
    registry.gauge(
        "repro_bound_utilization",
        "Observed value over the paper bound for the last conforming run",
        labels={"kind": "size"},
    ).set(float(report.get("size_utilization", 0.0)))
    registry.gauge(
        "repro_bound_utilization",
        "Observed value over the paper bound for the last conforming run",
        labels={"kind": "depth"},
    ).set(float(report.get("depth_utilization", 0.0)))
    violations = report.get("violations") or ()
    counter = registry.counter(
        "repro_bound_violations_total",
        "Runs observed above their paper bound (classification/engine bug)",
    )
    if violations:
        counter.inc(len(violations))
