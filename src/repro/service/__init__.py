"""Chase service daemon: a long-running HTTP job server over the batch
runtime.

::

    client ──▶ HTTP server ──▶ scheduler ──▶ BatchExecutor ──▶ cache
    (submit     (routes,        (admission,    (budgets,        (versioned,
     poll,       long-poll,      dedup,         execution)       LRU-bounded,
     stream)     streaming)      drain)                          JSONL spill)

``python -m repro serve`` starts the daemon;
:class:`~repro.service.client.ChaseServiceClient` talks to it.  The
paper's ``d_C``/``f_C`` budgets are what make a shared daemon safe:
every admitted job's work is bounded before it runs, so a queue bound
is a bound on total outstanding work even for untrusted submissions.
"""

from repro.service.client import ChaseServiceClient, ServiceError
from repro.service.queue import ACCEPTED, DEDUPED, REJECTED, ChaseScheduler, ExecutionGroup
from repro.service.server import ChaseService
from repro.service.state import (
    DEFAULT_TTL_SECONDS,
    DONE,
    QUEUED,
    RUNNING,
    BatchRecord,
    JobRecord,
    JobRegistry,
)

__all__ = [
    "ChaseService",
    "ChaseServiceClient",
    "ServiceError",
    "ChaseScheduler",
    "ExecutionGroup",
    "ACCEPTED",
    "DEDUPED",
    "REJECTED",
    "JobRegistry",
    "JobRecord",
    "BatchRecord",
    "QUEUED",
    "RUNNING",
    "DONE",
    "DEFAULT_TTL_SECONDS",
]
