"""Worker-pool scheduler for the chase service daemon.

The scheduler sits between the HTTP layer and the batch runtime.  Each
accepted submission becomes an *execution group*: the job to run plus
every registry record waiting on it.  Groups flow through a FIFO queue
into a small pool of worker threads, each of which runs jobs through a
shared serial :class:`~repro.runtime.executor.BatchExecutor` (budget
policy, result cache, and all).

Three properties the daemon needs live here:

* **Admission control** — at most ``max_queue`` groups may wait;
  beyond that :meth:`submit` rejects (the HTTP layer turns this into
  429) instead of letting a traffic spike grow the queue without
  bound.  The paper's budgets make this safe to run on untrusted
  input: admitted work is bounded per job, so the queue bound is a
  bound on total outstanding work.
* **In-flight dedup** — submissions are keyed by
  :func:`~repro.runtime.cache.result_cache_key` (canonical
  fingerprints + variant + deterministic budget), so identical
  concurrent submissions attach to the already-queued or running
  group and share its single execution.  The cache alone cannot do
  this: it only has the result *after* a run finishes.
* **Graceful drain** — :meth:`shutdown` stops admissions, lets the
  workers finish everything already accepted, and only then joins the
  pool, so no accepted job is ever dropped on the floor.

Chase execution is pure Python and holds the GIL, so worker threads
overlap I/O and queueing rather than CPU; the pool exists to keep many
small jobs flowing and to bound concurrent memory.  (Process-level
parallelism stays available per batch via ``BatchExecutor(workers=N)``.)
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.terms import trim_null_intern
from repro.runtime.cache import result_cache_key
from repro.runtime.executor import BatchExecutor, JobResult
from repro.runtime.jobs import ChaseJob

from repro.service.state import JobRecord, JobRegistry

#: Dispositions ``submit`` can return.
ACCEPTED, DEDUPED, REJECTED = "accepted", "deduped", "rejected"

#: Outcomes that count as "stopped by a budget" in the stats.
_BUDGET_STOP_OUTCOMES = frozenset(
    {
        "atom_budget_exceeded",
        "depth_budget_exceeded",
        "round_budget_exceeded",
        "time_budget_exceeded",
    }
)


@dataclass
class ExecutionGroup:
    """One scheduled execution and every submission sharing its result.

    ``members`` pairs each registry record with the :class:`ChaseJob`
    *that submission* carried: dedup keys ignore tags and wall-clock
    timeouts, so members may differ in both.  Each completed row
    reports its own submission's tags; and because a timeout/error
    outcome depends on the *primary's* timeout hint, only ``ok``
    (deterministic) results fan out to members — a non-``ok`` result
    re-queues the remaining members to run under their own terms,
    mirroring the executor's pool-duplicate semantics.
    """

    key: str
    job: ChaseJob
    members: List[Tuple[JobRecord, ChaseJob]] = field(default_factory=list)
    started: bool = False  # a worker has picked this group up
    enqueued_at: float = 0.0  # tracer timestamp at admission (0.0 = untraced)


class ChaseScheduler:
    """FIFO worker pool with admission control and in-flight dedup."""

    def __init__(
        self,
        registry: JobRegistry,
        executor: Optional[BatchExecutor] = None,
        workers: int = 2,
        max_queue: int = 64,
        before_execute: Optional[Callable[[ChaseJob], None]] = None,
        on_result: Optional[Callable[[JobResult], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.registry = registry
        self.executor = executor if executor is not None else BatchExecutor(workers=1)
        self.workers = workers
        self.max_queue = max_queue
        #: Null-intern entries tolerated before the idle-point trim
        #: (see :func:`repro.model.terms.trim_null_intern`).
        self.intern_trim_threshold = 200_000
        #: Test/instrumentation hook, called in the worker thread right
        #: before a group's job executes (used to hold a worker still
        #: while concurrent submissions pile onto the dedup map).
        self.before_execute = before_execute
        #: Observer called with every JobResult (cache hits included)
        #: from the worker thread, under the scheduler lock; the server
        #: uses it to mirror conformance blocks into the metrics
        #: registry.  Failures are swallowed — an observer bug must
        #: never kill a worker or lose a result.
        self.on_result = on_result
        self._queue: "queue_module.Queue[Optional[ExecutionGroup]]" = queue_module.Queue()
        self._inflight: Dict[str, ExecutionGroup] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._queued = 0  # groups waiting (not yet picked up)
        self._running = 0  # groups currently executing
        self._draining = False
        self._stats = {
            "submitted": 0,
            "accepted": 0,
            "deduped": 0,
            "rejected": 0,
            "requeued": 0,
            "executed": 0,
            "cache_hits": 0,
            "budget_stops": 0,
        }
        self._class_counts: Dict[str, int] = {}
        self._outcome_counts: Dict[str, int] = {}
        self._threads = [
            threading.Thread(target=self._worker, name=f"chase-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -------------------------------------------------------

    def dedup_key(self, job: ChaseJob) -> str:
        """The in-flight/dedup key: identical to the result cache key."""
        decision = self.executor.policy.resolve(
            job.program,
            len(job.database),
            job.budget_mode,
            job.budget,
            database=job.database,
            variant=job.variant,
        )
        return result_cache_key(job, decision.budget)

    def submit(
        self, job: ChaseJob, _key: Optional[str] = None, _count: bool = True
    ) -> Tuple[Optional[JobRecord], str]:
        """Admit one job; returns ``(record, disposition)``.

        ``deduped`` submissions get a record attached to the in-flight
        group; ``rejected`` ones (queue full, group full, or daemon
        draining) get no record at all.  ``_key`` lets retry loops pass
        a precomputed dedup key instead of re-canonicalizing the job,
        and ``_count=False`` suppresses the submitted/rejected counters
        so a backpressure retry loop counts as one logical submission.
        """
        key = self.dedup_key(job) if _key is None else _key
        with self._lock:
            if _count:
                self._stats["submitted"] += 1
            if self._draining:
                if _count:
                    self._stats["rejected"] += 1
                return None, REJECTED
            group = self._inflight.get(key)
            if group is not None and len(group.members) >= self.max_queue:
                # Dedup shares the execution, but each member still
                # costs a record and a result fan-out; an identical-
                # submission flood is bounded like any other.
                if _count:
                    self._stats["rejected"] += 1
                return None, REJECTED
            if group is None and self._queued >= self.max_queue:
                if _count:
                    self._stats["rejected"] += 1
                return None, REJECTED
            return self._admit_locked(job, key)

    def _admit_locked(self, job: ChaseJob, key: str) -> Tuple[JobRecord, str]:
        """Join-or-create for an already-capacity-checked job.

        Caller holds the scheduler lock.  The single implementation of
        the group-join/group-create sequence shared by ``submit`` and
        ``submit_atomic``, so the two admission paths cannot drift.
        """
        record = self.registry.create_job(job.job_id)
        group = self._inflight.get(key)
        if group is not None:
            group.members.append((record, job))
            if group.started:
                self.registry.mark_running(record.job_id)
            self._stats["deduped"] += 1
            return record, DEDUPED
        group = ExecutionGroup(key=key, job=job, members=[(record, job)])
        tracer = self.executor.tracer
        if tracer is not None:
            group.enqueued_at = tracer.now()
        self._inflight[key] = group
        self._queued += 1
        self._stats["accepted"] += 1
        self._queue.put(group)
        return record, ACCEPTED

    def submit_atomic(
        self, jobs: List[ChaseJob]
    ) -> Optional[List[Tuple[JobRecord, str]]]:
        """Admit a whole batch or none of it; ``None`` when it cannot fit.

        The capacity check and the submissions happen under one lock
        acquisition, so a racing ``submit`` can never split the batch
        into a partially-accepted state.  Jobs that dedup onto
        in-flight groups (including duplicates *within* the batch)
        consume no queue slot, so the needed capacity is the count of
        distinct new dedup keys.
        """
        keyed = [(job, self.dedup_key(job)) for job in jobs]  # keys: no lock needed
        with self._lock:
            self._stats["submitted"] += len(jobs)
            if self._draining:
                self._stats["rejected"] += len(jobs)
                return None
            needed = len({key for _, key in keyed if key not in self._inflight})
            # The per-group member cap must hold for in-batch
            # duplicates too: existing members plus this batch's
            # occurrences of the same key may not exceed it.
            key_counts: Dict[str, int] = {}
            for _, key in keyed:
                key_counts[key] = key_counts.get(key, 0) + 1
            over_cap = any(
                (len(self._inflight[key].members) if key in self._inflight else 0) + count
                > self.max_queue
                for key, count in key_counts.items()
            )
            if over_cap or self._queued + needed > self.max_queue:
                self._stats["rejected"] += len(jobs)
                return None
            return [self._admit_locked(job, key) for job, key in keyed]

    def submit_waiting(
        self, job: ChaseJob, timeout: Optional[float] = None
    ) -> Tuple[Optional[JobRecord], str]:
        """Admit with backpressure: when the queue is full, wait for a
        slot (up to ``timeout`` seconds) instead of rejecting.

        This is what lets a manifest larger than ``max_queue`` stream
        through the bound: the HTTP batch handler blocks its own
        request thread here while workers drain.  Draining still
        rejects immediately.
        """
        key = self.dedup_key(job)  # canonicalize/hash once, not per retry
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._stats["submitted"] += 1  # one logical submission, however many retries
        while True:
            record, disposition = self.submit(job, _key=key, _count=False)
            if disposition != REJECTED:
                return record, disposition
            with self._idle:
                if self._draining:
                    self._stats["rejected"] += 1
                    return None, REJECTED
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._stats["rejected"] += 1
                    return None, REJECTED
                # Wake on worker pickup/completion and re-check the
                # deadline at least every 250 ms.  Wait on *any*
                # rejection cause — queue full or dedup group full —
                # both clear only when a worker makes progress, so
                # retrying without waiting would busy-spin.
                self._idle.wait(
                    0.25 if remaining is None else max(0.0, min(remaining, 0.25))
                )

    # -- execution --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            group = self._queue.get()
            if group is None:
                self._queue.task_done()
                return
            with self._idle:
                self._queued -= 1
                self._running += 1
                group.started = True  # late dedup joins mark themselves running
                members_at_start = list(group.members)
                self._idle.notify_all()  # a queue slot freed: wake submit_waiting
            tracer = self.executor.tracer
            if tracer is not None and group.enqueued_at:
                tracer.add_span(
                    "job.queue_wait", group.enqueued_at, tracer.now(),
                    args={"job": group.job.job_id, "members": len(members_at_start)},
                )
            for record, _ in members_at_start:
                self.registry.mark_running(record.job_id)
            try:
                if self.before_execute is not None:
                    self.before_execute(group.job)
                result = self.executor.run_all([group.job])[0]
            except Exception as exc:  # noqa: BLE001 - a scheduler bug or hook
                # failure becomes an error row, never a dead worker.
                result = JobResult(
                    job_id=group.job.job_id,
                    status="error",
                    summary=None,
                    variant=group.job.variant,
                    cache_hit=False,
                    cache_key=group.key,
                    budget_provenance={},
                    wall_seconds=0.0,
                    error=f"{type(exc).__name__}: {exc}",
                    tags=group.job.tags,
                )
            with self._idle:
                # Remove from the dedup map *before* completing records:
                # anything submitted after this point starts a fresh
                # group (and will typically replay from the cache).
                self._inflight.pop(group.key, None)
                members = list(group.members)
                self._record_result(result)
                if result.status != "ok" and len(members) > 1:
                    # A timeout/error depends on the primary's own
                    # timeout hint and isn't cacheable; members run
                    # under their own terms instead of inheriting it.
                    # Re-queued under this same lock acquisition so
                    # drain() can never observe the work as finished.
                    requeued = members[1:]
                    members = members[:1]
                    regroup = ExecutionGroup(
                        key=group.key, job=requeued[0][1], members=requeued
                    )
                    requeue_tracer = self.executor.tracer
                    if requeue_tracer is not None:
                        regroup.enqueued_at = requeue_tracer.now()
                    # Members carry identical content, so the re-run can
                    # reuse the primary's encoded database snapshot: an
                    # N-way identical burst encodes the store once, no
                    # matter how many timeout/error re-runs it takes.
                    group.job.share_database_snapshot(regroup.job)
                    self._inflight[group.key] = regroup
                    self._queued += 1
                    self._stats["requeued"] += len(requeued)
                    for record, _ in requeued:
                        self.registry.mark_requeued(record.job_id)
                    self._queue.put(regroup)
            row = result.as_dict()
            primary = members[0][0]
            self.registry.mark_done(primary.job_id, row)
            for member, member_job in members[1:]:
                member_row = dict(row)
                member_row["id"] = member.client_id
                member_row["tags"] = list(member_job.tags)
                member_row["deduped_of"] = primary.job_id
                self.registry.mark_done(
                    member.job_id, member_row, deduped_of=primary.job_id
                )
            self.registry.maybe_sweep()
            with self._idle:
                # Only now may drain() observe this group as finished:
                # every record is terminal, so the "block until all
                # accepted work has finished" contract holds.
                self._running -= 1
                if self._queued == 0 and self._running == 0:
                    # Idle moment with no chase running anywhere (a
                    # worker only starts one by passing through this
                    # lock): safe point to drop the process-global
                    # null intern table, which otherwise grows with
                    # every execution the daemon ever performs.
                    trim_null_intern(self.intern_trim_threshold)
                self._idle.notify_all()
            self._queue.task_done()

    def _record_result(self, result: JobResult) -> None:
        """Update counters; caller holds the lock."""
        self._stats["executed"] += 1
        if result.cache_hit:
            self._stats["cache_hits"] += 1
        tgd_class = result.budget_provenance.get("class")
        if tgd_class is not None:
            self._class_counts[str(tgd_class)] = self._class_counts.get(str(tgd_class), 0) + 1
        outcome = result.outcome or result.status
        self._outcome_counts[str(outcome)] = self._outcome_counts.get(str(outcome), 0) + 1
        if outcome in _BUDGET_STOP_OUTCOMES:
            self._stats["budget_stops"] += 1
        if self.on_result is not None:
            try:
                self.on_result(result)
            except Exception:  # noqa: BLE001 - observer bugs stay observer bugs
                pass

    # -- lifecycle --------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until all accepted work has finished; True on success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queued > 0 or self._running > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Stop admissions, drain accepted work, and join the pool.

        Returns True when every accepted job finished within
        ``timeout`` (None = wait forever).  Idempotent.
        """
        with self._lock:
            already = self._draining
            self._draining = True
        drained = self.drain(timeout)
        if not already:
            for _ in self._threads:
                self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        return drained and all(not t.is_alive() for t in self._threads)

    def quiesce(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """SIGTERM-style drain: finish running work, requeue the rest.

        Stops admissions, pulls every *unstarted* group off the queue
        and returns its members to the registry as ``queued`` (via
        :meth:`JobRegistry.mark_requeued`) so a successor daemon — or
        an operator reading the registry — can resubmit them, then
        waits only for the groups already executing and joins the pool.
        Under a deep queue this terminates in one job's time instead of
        the whole backlog's, and no accepted job is silently dropped.

        Returns ``{"requeued": n, "drained": bool}``.
        """
        with self._lock:
            already = self._draining
            self._draining = True
        requeued = 0
        while True:
            try:
                group = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if group is None:  # another shutdown's sentinel: put it back
                self._queue.put(None)
                break
            # A worker may race this loop for the same queue; whatever
            # it wins it executes normally (the group counts as
            # running, not queued, by the time it leaves the queue).
            with self._idle:
                self._inflight.pop(group.key, None)
                self._queued -= 1
                for record, _ in group.members:
                    self.registry.mark_requeued(record.job_id)
                    requeued += 1
                self._stats["requeued"] += len(group.members)
                self._idle.notify_all()
            self._queue.task_done()
        drained = self.drain(timeout)
        if not already:
            for _ in self._threads:
                self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        return {"requeued": requeued, "drained": drained}

    # -- reporting --------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._stats)
            counters["queue_depth"] = self._queued
            counters["running"] = self._running
            counters["inflight_groups"] = len(self._inflight)
            counters["draining"] = self._draining
            counters["by_class"] = dict(sorted(self._class_counts.items()))
            counters["by_outcome"] = dict(sorted(self._outcome_counts.items()))
        cache = self.executor.cache
        counters["cache"] = cache.stats() if cache is not None else None
        return counters
