"""Job and batch registry for the chase service daemon.

The registry is the daemon's single source of truth about submissions:
every accepted job gets a :class:`JobRecord` that moves through
``queued → running → done`` (``done`` covers ok, timeout, and error —
the precise status lives in the result row).  Batches are thin views: a
:class:`BatchRecord` is an ordered list of job ids plus any manifest
lines that never became jobs.

Memory stays bounded two ways:

* terminal records are kept only for ``ttl_seconds`` after finishing
  (long enough for clients to poll the result, short enough that a
  daemon serving heavy traffic does not accumulate every job it ever
  ran), swept opportunistically by :meth:`JobRegistry.sweep`, and
* admission control lives in the scheduler, so the registry never sees
  more queued work than the queue bound allows.

All methods take the registry lock; waiting for a record to reach a
terminal state uses a single condition variable notified on every
transition, which is what the HTTP layer's long-poll (``GET
/jobs/<id>?wait=S``) blocks on.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Lifecycle states of a job record.
QUEUED, RUNNING, DONE = "queued", "running", "done"

#: Default retention of terminal records (seconds).
DEFAULT_TTL_SECONDS = 300.0

#: Minimum spacing between opportunistic sweeps (:meth:`maybe_sweep`):
#: a full sweep scans every retained record, so running one after
#: *every* job completion would make completions O(records) under
#: sustained traffic.
DEFAULT_SWEEP_INTERVAL_SECONDS = 5.0


@dataclass
class JobRecord:
    """One accepted submission and, eventually, its result row."""

    job_id: str  # service-assigned, unique for this daemon's lifetime
    client_id: str  # the id the submitter used (manifest "id" field)
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, object]] = None  # JobResult.as_dict() shape
    deduped_of: Optional[str] = None  # primary job id this one shared
    # Tracer-clock stamp at creation (not serialised by as_dict):
    # mark_done turns it into a submit→done "job.lifecycle" span.
    trace_submitted_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state == DONE

    def as_dict(self) -> Dict[str, object]:
        """The JSON document ``GET /jobs/<id>`` returns."""
        document: Dict[str, object] = {
            "job_id": self.job_id,
            "client_id": self.client_id,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
        }
        if self.deduped_of is not None:
            document["deduped_of"] = self.deduped_of
        return document


@dataclass
class BatchRecord:
    """An ordered manifest submission: job ids plus rejected lines."""

    batch_id: str
    job_ids: List[str] = field(default_factory=list)
    manifest_errors: List[Dict[str, object]] = field(default_factory=list)
    submitted_at: float = 0.0


class JobRegistry:
    """Thread-safe store of job and batch records with TTL retention."""

    def __init__(
        self,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        sweep_interval_seconds: float = DEFAULT_SWEEP_INTERVAL_SECONDS,
    ) -> None:
        self.ttl_seconds = ttl_seconds
        self.sweep_interval_seconds = sweep_interval_seconds
        self._last_sweep = 0.0
        self._jobs: Dict[str, JobRecord] = {}
        self._batches: Dict[str, BatchRecord] = {}
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._job_counter = itertools.count(1)
        self._batch_counter = itertools.count(1)
        self.swept = 0
        #: Optional TraceRecorder: when set, every record emits one
        #: "job.lifecycle" span covering submit → done — the end-to-end
        #: reference the per-stage spans are audited against.
        self.tracer = None

    # -- creation ---------------------------------------------------------

    def create_job(self, client_id: str) -> JobRecord:
        with self._lock:
            record = JobRecord(
                job_id=f"j-{next(self._job_counter):06d}",
                client_id=client_id,
                submitted_at=time.time(),
            )
            if self.tracer is not None:
                record.trace_submitted_at = self.tracer.now()
            self._jobs[record.job_id] = record
            return record

    def create_batch(
        self,
        job_ids: List[str],
        manifest_errors: Optional[List[Dict[str, object]]] = None,
    ) -> BatchRecord:
        with self._lock:
            record = BatchRecord(
                batch_id=f"b-{next(self._batch_counter):06d}",
                job_ids=list(job_ids),
                manifest_errors=list(manifest_errors or []),
                submitted_at=time.time(),
            )
            self._batches[record.batch_id] = record
            return record

    # -- transitions ------------------------------------------------------

    def mark_running(self, job_id: str) -> None:
        with self._changed:
            record = self._jobs.get(job_id)
            if record is not None and record.state == QUEUED:
                record.state = RUNNING
                record.started_at = time.time()
                self._changed.notify_all()

    def mark_requeued(self, job_id: str) -> None:
        """Return a record to the queue (dedup member whose shared
        execution produced a non-deterministic result): back to
        ``queued`` with the aborted attempt's start time cleared."""
        with self._changed:
            record = self._jobs.get(job_id)
            if record is not None and not record.terminal:
                record.state = QUEUED
                record.started_at = None
                self._changed.notify_all()

    def mark_done(
        self,
        job_id: str,
        result: Dict[str, object],
        deduped_of: Optional[str] = None,
    ) -> None:
        with self._changed:
            record = self._jobs.get(job_id)
            if record is None:  # swept mid-flight (tiny TTL): nothing to record
                return
            record.state = DONE
            record.finished_at = time.time()
            record.result = result
            record.deduped_of = deduped_of
            if self.tracer is not None and record.trace_submitted_at is not None:
                status = result.get("status") if isinstance(result, dict) else None
                self.tracer.add_span(
                    "job.lifecycle", record.trace_submitted_at, self.tracer.now(),
                    args={
                        "job": record.job_id,
                        "status": str(status),
                        "deduped": deduped_of is not None,
                    },
                )
            self._changed.notify_all()

    # -- lookup -----------------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def batch(self, batch_id: str) -> Optional[BatchRecord]:
        with self._lock:
            return self._batches.get(batch_id)

    def wait_for_job(self, job_id: str, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Block until the job is terminal (or ``timeout`` elapses).

        Returns the record in whatever state it reached — the HTTP
        long-poll serves non-terminal states too — or ``None`` for an
        unknown id.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while True:
                record = self._jobs.get(job_id)
                if record is None or record.terminal:
                    return record
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return record
                self._changed.wait(remaining)

    # -- retention --------------------------------------------------------

    def sweep(self, now: Optional[float] = None) -> int:
        """Drop terminal job records older than the TTL; returns the count.

        Batches are swept once every member job has been swept — a
        batch stream can never dangle on ids the registry forgot first
        — and a batch with no member jobs at all (every manifest line
        failed) ages out on its own submission time.
        """
        now = time.time() if now is None else now
        cutoff = now - self.ttl_seconds
        with self._lock:
            self._last_sweep = now
            expired = [
                job_id
                for job_id, record in self._jobs.items()
                if record.terminal and record.finished_at is not None
                and record.finished_at <= cutoff
            ]
            for job_id in expired:
                del self._jobs[job_id]
            stale_batches = [
                batch_id
                for batch_id, batch in self._batches.items()
                if not any(j in self._jobs for j in batch.job_ids)
                and (batch.job_ids or batch.submitted_at <= cutoff)
            ]
            for batch_id in stale_batches:
                del self._batches[batch_id]
            self.swept += len(expired)
            return len(expired)

    def maybe_sweep(self, now: Optional[float] = None) -> int:
        """Sweep only if ``sweep_interval_seconds`` has passed since the
        last one — the hot-path (per-completion) variant."""
        now = time.time() if now is None else now
        with self._lock:
            due = now - self._last_sweep >= self.sweep_interval_seconds
        return self.sweep(now) if due else 0

    # -- reporting --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._lock:
            states = {QUEUED: 0, RUNNING: 0, DONE: 0}
            for record in self._jobs.values():
                states[record.state] += 1
            return {
                "jobs": len(self._jobs),
                "batches": len(self._batches),
                "swept": self.swept,
                **states,
            }

    def snapshot(self) -> Tuple[List[JobRecord], List[BatchRecord]]:
        """Point-in-time copies of the record lists (for tests/debugging)."""
        with self._lock:
            return list(self._jobs.values()), list(self._batches.values())
