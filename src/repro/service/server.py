"""HTTP front end of the chase service daemon (stdlib-only).

``ChaseService`` owns the registry, the scheduler, and a
``ThreadingHTTPServer``; ``python -m repro serve`` is its CLI wrapper.
One request thread per connection, worker threads per the scheduler —
the HTTP layer never executes a chase itself.

Endpoints (all JSON unless noted)::

    POST /jobs            submit one job (manifest-entry body) → 202
                          {"job_id", "disposition"}; 429 when saturated
    POST /batches         submit a JSONL manifest body → 202
                          {"batch_id", "jobs", "manifest_errors"};
                          429 unless every line fits the queue
    GET  /jobs/<id>       job record; ``?wait=S`` long-polls up to S
                          seconds for a terminal state
    GET  /batches/<id>    streams result rows as JSONL in submission
                          order as jobs finish, then a trailer line
    GET  /healthz         liveness + queue depth
    GET  /stats           cache hit rate, queue depth, per-class and
                          per-outcome counts, budget stops, retention
    POST /shutdown        drain accepted work, then stop the daemon

Job bodies are the JSONL manifest-entry format of
:mod:`repro.runtime.jobs`, restricted to inline ``program`` /
``database`` text: the path-based ``rules`` / ``facts`` forms would
read files on the *server*, which a network-facing daemon must not do
on behalf of a client.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.termination_analysis import DIVERGING, TerminationAnalyzer
from repro.obs.conformance import record_conformance
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.trace import TraceRecorder
from repro.runtime.budget_policy import BudgetPolicy
from repro.runtime.cache import SCHEMA_VERSION, ResultCache
from repro.runtime.executor import BatchExecutor
from repro.runtime.faults import get_injector
from repro.runtime.jobs import (
    ChaseJob,
    ManifestError,
    job_from_manifest_entry,
    parse_manifest_text,
)

from repro.service.queue import REJECTED, ChaseScheduler
from repro.service.state import DEFAULT_TTL_SECONDS, JobRegistry

logger = logging.getLogger("repro.service")


class _BodyTooLarge(Exception):
    """Request body exceeds the daemon's buffering cap (HTTP 413)."""

    def __init__(self, length: int, cap: int) -> None:
        super().__init__(f"request body of {length} bytes exceeds the {cap}-byte limit")


class _LengthRequired(Exception):
    """Chunked transfer encoding is not supported (HTTP 411)."""


class _BoundedThreadingHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` with a cap on concurrent connections.

    Long-polls, batch streams, and backpressure admissions each pin a
    request thread; without a cap a connection flood grows threads and
    file descriptors without limit regardless of the job-queue bound.
    Over-cap connections get an immediate 503 and are closed.
    """

    def __init__(self, address, handler, max_connections: int) -> None:
        super().__init__(address, handler)
        self._connection_slots = threading.Semaphore(max_connections)

    def process_request(self, request, client_address):  # noqa: ANN001
        if not self._connection_slots.acquire(blocking=False):
            body = b'{"error": "connection limit reached"}\n'
            head = (
                "HTTP/1.1 503 Service Unavailable\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Retry-After: 1\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            try:
                request.sendall(head + body)
            except OSError:  # client already gone
                pass
            finally:
                self.shutdown_request(request)
            return
        super().process_request(request, client_address)

    def process_request_thread(self, request, client_address):  # noqa: ANN001
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._connection_slots.release()


def _parse_job_entry(entry: Dict[str, object]) -> ChaseJob:
    """A manifest entry restricted to inline texts (no server-side paths)."""
    if not isinstance(entry, dict):
        raise ValueError("job body must be a JSON object")
    if "rules" in entry or "facts" in entry:
        raise ValueError(
            "path-based manifest entries ('rules'/'facts') are not accepted "
            "over HTTP; inline 'program' and 'database' text instead"
        )
    try:
        return job_from_manifest_entry(entry)
    except (TypeError, KeyError) as exc:
        # e.g. a budget object with unknown fields: a client input
        # error (400), not a daemon fault (500).
        raise ValueError(f"invalid job entry: {type(exc).__name__}: {exc}") from exc


class ChaseService:
    """The daemon: registry + scheduler + HTTP server, one object.

    Usable as a context manager (binds on ``__enter__``, drains and
    stops on ``__exit__``); ``port=0`` binds an ephemeral port, read
    back from :attr:`port` / :attr:`url`.
    """

    #: Default request-body cap: the queue bound limits *executed* work,
    #: this limits what a single request may make the daemon buffer and
    #: parse before admission control ever runs.
    DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024

    #: Default LRU bound when the service creates its own cache — a
    #: long-running daemon must not grow memory with every distinct
    #: job it has ever served (matches the CLI's --cache-max-entries).
    DEFAULT_CACHE_MAX_ENTRIES = 10_000

    #: Default per-job wall-clock ceiling.  Clients may send explicit
    #: budgets with astronomical atom/round limits and no timeout; the
    #: daemon's floor bounds every execution regardless, which is what
    #: keeps a worker thread from being pinned forever (and drain from
    #: hanging) on a hostile submission.  ``per_job_timeout=None``
    #: disables it for trusted embedded use.
    DEFAULT_PER_JOB_TIMEOUT = 60.0

    #: Default access-log rotation cap.  The access log grows with every
    #: request a long-running daemon serves; at the cap the file rolls
    #: over to a single ``<path>.1`` sibling (the previous generation is
    #: replaced), bounding disk at ~2× the cap.
    DEFAULT_ACCESS_LOG_MAX_BYTES = 16 * 1024 * 1024

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 64,
        cache: Optional[ResultCache] = None,
        materialize: bool = False,
        per_job_timeout: Optional[float] = DEFAULT_PER_JOB_TIMEOUT,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        policy: Optional[BudgetPolicy] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_connections: int = 128,
        admission_analysis: bool = False,
        metrics: bool = False,
        access_log: Optional[str] = None,
        access_log_max_bytes: int = DEFAULT_ACCESS_LOG_MAX_BYTES,
        trace_path: Optional[str] = None,
        conformance: bool = False,
        checkpoint_every_rounds: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.host = host
        self.max_body_bytes = max_body_bytes
        self.max_connections = max_connections
        self._requested_port = port
        # Telemetry is strictly opt-in: with metrics=False the registry
        # is the shared no-op singleton and every instrumented call site
        # reduces to two attribute lookups; with trace_path=None no
        # tracer exists and span code paths are skipped entirely.
        self.metrics = MetricsRegistry() if metrics else NULL_REGISTRY
        self.trace_path = trace_path
        self.tracer = TraceRecorder() if trace_path is not None else None
        self.access_log_path = access_log
        self.access_log_max_bytes = access_log_max_bytes
        self._access_log_handle = None
        self._access_log_bytes = 0
        self._access_log_lock = threading.Lock()
        self.cache = (
            cache
            if cache is not None
            else ResultCache(max_entries=self.DEFAULT_CACHE_MAX_ENTRIES)
        )
        # Opt-in static termination analysis: POST /jobs rejects provably
        # diverging submissions with a structured 422, and (unless the
        # caller supplied a policy) budgets become analysis-aware, which
        # clamps diverging batch jobs and lifts the wall ceiling for
        # provably terminating ones.  Off by default: the seed admission
        # behaviour accepts everything.
        self.admission_analysis = admission_analysis
        self.analyzer = TerminationAnalyzer() if admission_analysis else None
        self.analysis_rejections = 0
        if policy is None:
            policy = BudgetPolicy(analyzer=self.analyzer) if admission_analysis else BudgetPolicy()
        # Opt-in paper-bound conformance: every SL/L/G result carries a
        # ``conformance`` block, and (when metrics are also on) the
        # utilizations and violation counter surface at /metrics.  A
        # violation means the classifier or an engine is wrong — the one
        # service condition that is a bug by construction.
        self.conformance = conformance
        executor = BatchExecutor(
            workers=1,
            policy=policy,
            cache=self.cache,
            materialize=materialize,
            per_job_timeout=per_job_timeout,
            tracer=self.tracer,
            conformance=conformance,
            # With checkpointing configured, long-running jobs write
            # periodic round checkpoints: a SIGTERM drain (or a crash)
            # leaves resumable state on disk instead of losing the run.
            checkpoint_every_rounds=checkpoint_every_rounds,
            checkpoint_dir=checkpoint_dir,
        )
        self.cache.tracer = self.tracer
        self.registry = JobRegistry(ttl_seconds=ttl_seconds)
        self.registry.tracer = self.tracer
        self.scheduler = ChaseScheduler(
            self.registry, executor=executor, workers=workers, max_queue=max_queue,
            on_result=self._observe_result if conformance else None,
        )
        self.started_at = time.time()
        # Wall-clock start is kept for display, but uptime arithmetic
        # anchors on the monotonic clock: time.time() jumps under NTP
        # steps and manual clock changes, and a negative or wildly
        # wrong uptime breaks dashboards that alert on restarts.
        self._started_monotonic = time.monotonic()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._stopped_event = threading.Event()

    def _observe_result(self, result) -> None:
        """Mirror a finished job's conformance block into ``/metrics``."""
        if result.summary is None:
            return
        record_conformance(self.metrics, result.summary.get("conformance"))

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ChaseService":
        if self._httpd is not None:
            raise RuntimeError("service already started")
        if self.access_log_path is not None:
            self._access_log_handle = open(self.access_log_path, "a")
            # Seed the rotation counter from what a previous daemon left
            # behind so restarts keep honouring the cap.
            self._access_log_bytes = self._access_log_handle.tell()
        handler = type("BoundHandler", (_ChaseRequestHandler,), {"service": self})
        self._httpd = _BoundedThreadingHTTPServer(
            (self.host, self._requested_port), handler, self.max_connections
        )
        self._httpd.daemon_threads = True
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="chase-http", daemon=True
        )
        self._serve_thread.start()
        logger.info("chase service listening on %s", self.url)
        return self

    def stop(self, timeout: Optional[float] = None, requeue_queued: bool = False) -> bool:
        """Drain the scheduler, stop the HTTP server; True on clean drain.

        With ``requeue_queued`` (the SIGTERM path) queued-but-unstarted
        jobs are returned to the registry as requeueable instead of
        being executed: only already-running jobs are waited for, so
        termination stays prompt under a deep queue while no accepted
        job is silently dropped.

        A concurrent second caller (e.g. Ctrl-C while an HTTP-initiated
        shutdown is draining) blocks until the first caller's stop
        completes rather than returning mid-drain.
        """
        with self._stop_lock:
            already = self._stopped
            self._stopped = True
        if already:
            return self._stopped_event.wait(timeout)
        if requeue_queued:
            drained = self.scheduler.quiesce(timeout)["drained"]
        else:
            drained = self.scheduler.shutdown(timeout)
        if self.cache.path is not None:
            self.cache.compact()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)
        if self.tracer is not None and self.trace_path is not None:
            try:
                self.tracer.export_jsonl(self.trace_path)
            except OSError:
                logger.exception("failed to export trace to %s", self.trace_path)
        with self._access_log_lock:
            if self._access_log_handle is not None:
                self._access_log_handle.close()
                self._access_log_handle = None
        logger.info("chase service stopped (drained=%s)", drained)
        self._stopped_event.set()
        return drained

    @property
    def stopped(self) -> bool:
        return self._stopped_event.is_set()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` completes (foreground ``serve`` loop)."""
        return self._stopped_event.wait(timeout)

    def __enter__(self) -> "ChaseService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- documents the handler serves -------------------------------------

    def health_document(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.scheduler.draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "workers": self.scheduler.workers,
            "queue_depth": self.scheduler.queue_depth(),
            "max_queue": self.scheduler.max_queue,
        }

    def admission_rejection(self, job: ChaseJob) -> Optional[Dict[str, object]]:
        """The structured 422 body for a provably diverging job, or
        ``None`` to admit.

        Only ``POST /jobs`` consults this; ``POST /batches`` always
        admits (batch manifests routinely mix known-diverging rows in
        on purpose, and the analysis-aware budget clamp already keeps
        them cheap).  Analysis failures admit — a broken analyzer must
        never turn into a denial of service.
        """
        if not self.admission_analysis or self.analyzer is None:
            return None
        try:
            report = self.analyzer.analyze(job.database, job.program, job.variant)
        except Exception:  # noqa: BLE001
            return None
        if report.verdict != DIVERGING:
            return None
        self.analysis_rejections += 1
        return {
            "error": "diverging-program",
            "detail": (
                "static termination analysis proves the "
                f"{job.variant} chase of this job diverges; "
                "submit via POST /batches to run it under a clamped budget"
            ),
            "job_id": job.job_id,
            "analysis": report.as_dict(),
        }

    def stats_document(self) -> Dict[str, object]:
        self.registry.maybe_sweep()  # a /stats scraper must not pay O(records) per poll
        scheduler = self.scheduler.stats()
        cache_stats = scheduler.get("cache") or {}
        lookups = int(cache_stats.get("hits", 0)) + int(cache_stats.get("misses", 0))
        hit_rate = round(int(cache_stats.get("hits", 0)) / lookups, 4) if lookups else None
        document: Dict[str, object] = {
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "schema_version": SCHEMA_VERSION,
            "scheduler": scheduler,
            "cache_hit_rate": hit_rate,
            "registry": self.registry.counts(),
            "ttl_seconds": self.registry.ttl_seconds,
        }
        if self.admission_analysis:
            document["admission_analysis"] = {
                "enabled": True,
                "rejections": self.analysis_rejections,
            }
        return document

    def write_access_log(self, record: Dict[str, object]) -> None:
        """Append one JSONL access-log line (no-op when not configured).

        Size-rotated: once the file reaches
        :attr:`access_log_max_bytes` it is rolled to ``<path>.1``
        (replacing the previous rollover) and a fresh file started, so
        the daemon's disk use stays bounded at roughly twice the cap.
        """
        with self._access_log_lock:
            handle = self._access_log_handle
            if handle is None:
                return
            line = json.dumps(record, sort_keys=True) + "\n"
            handle.write(line)
            handle.flush()
            self._access_log_bytes += len(line)
            if self._access_log_bytes >= self.access_log_max_bytes:
                handle.close()
                try:
                    os.replace(self.access_log_path, self.access_log_path + ".1")
                except OSError:
                    # Rotation failing (exotic filesystems) must not
                    # take down request handling; keep appending.
                    logger.exception(
                        "failed to rotate access log %s", self.access_log_path
                    )
                self._access_log_handle = open(self.access_log_path, "a")
                self._access_log_bytes = self._access_log_handle.tell()

    def metrics_text(self) -> str:
        """The ``/metrics`` body: live metrics plus mirrored stats.

        Request latency histograms and request counters are maintained
        live by the handler; scheduler, cache, registry, and admission
        counters already exist as plain integers on their owners, so
        they are *mirrored* into the registry at scrape time
        (``Counter.set_to``) instead of double-instrumenting those hot
        paths.
        """
        metrics = self.metrics
        scheduler = self.scheduler.stats()
        for key in (
            "submitted", "accepted", "deduped", "rejected",
            "requeued", "executed", "cache_hits", "budget_stops",
        ):
            metrics.counter(
                f"repro_jobs_{key}_total",
                f"Scheduler lifetime total of {key.replace('_', ' ')} jobs.",
            ).set_to(int(scheduler[key]))
        metrics.gauge(
            "repro_queue_depth", "Execution groups waiting in the scheduler queue.",
        ).set(int(scheduler["queue_depth"]))
        metrics.gauge(
            "repro_running_jobs", "Execution groups currently executing.",
        ).set(int(scheduler["running"]))
        metrics.gauge(
            "repro_inflight_groups", "Distinct dedup groups queued or running.",
        ).set(int(scheduler["inflight_groups"]))
        cache_stats = scheduler.get("cache") or {}
        for key in ("hits", "misses", "stores", "evictions"):
            metrics.counter(
                f"repro_cache_{key}_total", f"Result cache lifetime {key}.",
            ).set_to(int(cache_stats.get(key, 0)))
        metrics.gauge(
            "repro_cache_entries", "Result cache resident entries.",
        ).set(int(cache_stats.get("entries", 0)))
        metrics.gauge(
            "repro_cache_degraded",
            "1 when a spill-write failure degraded the result cache to "
            "memory-only, 0 otherwise.",
        ).set(int(cache_stats.get("degraded", 0)))
        fault_stats = getattr(self.scheduler.executor, "fault_stats", {}) or {}
        metrics.counter(
            "repro_job_retries_total",
            "Job executions retried after a transient failure.",
        ).set_to(int(fault_stats.get("retries", 0)))
        metrics.counter(
            "repro_checkpoint_resumes_total",
            "Retried jobs that resumed from a mid-run round checkpoint.",
        ).set_to(int(fault_stats.get("checkpoint_resumes", 0)))
        metrics.counter(
            "repro_faults_injected_total",
            "Faults fired by the opt-in injection layer (REPRO_FAULTS).",
        ).set_to(get_injector().fired_total())
        metrics.counter(
            "repro_admission_rejections_total",
            "Jobs rejected at admission by static termination analysis.",
        ).set_to(self.analysis_rejections)
        counts = self.registry.counts()
        for state in ("queued", "running", "done"):
            metrics.gauge(
                "repro_registry_jobs", "Registry job records by state.",
                labels={"state": state},
            ).set(int(counts.get(state, 0)))
        metrics.gauge(
            "repro_uptime_seconds", "Seconds since daemon start (monotonic clock).",
        ).set(round(time.monotonic() - self._started_monotonic, 3))
        return metrics.render()


class _ChaseRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the bound :class:`ChaseService`."""

    service: ChaseService  # bound by ChaseService.start via a subclass
    protocol_version = "HTTP/1.1"
    #: Socket read timeout: a client stalling mid-request (slow-loris
    #: partial body, idle keep-alive) releases its connection slot
    #: after this many seconds instead of pinning it forever.  Server-
    #: side long-poll waits are unaffected — they do not read.
    timeout = 60.0

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        self._last_status = code  # for metrics/access-log labels
        super().send_response(code, message)

    @staticmethod
    def _normalize_route(path: str) -> str:
        """Collapse per-resource paths so metric label sets stay bounded."""
        if path.startswith("/jobs/"):
            return "/jobs/{id}"
        if path.startswith("/batches/"):
            return "/batches/{id}"
        if path in ("/healthz", "/stats", "/metrics", "/jobs", "/batches", "/shutdown"):
            return path
        return "other"

    def _instrumented(self, method: str, inner) -> None:
        """Run one request handler under latency/status instrumentation."""
        service = self.service
        self._last_status: Optional[int] = None
        start = time.perf_counter()
        tracer = service.tracer
        mark = tracer.now() if tracer is not None else 0.0
        try:
            inner()
        finally:
            elapsed = time.perf_counter() - start
            route = self._normalize_route(self._query()[0])
            status = self._last_status if self._last_status is not None else 0
            metrics = service.metrics
            if metrics.enabled:
                metrics.histogram(
                    "repro_http_request_seconds",
                    "HTTP request handling latency in seconds.",
                    labels={"method": method, "route": route},
                    buckets=DEFAULT_LATENCY_BUCKETS,
                ).observe(elapsed)
                metrics.counter(
                    "repro_http_requests_total",
                    "HTTP requests served, by method, route, and status.",
                    labels={"method": method, "route": route, "status": str(status)},
                ).inc()
            if tracer is not None:
                tracer.add_span(
                    "request", mark, tracer.now(),
                    args={"method": method, "route": route, "status": status},
                )
            service.write_access_log(
                {
                    "ts": round(time.time(), 6),
                    "remote": self.address_string(),
                    "method": method,
                    "path": self.path,
                    "status": status,
                    "seconds": round(elapsed, 6),
                }
            )

    def _send_json(
        self,
        status: int,
        document: Dict[str, object],
        retry_after: Optional[int] = None,
    ) -> None:
        # Chaos hook: "delay" sleeps inside fire(); "drop" closes the
        # connection with no response at all — the signature of a
        # response lost on the wire, which the client's retry loop must
        # absorb.
        if get_injector().fire("http.response", key=self.path) == "drop":
            self.close_connection = True
            return
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Backpressure statuses (429/503) tell the client *when* to
            # come back; ChaseServiceClient honours this.
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        if self.headers.get("Transfer-Encoding"):
            # We only read Content-Length-delimited bodies; silently
            # treating a chunked body as empty would desync keep-alive.
            self.close_connection = True
            raise _LengthRequired(
                "chunked transfer encoding is not supported; send a "
                "Content-Length-delimited body"
            )
        raw_length = self.headers.get("Content-Length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            self.close_connection = True  # the unread body desyncs keep-alive
            raise ValueError(f"invalid Content-Length {raw_length!r}") from None
        if length < 0:
            # read(-1) would block on the open socket until EOF.
            self.close_connection = True
            raise ValueError(f"invalid Content-Length {length}")
        if length > self.service.max_body_bytes:
            # Refuse without buffering the oversized body; the unread
            # bytes make the connection unusable, so close it.
            self.close_connection = True
            raise _BodyTooLarge(length, self.service.max_body_bytes)
        return self.rfile.read(length) if length else b""

    def _query(self) -> Tuple[str, Dict[str, List[str]]]:
        parsed = urlparse(self.path)
        return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

    @staticmethod
    def _wait_seconds(query: Dict[str, List[str]]) -> Optional[float]:
        values = query.get("wait")
        if not values:
            return None
        try:
            return max(0.0, float(values[0]))
        except ValueError as exc:
            raise ValueError(f"invalid wait value {values[0]!r}") from exc

    # -- GET --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._instrumented("GET", self._handle_get)

    def _handle_get(self) -> None:
        try:
            path, query = self._query()
            if path == "/healthz":
                self._send_json(200, self.service.health_document())
            elif path == "/stats":
                self._send_json(200, self.service.stats_document())
            elif path == "/metrics":
                self._get_metrics()
            elif path.startswith("/jobs/"):
                self._get_job(path[len("/jobs/"):], query)
            elif path.startswith("/batches/"):
                self._stream_batch(path[len("/batches/"):], query)
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
        except ConnectionError:  # client hung up (reset or broken pipe)
            pass
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the daemon
            logger.exception("GET %s failed", self.path)
            self.close_connection = True  # request state is unknown: don't reuse
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _get_metrics(self) -> None:
        if not self.service.metrics.enabled:
            self._send_json(
                404, {"error": "metrics disabled; start the daemon with --metrics"}
            )
            return
        body = self.service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_job(self, job_id: str, query: Dict[str, List[str]]) -> None:
        wait = self._wait_seconds(query)
        if wait:
            record = self.service.registry.wait_for_job(job_id, timeout=wait)
        else:
            record = self.service.registry.job(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
        else:
            self._send_json(200, record.as_dict())

    def _stream_batch(self, batch_id: str, query: Dict[str, List[str]]) -> None:
        wait = self._wait_seconds(query)
        batch = self.service.registry.batch(batch_id)
        if batch is None:
            self._send_json(404, {"error": f"unknown batch {batch_id!r}"})
            return
        # Close-delimited JSONL: rows flush as jobs finish, in
        # submission order, so a slow client reads a live stream rather
        # than polling N job endpoints.
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Connection", "close")
        self.end_headers()

        def emit(document: Dict[str, object]) -> None:
            self.wfile.write((json.dumps(document, sort_keys=True) + "\n").encode("utf-8"))
            self.wfile.flush()

        # Headers are out: from here on, any failure must end the
        # close-delimited stream silently — a 500 status line written
        # mid-body would corrupt the JSONL the client is parsing.
        try:
            deadline = None if wait is None else time.monotonic() + wait
            rows = 0
            complete = True
            for error_row in batch.manifest_errors:
                emit(error_row)
                rows += 1
            for job_id in batch.job_ids:
                remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
                record = self.service.registry.wait_for_job(job_id, timeout=remaining)
                if record is None:
                    emit({"id": job_id, "status": "error", "error": "record expired (TTL)"})
                    rows += 1
                    complete = False
                elif record.terminal and record.result is not None:
                    emit(record.result)
                    rows += 1
                else:  # deadline hit first
                    complete = False
                    break
            emit(
                {
                    "batch_id": batch_id,
                    "complete": complete,
                    "rows": rows,
                    "jobs": len(batch.job_ids) + len(batch.manifest_errors),
                }
            )
        except ConnectionError:  # client hung up mid-stream
            pass
        except Exception:  # noqa: BLE001 - truncate the stream, keep the daemon
            logger.exception("batch stream %s failed", batch_id)
        finally:
            self.close_connection = True

    # -- POST -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._instrumented("POST", self._handle_post)

    def _handle_post(self) -> None:
        try:
            # Drain the body *before* any routing or validation: an
            # error response that leaves body bytes unread on a
            # keep-alive connection desyncs the next request on it.
            body = self._read_body()
            path, query = self._query()
            if path == "/jobs":
                self._post_job(body)
            elif path == "/batches":
                self._post_batch(query, body)
            elif path == "/shutdown":
                self._post_shutdown()
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except _BodyTooLarge as exc:
            self._send_json(413, {"error": str(exc)})
        except _LengthRequired as exc:
            self._send_json(411, {"error": str(exc)})
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
        except ConnectionError:  # client hung up mid-request
            pass
        except Exception as exc:  # noqa: BLE001 - see do_GET
            logger.exception("POST %s failed", self.path)
            # The body may be partially read (e.g. a stalled client
            # timing out mid-upload): the stream position is unknown,
            # so the connection must not serve another request.
            self.close_connection = True
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _post_job(self, body: bytes) -> None:
        try:
            entry = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        job = _parse_job_entry(entry)
        rejection = self.service.admission_rejection(job)
        if rejection is not None:
            self._send_json(422, rejection)
            return
        record, disposition = self.service.scheduler.submit(job)
        if disposition == REJECTED:
            self._send_json(
                429,
                {
                    "error": "queue saturated" if not self.service.scheduler.draining
                    else "daemon draining",
                    "queue_depth": self.service.scheduler.queue_depth(),
                    "max_queue": self.service.scheduler.max_queue,
                },
                retry_after=1,
            )
            return
        assert record is not None
        self._send_json(
            202,
            {
                "job_id": record.job_id,
                "client_id": record.client_id,
                "disposition": disposition,
                "state": record.state,
            },
        )

    def _post_batch(self, query: Dict[str, List[str]], body: bytes) -> None:
        admit_values = query.get("admit_wait")
        try:
            admit_wait = float(admit_values[0]) if admit_values else 0.0
        except ValueError as exc:
            raise ValueError(f"invalid admit_wait value {admit_values[0]!r}") from exc
        # The batch record is only created after admission finishes, so
        # early-admitted jobs' results must survive the whole wait:
        # cap the admission window at half the record TTL.  The
        # effective value is reported in the 202 response so a clamped
        # client can see its window was shortened.
        admit_wait = min(admit_wait, self.service.registry.ttl_seconds / 2)
        def error_row(job_id: str, message: str) -> Dict[str, object]:
            """One shape for every non-result row a batch stream emits."""
            return {
                "id": job_id,
                "status": "error",
                "outcome": None,
                "summary": None,
                "error": message,
            }

        items = parse_manifest_text(body.decode("utf-8"), entry_parser=_parse_job_entry)
        jobs: List[ChaseJob] = [item for item in items if not isinstance(item, ManifestError)]
        manifest_errors: List[Dict[str, object]] = [
            error_row(item.job_id, f"manifest line {item.line_number}: {item.error}")
            for item in items
            if isinstance(item, ManifestError)
        ]
        if not jobs and not manifest_errors:
            raise ValueError("empty batch: body must be JSONL, one job per line")
        # Two admission modes.  Default (admit_wait=0): atomic — the
        # whole manifest is admitted under one scheduler lock or none
        # of it is (429), so racing submissions can never split it.
        # With ?admit_wait=S the handler instead streams jobs through
        # the bound with backpressure, blocking this request thread
        # for a free slot so manifests larger than --queue-depth are
        # still servable; jobs that find no slot within the shared
        # deadline become error rows.
        scheduler = self.service.scheduler
        job_ids: List[str] = []
        if admit_wait <= 0:
            admitted = scheduler.submit_atomic(jobs)
            if admitted is None:
                self._send_json(
                    429,
                    {
                        "error": f"batch of {len(jobs)} exceeds free queue capacity"
                        " (retry with ?admit_wait=S to queue with backpressure)",
                        "queue_depth": scheduler.queue_depth(),
                        "max_queue": scheduler.max_queue,
                    },
                    retry_after=1,
                )
                return
            job_ids = [record.job_id for record, _ in admitted]
        else:
            deadline = time.monotonic() + admit_wait
            for job in jobs:
                record, disposition = scheduler.submit_waiting(
                    job, timeout=max(0.0, deadline - time.monotonic())
                )
                if record is None:  # no slot within the deadline, or draining
                    manifest_errors.append(error_row(job.job_id, f"rejected: {disposition}"))
                else:
                    job_ids.append(record.job_id)
        batch = self.service.registry.create_batch(job_ids, manifest_errors)
        self._send_json(
            202,
            {
                "batch_id": batch.batch_id,
                "jobs": len(job_ids),
                "manifest_errors": len(manifest_errors),
                "admit_wait_effective": admit_wait,
            },
        )

    def _post_shutdown(self) -> None:
        self._send_json(202, {"draining": True})
        # Stop from a helper thread: this handler thread belongs to the
        # HTTP server being stopped.
        threading.Thread(target=self.service.stop, name="chase-stop", daemon=True).start()
