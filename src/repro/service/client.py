"""Thin HTTP client for the chase service daemon (stdlib ``urllib``).

``ChaseServiceClient`` is what the CLI, the examples, the benchmark
driver, and the end-to-end tests use; it speaks exactly the endpoint
set of :mod:`repro.service.server` and returns the decoded JSON
documents.  Submissions accept either a manifest-entry ``dict`` or a
:class:`~repro.runtime.jobs.ChaseJob` (converted through
:func:`~repro.runtime.jobs.manifest_entry`).
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.runtime.jobs import ChaseJob, manifest_entry

JobSpec = Union[ChaseJob, Dict[str, object]]

#: Statuses that mean "come back later", usually with a Retry-After.
_BACKPRESSURE_STATUSES = frozenset({429, 503})


class ServiceError(RuntimeError):
    """A non-2xx response, carrying the HTTP status and decoded body."""

    def __init__(
        self, status: int, document: Dict[str, object], attempts: int = 1
    ) -> None:
        suffix = f" (after {attempts} attempts)" if attempts > 1 else ""
        super().__init__(f"HTTP {status}: {document.get('error', document)}{suffix}")
        self.status = status
        self.document = document
        #: Total request attempts made before this error surfaced
        #: (> 1 when a retry budget was exhausted).
        self.attempts = attempts


def _entry(spec: JobSpec) -> Dict[str, object]:
    return manifest_entry(spec) if isinstance(spec, ChaseJob) else dict(spec)


class ChaseServiceClient:
    """Talks to one daemon at ``base_url`` (e.g. ``http://127.0.0.1:8080``).

    Fault tolerance, all client-side and bounded:

    * Transient network failures (``ConnectionResetError``,
      ``URLError``, socket timeouts) on **idempotent GETs** are retried
      up to ``max_retries`` times with capped exponential backoff; POST
      bodies are never replayed on a network error (a submission whose
      response was lost may still have been admitted).  When the budget
      is exhausted the original exception is re-raised with the attempt
      count attached as a note.
    * Backpressure responses (429/503) are retried only when
      ``backpressure_retries`` > 0 (POSTs included: the daemon rejected
      the work, so a replay cannot double-submit).  The server's
      ``Retry-After`` header drives the delay, capped at
      ``backoff_cap`` seconds and jittered so a fleet of clients does
      not reconverge on the same instant.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 3,
        backpressure_retries: int = 0,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backpressure_retries = backpressure_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random()

    # -- plumbing ---------------------------------------------------------

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> float:
        """Capped, jittered delay before retry number ``attempt`` + 1."""
        delay = self.backoff_base * (2 ** attempt)
        if retry_after is not None:
            try:
                delay = float(retry_after)
            except ValueError:
                pass
        delay = min(self.backoff_cap, delay)
        return delay * self._rng.uniform(0.5, 1.0)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        timeout: Optional[float] = None,
    ):
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": content_type} if body is not None else {},
        )
        attempt = 0
        while True:
            try:
                return urllib.request.urlopen(request, timeout=timeout or self.timeout)
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    document = json.loads(raw)
                except json.JSONDecodeError:
                    document = {"error": raw.decode("utf-8", "replace")}
                if (
                    exc.code in _BACKPRESSURE_STATUSES
                    and attempt < self.backpressure_retries
                ):
                    time.sleep(self._backoff(attempt, exc.headers.get("Retry-After")))
                    attempt += 1
                    continue
                raise ServiceError(exc.code, document, attempts=attempt + 1) from None
            except (
                ConnectionError,
                socket.timeout,
                urllib.error.URLError,
            ) as exc:
                # Only GETs are safely replayable: the request provably
                # had no server-side effect or is idempotent to repeat.
                if method == "GET" and attempt < self.max_retries:
                    time.sleep(self._backoff(attempt, None))
                    attempt += 1
                    continue
                if attempt:
                    exc.add_note(f"giving up after {attempt + 1} attempts")
                raise

    def _json(self, method: str, path: str, body: Optional[bytes] = None, **kwargs) -> Dict[str, object]:
        with self._request(method, path, body, **kwargs) as response:
            return json.loads(response.read())

    # -- health and stats -------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._json("GET", "/stats")

    def wait_until_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> Dict[str, object]:
        """Poll ``/healthz`` until the daemon answers (startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError, socket.timeout):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    # -- jobs -------------------------------------------------------------

    def submit_job(self, spec: JobSpec) -> Dict[str, object]:
        """POST one job; raises :class:`ServiceError` on 4xx (e.g. 429)."""
        body = json.dumps(_entry(spec), sort_keys=True).encode("utf-8")
        return self._json("POST", "/jobs", body)

    def job(self, job_id: str, wait: Optional[float] = None) -> Dict[str, object]:
        suffix = f"?wait={wait}" if wait is not None else ""
        timeout = None if wait is None else wait + self.timeout
        return self._json("GET", f"/jobs/{job_id}{suffix}", timeout=timeout)

    def run_job(self, spec: JobSpec, timeout: float = 60.0) -> Dict[str, object]:
        """Submit, long-poll to terminal state, and return the record."""
        submitted = self.submit_job(spec)
        job_id = str(submitted["job_id"])
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not terminal after {timeout}s")
            record = self.job(job_id, wait=min(remaining, 10.0))
            if record["state"] == "done":
                return record

    # -- batches ----------------------------------------------------------

    def submit_batch(
        self,
        specs_or_text: Union[str, List[JobSpec]],
        admit_wait: Optional[float] = None,
    ) -> Dict[str, object]:
        """POST a JSONL manifest (text, or a list of jobs/entries).

        Without ``admit_wait`` admission is atomic: a manifest that
        exceeds the daemon's free queue capacity gets 429.  With it,
        the daemon admits with backpressure for up to that many
        seconds, so manifests larger than the queue bound stream
        through it.  The daemon clamps the window to half its record
        TTL (the 202 response reports ``admit_wait_effective``); jobs
        not admitted within it come back as rejected error rows.
        """
        if isinstance(specs_or_text, str):
            text = specs_or_text
        else:
            text = "".join(
                json.dumps(_entry(spec), sort_keys=True) + "\n" for spec in specs_or_text
            )
        suffix = f"?admit_wait={admit_wait}" if admit_wait is not None else ""
        timeout = self.timeout + (admit_wait or 0.0)
        return self._json(
            "POST",
            f"/batches{suffix}",
            text.encode("utf-8"),
            content_type="application/jsonl",
            timeout=timeout,
        )

    def iter_batch_results(
        self, batch_id: str, wait: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Stream a batch's result rows (trailer line included, last)."""
        suffix = f"?wait={wait}" if wait is not None else ""
        timeout = self.timeout + (wait if wait is not None else 3600.0)
        with self._request("GET", f"/batches/{batch_id}{suffix}", timeout=timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def batch_results(
        self, batch_id: str, wait: Optional[float] = None
    ) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
        """All result rows plus the trailer document, collected."""
        rows = list(self.iter_batch_results(batch_id, wait=wait))
        if not rows or "batch_id" not in rows[-1]:
            raise ServiceError(502, {"error": f"batch {batch_id} stream ended without trailer"})
        return rows[:-1], rows[-1]

    def run_batch(
        self,
        specs_or_text: Union[str, List[JobSpec]],
        wait: Optional[float] = None,
        admit_wait: Optional[float] = None,
    ) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
        """Submit a manifest and stream it to completion."""
        submitted = self.submit_batch(specs_or_text, admit_wait=admit_wait)
        return self.batch_results(str(submitted["batch_id"]), wait=wait)

    # -- lifecycle --------------------------------------------------------

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to drain and stop."""
        return self._json("POST", "/shutdown", b"")
