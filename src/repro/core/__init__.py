"""Core contribution: non-uniform chase termination analysis.

The modules in this subpackage implement the machinery of Sections 5–8
of the paper: the dependency graph and (non-uniform) weak-acyclicity,
the simplification and linearization transformations, the depth and
size bounds, the UCQ-based data-complexity procedure, and the ChTrm
decision procedures for simple linear, linear and guarded TGDs.
"""

from repro.core.classify import TGDClass, classify
from repro.core.dependency_graph import DependencyGraph, PredicateGraph
from repro.core.weak_acyclicity import (
    WeakAcyclicityReport,
    is_weakly_acyclic,
    is_weakly_acyclic_wrt,
    weak_acyclicity_report,
)
from repro.core.simplification import (
    simplify_atom,
    simplify_database,
    simplify_program,
    simplify_tgd,
    specializations,
)
from repro.core.linearization import (
    LinearizationResult,
    linearize,
    linearize_database,
    linearize_program,
)
from repro.core.bounds import (
    depth_bound,
    generic_size_bound,
    size_bound_factor,
)
from repro.core.ucq import TerminationUCQ, build_termination_ucq
from repro.core.decision import (
    DecisionMethod,
    TerminationVerdict,
    decide_termination,
    naive_decision,
    syntactic_decision,
)
from repro.core.termination import TerminationCertificate, certify, chase_size_bound
from repro.core.uniform import critical_database, is_uniformly_terminating

__all__ = [
    "critical_database",
    "is_uniformly_terminating",
    "TGDClass",
    "classify",
    "DependencyGraph",
    "PredicateGraph",
    "WeakAcyclicityReport",
    "is_weakly_acyclic",
    "is_weakly_acyclic_wrt",
    "weak_acyclicity_report",
    "simplify_atom",
    "simplify_tgd",
    "simplify_program",
    "simplify_database",
    "specializations",
    "LinearizationResult",
    "linearize",
    "linearize_program",
    "linearize_database",
    "depth_bound",
    "size_bound_factor",
    "generic_size_bound",
    "TerminationUCQ",
    "build_termination_ucq",
    "DecisionMethod",
    "TerminationVerdict",
    "decide_termination",
    "syntactic_decision",
    "naive_decision",
    "TerminationCertificate",
    "certify",
    "chase_size_bound",
]
