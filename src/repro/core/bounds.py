"""The paper's depth and size bounds (Sections 5–8).

* ``d_C(Σ)`` bounds ``maxdepth(D, Σ)`` for ``Σ ∈ C ∩ CT_D``:

  - ``d_SL(Σ) = |sch(Σ)| · ar(Σ)``
  - ``d_L(Σ)  = |sch(Σ)| · ar(Σ)^(ar(Σ)+1)``
  - ``d_G(Σ)  = |sch(Σ)| · ar(Σ)^(2·ar(Σ)+1) · 2^(|sch(Σ)| · ar(Σ)^ar(Σ))``

* ``f_C(Σ) = (d_C(Σ)+1) · ‖Σ‖^(2·ar(Σ)·(d_C(Σ)+1))`` bounds
  ``|chase(D, Σ)| / |D|`` (Theorems 6.4, 7.5, 8.3).

* the generic bound of Proposition 5.2 bounds ``|chase(D, Σ)|`` by
  ``|D| · (d+1) · ‖Σ‖^(2·ar(Σ)·(d+1))`` for guarded Σ, where ``d`` is
  the (measured) maximal depth.

The values are exact Python integers; for guarded sets they become
astronomically large, which is precisely the paper's point about the
naive decision procedure.
"""

from __future__ import annotations

from typing import Optional

from repro.model.tgd import TGDSet
from repro.core.classify import TGDClass, classify


def depth_bound(tgds: TGDSet, tgd_class: TGDClass | None = None) -> int:
    """``d_C(Σ)`` for the given (or inferred) class ``C ∈ {SL, L, G}``."""
    tgd_class = tgd_class or classify(tgds)
    schema_size = len(tgds.schema())
    arity = max(tgds.arity(), 1)
    if tgd_class is TGDClass.SIMPLE_LINEAR:
        return schema_size * arity
    if tgd_class is TGDClass.LINEAR:
        return schema_size * arity ** (arity + 1)
    if tgd_class is TGDClass.GUARDED:
        return schema_size * arity ** (2 * arity + 1) * 2 ** (schema_size * arity**arity)
    raise ValueError(
        "the paper provides depth bounds for SL, L and G only; "
        f"got class {tgd_class}"
    )


def depth_bound_within(
    tgds: TGDSet,
    cap: int,
    tgd_class: TGDClass | None = None,
) -> Optional[int]:
    """``d_C(Σ)`` when it is at most ``cap``, else ``None``.

    The guarded depth bound contains ``2^(|sch|·ar^ar)``, which can be
    astronomically large; like :func:`size_bound_within` this rejects
    hopeless cases from the exponent alone (``2^e > cap`` whenever
    ``e ≥ bitlen(cap)``) before materialising any big power, so the
    conformance monitor can call it on every job.
    """
    tgd_class = tgd_class or classify(tgds)
    if tgd_class is TGDClass.GUARDED:
        schema_size = len(tgds.schema())
        arity = max(tgds.arity(), 1)
        exponent = schema_size * arity**arity
        if exponent >= max(cap, 1).bit_length():
            return None
    value = depth_bound(tgds, tgd_class)
    return value if value <= cap else None


def size_bound_factor(tgds: TGDSet, tgd_class: TGDClass | None = None) -> int:
    """``f_C(Σ) = (d_C(Σ)+1) · ‖Σ‖^(2·ar(Σ)·(d_C(Σ)+1))``."""
    tgd_class = tgd_class or classify(tgds)
    depth = depth_bound(tgds, tgd_class)
    norm = max(tgds.norm(), 1)
    arity = max(tgds.arity(), 1)
    return (depth + 1) * norm ** (2 * arity * (depth + 1))


def size_bound(database_size: int, tgds: TGDSet, tgd_class: TGDClass | None = None) -> int:
    """``|D| · f_C(Σ)``: the paper's bound on ``|chase(D, Σ)|``.

    Beware: for guarded sets the value is astronomically large and this
    computes it exactly; callers that only need to know whether the
    bound is *practically usable* should use :func:`size_bound_within`,
    which refuses to materialise over-cap powers.
    """
    return database_size * size_bound_factor(tgds, tgd_class)


def size_bound_within(
    database_size: int,
    tgds: TGDSet,
    cap: int,
    tgd_class: TGDClass | None = None,
) -> Optional[int]:
    """``|D| · f_C(Σ)`` when it is at most ``cap``, else ``None``.

    The guarded bounds involve powers whose exponents are themselves
    astronomically large; naively exponentiating would exhaust memory.
    A bit-length estimate (``norm^e ≥ 2^(e·(bitlen(norm)−1))``) rejects
    hopeless cases before any big power is materialised, so this is
    safe to call on every job the budget policy sees.
    """
    tgd_class = tgd_class or classify(tgds)
    depth = depth_bound(tgds, tgd_class)
    norm = max(tgds.norm(), 1)
    arity = max(tgds.arity(), 1)
    exponent = 2 * arity * (depth + 1)
    if norm > 1 and exponent * (norm.bit_length() - 1) >= max(cap, 1).bit_length():
        return None
    value = database_size * (depth + 1) * norm**exponent
    return value if value <= cap else None


def generic_size_bound(database_size: int, tgds: TGDSet, max_depth: int) -> int:
    """Proposition 5.2: ``|D| · (d+1) · ‖Σ‖^(2·ar(Σ)·(d+1))``."""
    norm = max(tgds.norm(), 1)
    arity = max(tgds.arity(), 1)
    return database_size * (max_depth + 1) * norm ** (2 * arity * (max_depth + 1))


def per_tree_depth_slice_bound(tgds: TGDSet, depth: int) -> int:
    """Lemma 5.1: ``|gtree_i(δ, α)| ≤ ‖Σ‖^(2·ar(Σ)·(i+1))``."""
    norm = max(tgds.norm(), 1)
    arity = max(tgds.arity(), 1)
    return norm ** (2 * arity * (depth + 1))


def magnitude(value: int, threshold_digits: int = 30) -> str:
    """A printable form of a possibly astronomically large bound.

    Values with at most ``threshold_digits`` digits are rendered
    exactly; larger ones as ``~10^k``.  (Python refuses to stringify
    integers beyond a few thousand digits, and the guarded bounds
    easily exceed that.)
    """
    bits = value.bit_length()
    digits_estimate = int(bits * 0.30103) + 1
    if digits_estimate <= threshold_digits:
        return str(value)
    return f"~10^{digits_estimate - 1}"


def sl_lower_bound_value(database_size: int, predicates: int, arity: int) -> int:
    """Theorem 6.5: ``|chase(D_ℓ, Σ_{n,m})| ≥ ℓ · m^(n·m)``.

    ``predicates`` is the paper's ``n`` (one less than ``|sch(Σ)|``) and
    ``arity`` its ``m``.
    """
    return database_size * arity ** (predicates * arity)


def linear_lower_bound_value(database_size: int, predicates: int, arity: int) -> int:
    """Theorem 7.6: ``|chase(D_ℓ, Σ_{n,m})| ≥ ℓ · 2^(n·(2^m − 1))``."""
    return database_size * 2 ** (predicates * (2**arity - 1))


def guarded_lower_bound_value(database_size: int, predicates: int, arity: int) -> int:
    """Theorem 8.4: ``|chase(D_ℓ, Σ_{n,m})| ≥ ℓ · 2^(2^n · (2^(2^m) − 1))``."""
    return database_size * 2 ** (2**predicates * (2 ** (2**arity) - 1))
