"""Unified static termination verdicts: terminating / diverging / undetermined.

One entry point — :func:`analyze_termination` — layers every static
criterion the repo knows, cheapest first, and returns a per-variant
verdict with an explanation trace:

1. **Characterization** (SL / L / G only): the paper's exact criteria
   via :func:`repro.core.decision.syntactic_decision`.  ``True`` means
   the *semi-oblivious* chase terminates on this database (and the
   restricted chase with it, firing a subset of triggers); ``False``
   means it diverges — and so does the oblivious chase, which fires a
   superset of triggers.  Neither direction decides the *restricted*
   chase negatively nor the *oblivious* chase positively.
2. **Weak acyclicity** (classic for semi-oblivious/restricted,
   augmented for oblivious), uniformly or relative to the database's
   predicates: facts only ever appear over predicates reachable from
   the database in the predicate graph, so acyclicity of the induced
   subgraph suffices, and its rank bounds ``maxdepth``.
3. **Stratification** with the matching per-stratum acyclicity check
   (:mod:`repro.core.stratification`).
4. **MFA** (:mod:`repro.core.acyclicity`), full-label for the
   oblivious chase, frontier-label otherwise.

The soundness direction is deliberately asymmetric: ``terminating``
only ever comes from a criterion sound for the *requested* variant,
and ``diverging`` only from the paper's exact characterizations.
Everything else is ``undetermined`` — never a guess.

:class:`TerminationAnalyzer` adds an LRU memo keyed on content
fingerprints so the budget policy and the service admission path can
consult verdicts per job without re-running graph analyses for
recurring programs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.model.instance import Database
from repro.model.tgd import TGDSet
from repro.core.acyclicity import MFA_ACYCLIC, MFA_CYCLIC, mfa_check
from repro.core.bounds import depth_bound, magnitude
from repro.core.classify import TGDClass, classify
from repro.core.decision import syntactic_decision
from repro.core.dependency_graph import DependencyGraph, PredicateGraph
from repro.core.stratification import (
    AugmentedDependencyGraph,
    positions_of_predicates,
    rank_depth_bound,
    stratification_report,
)

TERMINATING = "terminating"
DIVERGING = "diverging"
UNDETERMINED = "undetermined"

#: Variants a verdict can be requested for (the chase runner spellings).
ANALYSIS_VARIANTS: Tuple[str, ...] = ("oblivious", "semi-oblivious", "restricted")

#: Guarded characterization involves linearization, whose type
#: construction is exponential in the arity; skip it for sets/databases
#: beyond these sizes and let the uniform layers have a go instead.
GUARDED_NORM_CAP = 5_000
GUARDED_DATABASE_CAP = 10_000


@dataclass(frozen=True)
class TerminationReport:
    """A static termination verdict for one chase variant.

    ``depth_bound`` is a bound on ``maxdepth(D, Σ)`` for the analyzed
    variant when the verdict is ``terminating`` and the deciding layer
    yields one (it may be ``None`` — terminating with no usable bound).
    ``trace`` records one line per layer tried, for explanation.
    """

    verdict: str
    variant: str
    method: Optional[str]
    tgd_class: str
    depth_bound: Optional[int]
    trace: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (huge bounds rendered as magnitudes)."""
        bound: Optional[object] = self.depth_bound
        if isinstance(bound, int) and bound.bit_length() > 64:
            bound = magnitude(bound)
        return {
            "verdict": self.verdict,
            "variant": self.variant,
            "method": self.method,
            "class": self.tgd_class,
            "depth_bound": bound,
            "trace": list(self.trace),
        }


def _reachable_predicates(database: Database, tgds: TGDSet) -> Set:
    """Predicates reachable (``⇝_Σ``) from the database's predicates."""
    graph = PredicateGraph(tgds)
    reachable: Set = set()
    for predicate in database.predicates():
        if predicate in reachable:
            continue
        reachable |= graph.reachable_from(predicate)
    return reachable


def analyze_termination(
    database: Optional[Database],
    tgds: TGDSet,
    variant: str = "semi-oblivious",
    mfa_max_facts: int = 20_000,
    mfa_max_triggers: int = 200_000,
) -> TerminationReport:
    """Layered static analysis for one chase variant.

    ``database=None`` requests a *uniform* verdict: the database-aware
    layers (characterization, D-relative weak acyclicity) are skipped,
    and a ``terminating`` answer holds for every database.
    """
    if variant not in ANALYSIS_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}, expected one of {ANALYSIS_VARIANTS}")
    trace = []
    tgd_class = classify(tgds)
    oblivious = variant == "oblivious"

    # Layer 1: the paper's exact characterizations (database-aware).
    if database is not None and tgd_class.has_paper_bounds:
        guarded = tgd_class is TGDClass.GUARDED
        if guarded and (tgds.norm() > GUARDED_NORM_CAP or len(database) > GUARDED_DATABASE_CAP):
            trace.append(
                f"characterization: skipped (guarded set over size cap, norm={tgds.norm()})"
            )
        else:
            try:
                verdict = syntactic_decision(database, tgds)
            except Exception as exc:  # noqa: BLE001 - analysis must never take a job down
                trace.append(f"characterization: failed ({type(exc).__name__}: {exc})")
                verdict = None
            if verdict is not None and verdict.terminates is True:
                if oblivious:
                    trace.append(
                        "characterization: CT_D holds (semi-oblivious); "
                        "not sound for the oblivious chase, continuing"
                    )
                else:
                    trace.append(f"characterization: CT_D holds via {verdict.method.value}")
                    return TerminationReport(
                        verdict=TERMINATING,
                        variant=variant,
                        method=f"characterization({verdict.method.value})",
                        tgd_class=tgd_class.value,
                        depth_bound=depth_bound(tgds, tgd_class),
                        trace=tuple(trace),
                    )
            elif verdict is not None and verdict.terminates is False:
                if variant == "restricted":
                    trace.append(
                        "characterization: CT_D fails (semi-oblivious); "
                        "restricted chase may still terminate, continuing"
                    )
                else:
                    trace.append(f"characterization: CT_D fails via {verdict.method.value}")
                    return TerminationReport(
                        verdict=DIVERGING,
                        variant=variant,
                        method=f"characterization({verdict.method.value})",
                        tgd_class=tgd_class.value,
                        depth_bound=None,
                        trace=tuple(trace),
                    )

    # Layer 2: weak acyclicity with the variant's labelling discipline.
    graph = AugmentedDependencyGraph(tgds) if oblivious else DependencyGraph(tgds)
    graph_name = "augmented-weak-acyclicity" if oblivious else "weak-acyclicity"
    bound = rank_depth_bound(graph)
    if bound is not None:
        trace.append(f"{graph_name}: acyclic, rank bound {bound}")
        return TerminationReport(
            verdict=TERMINATING,
            variant=variant,
            method=graph_name,
            tgd_class=tgd_class.value,
            depth_bound=bound,
            trace=tuple(trace),
        )
    trace.append(f"{graph_name}: special cycle")
    if database is not None:
        reachable = _reachable_predicates(database, tgds)
        bound = rank_depth_bound(graph, within=positions_of_predicates(reachable))
        if bound is not None:
            trace.append(f"{graph_name}(D): acyclic on reachable predicates, rank bound {bound}")
            return TerminationReport(
                verdict=TERMINATING,
                variant=variant,
                method=f"{graph_name}(D)",
                tgd_class=tgd_class.value,
                depth_bound=bound,
                trace=tuple(trace),
            )
        trace.append(f"{graph_name}(D): special cycle over database-reachable predicates")

    # Layer 3: stratification with the matching per-stratum check.
    strat = stratification_report(tgds, augmented=oblivious)
    if strat.stratified:
        trace.append(
            f"stratification: {len(strat.strata)} strata, "
            f"{len(strat.cyclic_strata)} cyclic, bound {strat.depth_bound}"
        )
        return TerminationReport(
            verdict=TERMINATING,
            variant=variant,
            method="stratification" + ("(augmented)" if oblivious else ""),
            tgd_class=tgd_class.value,
            depth_bound=strat.depth_bound,
            trace=tuple(trace),
        )
    trace.append(
        f"stratification: stratum {'+'.join(strat.failed_stratum or ())} "
        "fails per-stratum acyclicity"
    )

    # Layer 4: MFA over the critical instance.
    mfa = mfa_check(
        tgds,
        mode="full" if oblivious else "frontier",
        max_facts=mfa_max_facts,
        max_triggers=mfa_max_triggers,
    )
    if mfa.status == MFA_ACYCLIC:
        trace.append(
            f"mfa({mfa.mode}): acyclic, critical chase depth {mfa.depth_bound} "
            f"({mfa.facts} facts)"
        )
        return TerminationReport(
            verdict=TERMINATING,
            variant=variant,
            method=f"mfa({mfa.mode})",
            tgd_class=tgd_class.value,
            depth_bound=mfa.depth_bound,
            trace=tuple(trace),
        )
    if mfa.status == MFA_CYCLIC:
        trace.append(f"mfa({mfa.mode}): cyclic term via rule {mfa.cyclic_rule_id}")
    else:
        trace.append(f"mfa({mfa.mode}): undetermined ({mfa.reason})")

    return TerminationReport(
        verdict=UNDETERMINED,
        variant=variant,
        method=None,
        tgd_class=tgd_class.value,
        depth_bound=None,
        trace=tuple(trace),
    )


class TerminationAnalyzer:
    """An :func:`analyze_termination` front end with a content-keyed memo.

    Keys are (program fingerprint, database fingerprint, variant) — the
    same canonical fingerprints the job layer uses, so rule reordering
    and renamings hit the same entry.  The memo is bounded LRU; the
    service's scheduler threads may share one instance (reads and
    writes hold the GIL per operation, and a racy double-compute is
    harmless).
    """

    def __init__(self, max_entries: int = 256, **analysis_options: int) -> None:
        self.max_entries = max_entries
        self.analysis_options = analysis_options
        self._memo: "OrderedDict[Tuple[str, str, str], TerminationReport]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def analyze(
        self,
        database: Optional[Database],
        tgds: TGDSet,
        variant: str = "semi-oblivious",
    ) -> TerminationReport:
        from repro.runtime.jobs import database_fingerprint, program_fingerprint

        key = (
            program_fingerprint(tgds),
            database_fingerprint(database) if database is not None else "-",
            variant,
        )
        cached = self._memo.get(key)
        if cached is not None:
            self._memo.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        report = analyze_termination(database, tgds, variant, **self.analysis_options)
        self._memo[key] = report
        if len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)
        return report
