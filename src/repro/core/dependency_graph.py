"""Dependency graph ``dg(Σ)`` and predicate graph ``pg(Σ)`` (Section 6).

The dependency graph is a directed multigraph over the predicate
positions of ``sch(Σ)``.  For every TGD ``σ``, every frontier variable
``x`` and every position ``π`` at which ``x`` occurs in the body:

* a *normal* edge goes from ``π`` to every position at which ``x``
  occurs in a head atom, and
* a *special* edge goes from ``π`` to every position at which an
  existentially quantified variable occurs in a head atom.

The predicate graph has the predicates of ``sch(Σ)`` as nodes and an
edge ``(R, P)`` whenever ``R`` occurs in the body and ``P`` in the head
of the same TGD; reachability in it gives ``R ⇝_Σ P``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.model.atoms import Atom, Position, Predicate, atoms_schema
from repro.model.instance import Database
from repro.model.tgd import TGD, TGDSet


@dataclass(frozen=True)
class Edge:
    """A dependency-graph edge; ``special`` marks existential propagation."""

    source: Position
    target: Position
    special: bool
    rule_id: str

    def __str__(self) -> str:
        arrow = "=*=>" if self.special else "--->"
        return f"{self.source} {arrow} {self.target} [{self.rule_id}]"


class DependencyGraph:
    """The dependency graph ``dg(Σ)`` of a set of TGDs."""

    def __init__(self, tgds: TGDSet) -> None:
        self.tgds = tgds
        self.nodes: Set[Position] = set()
        for predicate in tgds.schema():
            self.nodes.update(predicate.positions())
        self.edges: List[Edge] = []
        self._outgoing: Dict[Position, List[Edge]] = defaultdict(list)
        self._build()

    def _build(self) -> None:
        for tgd in self.tgds:
            existentials = tgd.existential_variables()
            for variable in tgd.frontier():
                body_positions = tgd.positions_of_variable_in_body(variable)
                for source in body_positions:
                    for head_atom in tgd.head:
                        for target in head_atom.positions_of(variable):
                            self._add_edge(source, target, special=False, rule_id=tgd.rule_id)
                        for existential in existentials:
                            for target in head_atom.positions_of(existential):
                                self._add_edge(source, target, special=True, rule_id=tgd.rule_id)

    def _add_edge(self, source: Position, target: Position, special: bool, rule_id: str) -> None:
        edge = Edge(source=source, target=target, special=special, rule_id=rule_id)
        self.edges.append(edge)
        self._outgoing[source].append(edge)

    # -- graph queries ------------------------------------------------------

    def outgoing(self, position: Position) -> List[Edge]:
        return self._outgoing.get(position, [])

    def special_edges(self) -> List[Edge]:
        return [e for e in self.edges if e.special]

    def normal_edges(self) -> List[Edge]:
        return [e for e in self.edges if not e.special]

    def strongly_connected_components(self) -> List[Set[Position]]:
        """Tarjan-style SCC decomposition of the position graph."""
        index_counter = [0]
        stack: List[Position] = []
        lowlink: Dict[Position, int] = {}
        index: Dict[Position, int] = {}
        on_stack: Set[Position] = set()
        components: List[Set[Position]] = []

        def strongconnect(node: Position) -> None:
            # Iterative Tarjan to avoid recursion limits on large schemas.
            work = [(node, iter(self.outgoing(node)))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, edge_iter = work[-1]
                advanced = False
                for edge in edge_iter:
                    successor = edge.target
                    if successor not in index:
                        index[successor] = lowlink[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(self.outgoing(successor))))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[current] = min(lowlink[current], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component: Set[Position] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == current:
                            break
                    components.append(component)

        for node in self.nodes:
            if node not in index:
                strongconnect(node)
        return components

    def positions_on_special_cycle(self) -> Set[Position]:
        """Positions lying on some cycle that traverses a special edge.

        A special edge ``(π, π')`` lies on a cycle iff both endpoints
        are in the same strongly connected component; every position of
        that component then lies on such a cycle.
        """
        components = self.strongly_connected_components()
        component_of: Dict[Position, int] = {}
        for i, component in enumerate(components):
            for position in component:
                component_of[position] = i
        flagged: Set[int] = set()
        for edge in self.edges:
            if not edge.special:
                continue
            if edge.source == edge.target:
                flagged.add(component_of[edge.source])
                continue
            if component_of[edge.source] == component_of[edge.target]:
                flagged.add(component_of[edge.source])
        result: Set[Position] = set()
        for i in flagged:
            result |= components[i]
        return result

    def has_special_cycle(self) -> bool:
        """True iff ``dg(Σ)`` has a cycle with a special edge (¬ weak acyclicity)."""
        return bool(self.positions_on_special_cycle())

    def witness_special_cycle(self) -> Optional[List[Edge]]:
        """A concrete cycle through a special edge, for error reporting."""
        flagged = self.positions_on_special_cycle()
        for edge in self.special_edges():
            if edge.source not in flagged or edge.target not in flagged:
                continue
            path = self._find_path(edge.target, edge.source, within=flagged)
            if path is not None:
                return [edge] + path
        return None

    def _find_path(
        self, start: Position, goal: Position, within: Set[Position]
    ) -> Optional[List[Edge]]:
        """A BFS path from ``start`` to ``goal`` staying inside ``within``."""
        if start == goal:
            return []
        queue = deque([start])
        predecessor: Dict[Position, Edge] = {}
        seen = {start}
        while queue:
            node = queue.popleft()
            for edge in self.outgoing(node):
                successor = edge.target
                if successor not in within or successor in seen:
                    continue
                predecessor[successor] = edge
                if successor == goal:
                    path: List[Edge] = []
                    current = goal
                    while current != start:
                        edge_in = predecessor[current]
                        path.append(edge_in)
                        current = edge_in.source
                    path.reverse()
                    return path
                seen.add(successor)
                queue.append(successor)
        return None


class PredicateGraph:
    """The predicate graph ``pg(Σ)`` and the reachability relation ``⇝_Σ``."""

    def __init__(self, tgds: TGDSet) -> None:
        self.tgds = tgds
        self.nodes: Set[Predicate] = tgds.schema()
        self._successors: Dict[Predicate, Set[Predicate]] = defaultdict(set)
        for tgd in tgds:
            body_predicates = atoms_schema(tgd.body)
            head_predicates = atoms_schema(tgd.head)
            for body_predicate in body_predicates:
                self._successors[body_predicate] |= head_predicates

    def successors(self, predicate: Predicate) -> Set[Predicate]:
        return self._successors.get(predicate, set())

    def reachable_from(self, predicate: Predicate) -> Set[Predicate]:
        """``{P | predicate ⇝_Σ P}`` (reflexive by definition of ⇝)."""
        seen: Set[Predicate] = {predicate}
        queue = deque([predicate])
        while queue:
            current = queue.popleft()
            for successor in self.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return seen

    def reaches(self, source: Predicate, target: Predicate) -> bool:
        """``source ⇝_Σ target``."""
        return target in self.reachable_from(source)

    def predicates_reaching(self, targets: Iterable[Predicate]) -> Set[Predicate]:
        """All predicates ``R`` with ``R ⇝_Σ P`` for some ``P`` in ``targets``.

        Computed by a single backward traversal over the reversed graph.
        """
        reverse: Dict[Predicate, Set[Predicate]] = defaultdict(set)
        for source, successors in self._successors.items():
            for successor in successors:
                reverse[successor].add(source)
        wanted = set(targets)
        seen: Set[Predicate] = set(wanted)
        queue = deque(wanted)
        while queue:
            current = queue.popleft()
            for predecessor in reverse.get(current, ()):
                if predecessor not in seen:
                    seen.add(predecessor)
                    queue.append(predecessor)
        return seen
