"""Uniform chase termination (Section 4 background, results from [8]).

The paper contrasts its *non-uniform* analysis with the classical
*uniform* one: does the chase terminate for **every** database?  For
simple linear TGDs, uniform termination coincides with (plain)
weak-acyclicity, and — as used in the hardness proofs of [8] and in the
NL-hardness discussion of Theorem 6.6 — it also coincides with
non-uniform termination over the *critical database*, which contains
every fact that can be formed from the schema and a single constant.

These helpers make the uniform/non-uniform comparison of Section 4
executable and give the workloads for the uniform-vs-non-uniform tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant
from repro.model.tgd import TGDSet
from repro.core.classify import TGDClass, classify
from repro.core.decision import TerminationVerdict, syntactic_decision
from repro.core.weak_acyclicity import is_weakly_acyclic


def critical_database(
    schema: Iterable[Predicate], constant: Optional[Constant] = None
) -> Database:
    """The critical database: one fact per predicate, over a single constant.

    ``D_Σ = {R(c, ..., c) | R ∈ sch(Σ)}`` is the hardest database for
    uniform termination of guarded TGDs: the chase of any database
    embeds homomorphically into the chase of ``D_Σ`` (up to renaming
    the constant), so uniform termination reduces to non-uniform
    termination over ``D_Σ``.
    """
    constant = constant or Constant("crit")
    database = Database()
    for predicate in schema:
        if predicate.arity == 0:
            database.add(Atom(predicate, ()))
        else:
            database.add(Atom(predicate, tuple([constant] * predicate.arity)))
    return database


def is_uniformly_terminating(tgds: TGDSet) -> bool:
    """Does the chase of *every* database w.r.t. ``Σ`` terminate?

    For the guarded classes this is decided by running the non-uniform
    procedure over the critical database; for simple linear TGDs the
    answer additionally coincides with plain weak-acyclicity, which the
    test suite cross-checks.
    """
    tgd_class = classify(tgds)
    if tgd_class is TGDClass.ARBITRARY:
        raise ValueError(
            "uniform termination is undecidable for arbitrary TGDs; "
            "restrict to the guarded fragment"
        )
    verdict = syntactic_decision(critical_database(tgds.schema()), tgds)
    return bool(verdict.terminates)


def uniform_verdict(tgds: TGDSet) -> TerminationVerdict:
    """The full verdict of the uniform check (over the critical database)."""
    return syntactic_decision(critical_database(tgds.schema()), tgds)


def uniform_weak_acyclicity_agrees(tgds: TGDSet) -> bool:
    """Convenience: does plain weak-acyclicity give the same uniform answer?

    For simple linear TGDs the two always agree (the characterisation
    of [8]); for non-simple linear TGDs weak-acyclicity can be a strict
    under-approximation (Example 7.1).
    """
    return is_weakly_acyclic(tgds) == is_uniformly_terminating(tgds)
