"""Uniform and non-uniform weak-acyclicity (Definition 6.1).

Uniform weak-acyclicity [Fagin et al.] requires that the dependency
graph ``dg(Σ)`` has no cycle through a special edge.  The paper's
*non-uniform* variant relativises this to a database ``D``: only cycles
that are ``D``-supported matter, where a cycle is ``D``-supported if
some database predicate ``R`` reaches (via ``⇝_Σ``) a predicate ``P``
appearing in the cycle.

For simple linear TGDs, ``Σ ∈ CT_D`` iff ``Σ`` is ``D``-weakly-acyclic
(Theorem 6.4); the linear and guarded cases reduce to this one through
simplification and linearization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.model.atoms import Position, Predicate
from repro.model.instance import Database
from repro.model.tgd import TGDSet
from repro.core.dependency_graph import DependencyGraph, Edge, PredicateGraph


@dataclass(frozen=True)
class WeakAcyclicityReport:
    """The full evidence produced by the weak-acyclicity analysis.

    Attributes
    ----------
    uniformly_weakly_acyclic:
        True iff ``dg(Σ)`` has no cycle with a special edge at all.
    weakly_acyclic_wrt_database:
        True iff no such cycle is ``D``-supported (Definition 6.1);
        ``None`` when no database was supplied.
    positions_on_special_cycles:
        All positions lying on a cycle with a special edge.
    supporting_predicates:
        Database predicates ``R`` that reach (``⇝_Σ``) a predicate with
        a position on a special cycle — the "reasons" a violation is
        supported.
    witness_cycle:
        One concrete offending cycle, for diagnostics.
    """

    uniformly_weakly_acyclic: bool
    weakly_acyclic_wrt_database: Optional[bool]
    positions_on_special_cycles: frozenset
    supporting_predicates: frozenset
    witness_cycle: Optional[Tuple[Edge, ...]]


def _violating_predicates(dependency_graph: DependencyGraph) -> Set[Predicate]:
    """Predicates owning a position that lies on a special cycle."""
    return {position.predicate for position in dependency_graph.positions_on_special_cycle()}


def is_weakly_acyclic(tgds: TGDSet) -> bool:
    """Uniform weak-acyclicity: no cycle with a special edge in ``dg(Σ)``."""
    return not DependencyGraph(tgds).has_special_cycle()


def is_weakly_acyclic_wrt(database: Database, tgds: TGDSet) -> bool:
    """Non-uniform weak-acyclicity of ``Σ`` w.r.t. ``D`` (Definition 6.1).

    ``Σ`` is ``D``-weakly-acyclic iff no cycle of ``dg(Σ)`` with a
    special edge is ``D``-supported.  A cycle is ``D``-supported iff the
    database contains an atom whose predicate reaches, in the predicate
    graph, some predicate appearing in the cycle.
    """
    dependency_graph = DependencyGraph(tgds)
    cycle_predicates = _violating_predicates(dependency_graph)
    if not cycle_predicates:
        return True
    predicate_graph = PredicateGraph(tgds)
    supporting = predicate_graph.predicates_reaching(cycle_predicates)
    database_predicates = database.predicates()
    return not (database_predicates & supporting)


def supporting_database_predicates(database: Database, tgds: TGDSet) -> Set[Predicate]:
    """Database predicates that support some special cycle of ``dg(Σ)``."""
    dependency_graph = DependencyGraph(tgds)
    cycle_predicates = _violating_predicates(dependency_graph)
    if not cycle_predicates:
        return set()
    predicate_graph = PredicateGraph(tgds)
    supporting = predicate_graph.predicates_reaching(cycle_predicates)
    return database.predicates() & supporting


def weak_acyclicity_report(
    tgds: TGDSet, database: Optional[Database] = None
) -> WeakAcyclicityReport:
    """Run the whole analysis and package the evidence."""
    dependency_graph = DependencyGraph(tgds)
    flagged_positions = dependency_graph.positions_on_special_cycle()
    uniformly = not flagged_positions
    witness = dependency_graph.witness_special_cycle()
    if database is None:
        return WeakAcyclicityReport(
            uniformly_weakly_acyclic=uniformly,
            weakly_acyclic_wrt_database=None,
            positions_on_special_cycles=frozenset(flagged_positions),
            supporting_predicates=frozenset(),
            witness_cycle=tuple(witness) if witness else None,
        )
    supporting = supporting_database_predicates(database, tgds)
    return WeakAcyclicityReport(
        uniformly_weakly_acyclic=uniformly,
        weakly_acyclic_wrt_database=not supporting,
        positions_on_special_cycles=frozenset(flagged_positions),
        supporting_predicates=frozenset(supporting),
        witness_cycle=tuple(witness) if witness else None,
    )
