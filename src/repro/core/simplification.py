"""Simplification of linear TGDs (Definition 7.2).

Simplification eliminates repeated variables from the bodies of linear
TGDs by moving the equality type of every atom into its predicate name:
the atom ``R(t1, ..., tn)`` becomes ``R_id(t̄)(unique(t̄))`` where
``unique(t̄)`` keeps the first occurrence of every term and ``id(t̄)``
records which original position carries which distinct term.  A linear
TGD induces one simple linear TGD per *specialization* of its body
variables (each way of identifying body variables with earlier ones).

Proposition 7.3 states that the transformation preserves both the
finiteness of the chase and the maximal term depth, which is what makes
it usable for the termination analysis of linear TGDs; the test suite
checks this empirically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Term, Variable
from repro.model.tgd import TGD, TGDSet


def unique_tuple(args: Sequence[Term]) -> Tuple[Term, ...]:
    """``unique(t̄)``: keep only the first occurrence of each term."""
    seen: List[Term] = []
    for term in args:
        if term not in seen:
            seen.append(term)
    return tuple(seen)


def id_tuple(args: Sequence[Term]) -> Tuple[int, ...]:
    """``id(t̄)``: 1-based index of each term within ``unique(t̄)``."""
    uniques = unique_tuple(args)
    return tuple(uniques.index(term) + 1 for term in args)


def simplified_predicate(predicate: Predicate, identifiers: Sequence[int]) -> Predicate:
    """The simplified predicate ``R_id(t̄)`` with one position per distinct term."""
    suffix = ",".join(str(i) for i in identifiers)
    arity = max(identifiers) if identifiers else 0
    return Predicate(name=f"{predicate.name}[{suffix}]", arity=arity)


def simplify_atom(atom: Atom) -> Atom:
    """``simple(α) = R_id(t̄)(unique(t̄))``."""
    identifiers = id_tuple(atom.args)
    return Atom(simplified_predicate(atom.predicate, identifiers), unique_tuple(atom.args))


def specializations(variables: Sequence[Variable]) -> Iterator[Dict[Variable, Variable]]:
    """All specializations of a tuple of distinct variables.

    A specialization maps the first variable to itself and every later
    variable either to (the image of) an earlier variable or to itself,
    i.e. it enumerates the ways of identifying body variables that a
    body homomorphism could induce.
    """
    distinct: List[Variable] = []
    for variable in variables:
        if variable not in distinct:
            distinct.append(variable)
    if not distinct:
        yield {}
        return

    def extend(index: int, mapping: Dict[Variable, Variable]) -> Iterator[Dict[Variable, Variable]]:
        if index == len(distinct):
            yield dict(mapping)
            return
        variable = distinct[index]
        choices = list(dict.fromkeys(mapping.values())) + [variable]
        for choice in choices:
            mapping[variable] = choice
            yield from extend(index + 1, mapping)
        del mapping[variable]

    yield from extend(1, {distinct[0]: distinct[0]})


def simplify_tgd(tgd: TGD) -> List[TGD]:
    """``simple(σ)``: all simplifications of a linear TGD (Definition 7.2)."""
    if not tgd.is_linear:
        raise ValueError(f"simplification is defined for linear TGDs only, got {tgd}")
    body_atom = tgd.body[0]
    result: List[TGD] = []
    for index, specialization in enumerate(specializations(body_atom.args)):
        mapping: Dict[Term, Term] = dict(specialization)
        specialized_body = body_atom.substitute(mapping)
        specialized_head = tuple(a.substitute(mapping) for a in tgd.head)
        simplified = TGD(
            body=(simplify_atom(specialized_body),),
            head=tuple(simplify_atom(a) for a in specialized_head),
            rule_id=f"{tgd.rule_id}|s{index}",
        )
        result.append(simplified)
    return result


def simplify_program(tgds: TGDSet) -> TGDSet:
    """``simple(Σ)``: the union of the simplifications of every TGD of Σ."""
    simplified: List[TGD] = []
    for tgd in tgds:
        simplified.extend(simplify_tgd(tgd))
    return TGDSet(simplified, name=f"simple({tgds.name})")


def simplify_database(database: Database) -> Database:
    """``simple(D)``: the simplification of every fact of the database."""
    return Database(simplify_atom(a) for a in database)
