"""Firing-order stratification and augmented weak-acyclicity.

Two database-independent termination criteria layered above the
dependency-graph machinery of :mod:`repro.core.dependency_graph`,
feeding the unified verdicts of :mod:`repro.core.termination_analysis`:

* the *augmented* dependency graph ``adg(Σ)`` draws special edges from
  **every** body-variable position — not only frontier positions — to
  the existential head positions.  This matches the oblivious chase,
  whose nulls are labelled by the whole body homomorphism: the depth
  of ``⊥^z_{σ,h}`` is one plus the depth of the deepest term anywhere
  in ``h``, so depth climbs through non-frontier body positions that
  classic weak acyclicity never looks at.  ``R(x, y) → ∃z R(x, z)`` is
  the canonical gap: weakly acyclic (the semi-oblivious chase reuses
  the per-``x`` null and stops) yet obliviously diverging (each fresh
  null re-enters position ``R[2]`` as a new binding).  Acyclicity of
  ``adg(Σ)`` is therefore the oblivious-sound analogue of weak
  acyclicity, and the *rank* of a position — the maximum number of
  special edges on any path into it — bounds the depth of every term
  that can ever appear there.

* *firing-order stratification* (after Meier, Schmidt and Lausen, "On
  Chase Termination Beyond Stratification") partitions Σ into strata
  along the chase graph ``σ → σ'``, read "an atom produced by σ's head
  can be matched by σ''s body".  The ∃-edge refinement prunes
  head/body atom pairs whose repeated body positions would force a
  fresh null to equal a *different* term — impossible, since a freshly
  invented null is distinct from every other term.  Cyclic strata must
  be weakly acyclic on their own (classically for the semi-oblivious
  chase, augmentedly for the oblivious one); acyclic singleton strata
  only ever fire over facts of earlier strata.  Per-stratum ranks then
  compose along the condensation DAG into a depth bound for the whole
  set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Position, Predicate
from repro.model.terms import Variable
from repro.model.tgd import TGD, TGDSet
from repro.core.dependency_graph import DependencyGraph


class AugmentedDependencyGraph(DependencyGraph):
    """``adg(Σ)``: special edges start at *all* body-variable positions.

    Normal edges are unchanged (frontier variables propagate to their
    head positions); special edges gain sources because an oblivious
    null's binding — and hence its depth — covers the whole body.
    """

    def _build(self) -> None:
        for tgd in self.tgds:
            existentials = tgd.existential_variables()
            frontier = tgd.frontier()
            for variable in tgd.body_variables():
                for source in tgd.positions_of_variable_in_body(variable):
                    for head_atom in tgd.head:
                        if variable in frontier:
                            for target in head_atom.positions_of(variable):
                                self._add_edge(source, target, special=False, rule_id=tgd.rule_id)
                        for existential in existentials:
                            for target in head_atom.positions_of(existential):
                                self._add_edge(source, target, special=True, rule_id=tgd.rule_id)


def is_augmented_weakly_acyclic(tgds: TGDSet) -> bool:
    """No cycle through a special edge in ``adg(Σ)`` (oblivious-sound)."""
    return not AugmentedDependencyGraph(tgds).has_special_cycle()


# --------------------------------------------------------------------------
# Position ranks
# --------------------------------------------------------------------------


def _tarjan(nodes: Iterable, successors: Dict) -> List[Set]:
    """Iterative Tarjan SCC; components come out in reverse topological
    order (every component precedes the components that reach it)."""
    index_counter = [0]
    stack: List = []
    lowlink: Dict = {}
    index: Dict = {}
    on_stack: Set = set()
    components: List[Set] = []

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(successors.get(root, ())))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            current, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: Set = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == current:
                        break
                components.append(component)
    return components


def position_ranks(
    graph: DependencyGraph, within: Optional[Set[Position]] = None
) -> Optional[Dict[Position, int]]:
    """Per-position rank, or ``None`` if a special cycle exists.

    The rank of a position is the maximum number of special edges on
    any path ending in it (restricted to the induced subgraph on
    ``within`` when given).  Because a null's depth is one plus the
    maximum depth over its binding, a term appearing at position ``π``
    has depth at most ``rank(π)`` when the database terms have depth 0.
    """
    if within is None:
        nodes: Set[Position] = set(graph.nodes)
    else:
        nodes = {p for p in graph.nodes if p in within}
    adjacency: Dict[Position, List] = {node: [] for node in nodes}
    for edge in graph.edges:
        if edge.source in adjacency and edge.target in adjacency:
            adjacency[edge.source].append(edge)

    successors = {node: [e.target for e in edges] for node, edges in adjacency.items()}
    components = _tarjan(nodes, successors)
    component_of: Dict[Position, int] = {}
    for i, component in enumerate(components):
        for position in component:
            component_of[position] = i
    for node in nodes:
        for edge in adjacency[node]:
            if edge.special and component_of[edge.source] == component_of[edge.target]:
                return None
    rank = [0] * len(components)
    # Reverse topological emission means walking the list backwards
    # visits every component before the components it feeds.
    for i in range(len(components) - 1, -1, -1):
        for position in components[i]:
            for edge in adjacency[position]:
                j = component_of[edge.target]
                if j == i:
                    continue
                weight = rank[i] + (1 if edge.special else 0)
                if weight > rank[j]:
                    rank[j] = weight
    return {position: rank[component_of[position]] for position in nodes}


def rank_depth_bound(
    graph: DependencyGraph, within: Optional[Set[Position]] = None
) -> Optional[int]:
    """Max rank over positions — a ``maxdepth`` bound — or ``None``."""
    ranks = position_ranks(graph, within=within)
    if ranks is None:
        return None
    return max(ranks.values(), default=0)


def positions_of_predicates(predicates: Iterable[Predicate]) -> Set[Position]:
    """All positions belonging to the given predicates."""
    result: Set[Position] = set()
    for predicate in predicates:
        result.update(predicate.positions())
    return result


# --------------------------------------------------------------------------
# Chase graph and stratification
# --------------------------------------------------------------------------


def _head_body_compatible(head_atom: Atom, body_atom: Atom, existentials: Set[Variable]) -> bool:
    """Can an atom produced from ``head_atom`` be matched by ``body_atom``?

    The ∃-edge refinement: a repeated variable at body positions ``i``
    and ``j`` requires the matched atom to carry *equal* terms there.
    The produced atom carries a fresh null wherever ``head_atom`` has
    an existential variable, and a fresh null equals nothing but
    itself — so distinct head terms of which at least one is
    existential can never satisfy the repetition.
    """
    if head_atom.predicate != body_atom.predicate:
        return False
    body_args = body_atom.args
    head_args = head_atom.args
    for i in range(len(body_args)):
        for j in range(i + 1, len(body_args)):
            if body_args[i] != body_args[j]:
                continue
            if head_args[i] == head_args[j]:
                continue
            if head_args[i] in existentials or head_args[j] in existentials:
                return False
    return True


def chase_graph_edges(tgds: TGDSet) -> Dict[str, Set[str]]:
    """The rule-level chase graph ``σ → σ'`` with the ∃-edge refinement.

    Sound over-approximation of "firing σ can create a new trigger of
    σ'": a new σ'-trigger must match at least one newly produced atom,
    which requires some (head atom of σ, body atom of σ') pair to be
    predicate-equal and repetition-compatible.
    """
    edges: Dict[str, Set[str]] = {tgd.rule_id: set() for tgd in tgds}
    for producer in tgds:
        existentials = producer.existential_variables()
        for consumer in tgds:
            if any(
                _head_body_compatible(head_atom, body_atom, existentials)
                for head_atom in producer.head
                for body_atom in consumer.body
            ):
                edges[producer.rule_id].add(consumer.rule_id)
    return edges


@dataclass(frozen=True)
class StratificationReport:
    """Evidence produced by the stratification analysis.

    ``strata`` lists rule-id groups in firing (topological) order;
    ``stratified`` is True when every cyclic stratum passed the
    per-stratum weak-acyclicity check (classic or augmented per
    ``augmented``), in which case ``depth_bound`` carries the composed
    rank bound.  On failure ``failed_stratum`` names the offender.
    """

    stratified: bool
    augmented: bool
    strata: Tuple[Tuple[str, ...], ...]
    cyclic_strata: Tuple[Tuple[str, ...], ...]
    failed_stratum: Optional[Tuple[str, ...]]
    depth_bound: Optional[int]


def stratification_report(tgds: TGDSet, augmented: bool = False) -> StratificationReport:
    """Stratify Σ along the chase graph and check each cyclic stratum.

    With ``augmented=False`` the per-stratum check is classic weak
    acyclicity, sound for the semi-oblivious (and restricted) chase;
    with ``augmented=True`` it is augmented weak acyclicity, sound for
    the oblivious chase.  The depth bound composes per-stratum ranks
    over the condensation DAG: terms entering a stratum are at most as
    deep as the deepest output of any earlier stratum, and the stratum
    itself adds at most its own rank on top.
    """
    edges = chase_graph_edges(tgds)
    rule_ids = sorted(edges)
    components = _tarjan(rule_ids, {r: sorted(edges[r]) for r in rule_ids})
    by_id = tgds.by_rule_id()
    graph_class = AugmentedDependencyGraph if augmented else DependencyGraph

    strata: List[Tuple[str, ...]] = []
    cyclic: List[Tuple[str, ...]] = []
    ranks: List[Optional[int]] = []
    # Reverse topological emission: walk backwards for firing order.
    for component in reversed(components):
        stratum = tuple(sorted(component))
        strata.append(stratum)
        is_cyclic = len(stratum) > 1 or stratum[0] in edges[stratum[0]]
        if is_cyclic:
            cyclic.append(stratum)
            stratum_set = TGDSet([by_id[r] for r in stratum], name=f"{tgds.name}|{stratum[0]}")
            ranks.append(rank_depth_bound(graph_class(stratum_set)))
        else:
            rule = by_id[stratum[0]]
            ranks.append(1 if rule.existential_variables() else 0)

    failed: Optional[Tuple[str, ...]] = None
    for stratum, rank in zip(strata, ranks):
        if rank is None:
            failed = stratum
            break
    if failed is not None:
        return StratificationReport(
            stratified=False,
            augmented=augmented,
            strata=tuple(strata),
            cyclic_strata=tuple(cyclic),
            failed_stratum=failed,
            depth_bound=None,
        )

    stratum_of = {rule_id: i for i, stratum in enumerate(strata) for rule_id in stratum}
    depth_in = [0] * len(strata)
    depth_out = [0] * len(strata)
    for i, stratum in enumerate(strata):
        depth_out[i] = depth_in[i] + (ranks[i] or 0)
        for rule_id in stratum:
            for successor in edges[rule_id]:
                j = stratum_of[successor]
                if j != i and depth_out[i] > depth_in[j]:
                    depth_in[j] = depth_out[i]
    return StratificationReport(
        stratified=True,
        augmented=augmented,
        strata=tuple(strata),
        cyclic_strata=tuple(cyclic),
        failed_stratum=None,
        depth_bound=max(depth_out, default=0),
    )
