"""Linearization of guarded TGDs (Section 8 and Appendix E).

Linearization converts a guarded set ``Σ`` and a database ``D`` into a
linear set ``lin(Σ)`` and a database ``lin(D)`` whose chase mirrors the
original one atom by atom (Proposition 8.1).  The key notion is the
*Σ-type* of an atom ``α``: a canonical description of ``α`` (its guard
pattern, with distinct terms replaced by the integers ``1..k`` in order
of first occurrence) together with the set of chase atoms that mention
only terms of ``α``.  Every chase atom of the original instance is then
represented by a single ``[τ]``-atom, and every guarded TGD by a family
of linear TGDs over ``[τ]``-predicates, one per type/homomorphism pair.

Computing a type requires the *completion* of a finite instance: the
chase atoms that mention only terms of the instance's domain.  The
completion is obtained here by an iterated, depth-bounded chase (see
:func:`completion`); this is exact whenever the relevant chase
fragments stay within the configured depth budget — which holds for
every workload shipped with the repository — and is a documented
approximation otherwise (see DESIGN.md, "Substitutions").

We materialise only the types *reachable* from the given database
rather than all (double-exponentially many) Σ-types; this is precisely
the fragment of ``lin(Σ)`` that the chase of ``lin(D)`` and the
non-uniform weak-acyclicity check relative to ``lin(D)`` can ever see.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import apply_substitution, find_homomorphisms
from repro.model.instance import Database, Instance
from repro.model.terms import Constant, Term, Variable
from repro.model.tgd import TGD, TGDSet
from repro.chase.engine import ChaseBudget
from repro.chase.semi_oblivious import semi_oblivious_chase


# --------------------------------------------------------------------------
# Σ-types
# --------------------------------------------------------------------------


def _integer_constant(value: int) -> Constant:
    """The canonical constant representing the type integer ``value``."""
    return Constant(f"#{value}")


@dataclass(frozen=True)
class SigmaType:
    """A Σ-type ``τ = (guard, others)`` over canonical integer terms.

    ``guard`` is an atom whose arguments are the integer constants
    ``#1, #2, ...`` appearing in first-occurrence order; ``others`` are
    the remaining atoms of the type, all over the guard's terms.
    """

    guard: Atom
    others: FrozenSet[Atom]

    def atoms(self) -> FrozenSet[Atom]:
        """``atoms(τ) = others ∪ {guard}``."""
        return self.others | {self.guard}

    def arity(self) -> int:
        """``ar(τ)``: the arity of the guard atom."""
        return self.guard.predicate.arity

    def predicate(self) -> Predicate:
        """The fresh predicate ``[τ]`` used by the linearized program.

        The predicate name is a canonical serialisation of the type, so
        equal types always map to the same predicate.
        """
        guard_text = str(self.guard)
        others_text = ";".join(sorted(str(a) for a in self.others))
        return Predicate(name=f"[{guard_text}|{{{others_text}}}]", arity=self.arity())

    def instantiate(self, args: Sequence[Term]) -> Set[Atom]:
        """``τ(ū)``: replace the integer ``#i`` with ``args``'s i-th distinct term."""
        if len(args) != self.arity():
            raise ValueError("instantiation tuple has the wrong arity")
        mapping: Dict[Term, Term] = {}
        for guard_term, actual in zip(self.guard.args, args):
            existing = mapping.get(guard_term)
            if existing is not None and existing != actual:
                raise ValueError("instantiation tuple does not match the guard pattern")
            mapping[guard_term] = actual
        return {a.substitute(mapping) for a in self.atoms()}


def canonicalize_type(guard: Atom, others: Iterable[Atom]) -> SigmaType:
    """Rename the terms of ``guard`` (and ``others``) to ``#1, #2, ...``.

    The renaming follows the order of first occurrence in the guard, as
    required by the definition of a Σ-type.
    """
    mapping: Dict[Term, Term] = {}
    for term in guard.args:
        if term not in mapping:
            mapping[term] = _integer_constant(len(mapping) + 1)
    canonical_guard = guard.substitute(mapping)
    canonical_others = frozenset(a.substitute(mapping) for a in others if a != guard)
    for a in canonical_others:
        if not set(a.args) <= set(canonical_guard.args):
            raise ValueError(f"type atom {a} uses terms outside the guard {guard}")
    return SigmaType(guard=canonical_guard, others=canonical_others)


# --------------------------------------------------------------------------
# Completion
# --------------------------------------------------------------------------


def completion(
    instance: Instance,
    tgds: TGDSet,
    depth_budget: Optional[int] = None,
    max_atoms: int = 200_000,
    max_iterations: int = 16,
) -> Instance:
    """``complete(I, Σ)``: chase atoms that mention only terms of ``dom(I)``.

    The completion is computed by repeatedly chasing the instance with a
    depth budget, harvesting the atoms over ``dom(I)`` and feeding them
    back until no new such atom appears.  The default depth budget is
    ``|sch(Σ)| · ar(Σ) + 2``, which is exact for every curated workload
    in this repository; callers can raise it when in doubt.
    """
    if depth_budget is None:
        depth_budget = len(tgds.schema()) * max(tgds.arity(), 1) + 2
    domain = instance.active_domain()
    current = Instance(instance)
    for _ in range(max_iterations):
        budget = ChaseBudget(
            max_atoms=max_atoms, max_depth=depth_budget, truncate_at_depth=True
        )
        result = semi_oblivious_chase(current, tgds, budget=budget, record_derivation=False)
        harvested = [
            a for a in result.instance if set(a.args) <= domain and a not in current
        ]
        if not harvested:
            break
        for a in harvested:
            current.add(a)
    return Instance(a for a in current if set(a.args) <= domain)


def type_of(atom: Atom, completed: Instance) -> Set[Atom]:
    """``type_{D,Σ}(α)``: completion atoms mentioning only terms of ``α``."""
    allowed = set(atom.args)
    return {a for a in completed if set(a.args) <= allowed}


# --------------------------------------------------------------------------
# Database linearization
# --------------------------------------------------------------------------


@dataclass
class LinearizationResult:
    """The output of :func:`linearize`.

    Attributes
    ----------
    database:
        ``lin(D)``: one ``[τ]``-fact per database atom.
    program:
        ``lin(Σ)`` restricted to the types reachable from ``lin(D)``.
    types:
        All Σ-types materialised during the construction.
    type_of_atom:
        The Σ-type assigned to each original database atom.
    """

    database: Database
    program: TGDSet
    types: Tuple[SigmaType, ...]
    type_of_atom: Dict[Atom, SigmaType]


def linearize_database(
    database: Database,
    tgds: TGDSet,
    completed: Optional[Instance] = None,
) -> Tuple[Database, Dict[Atom, SigmaType]]:
    """``lin(D)``: encode each database atom together with its type."""
    if completed is None:
        completed = completion(database.as_instance(), tgds)
    linearized = Database()
    assignment: Dict[Atom, SigmaType] = {}
    for atom in database:
        atom_type = canonicalize_type(atom, type_of(atom, completed))
        assignment[atom] = atom_type
        linearized.add(Atom(atom_type.predicate(), atom.args))
    return linearized, assignment


# --------------------------------------------------------------------------
# Program linearization (reachable types)
# --------------------------------------------------------------------------


def _existential_assignment(tgd: TGD, arity: int) -> Dict[Variable, Term]:
    """Map each existential variable of ``tgd`` to a fresh type integer."""
    ordered = sorted(tgd.existential_variables(), key=lambda v: v.name)
    return {
        variable: _integer_constant(arity + offset + 1)
        for offset, variable in enumerate(ordered)
    }


def _linearize_rule_for_type(
    tgd: TGD,
    sigma_type: SigmaType,
    tgds: TGDSet,
    completion_depth: Optional[int],
    rule_counter: itertools.count,
) -> List[Tuple[TGD, List[SigmaType]]]:
    """All linearizations of ``tgd`` induced by ``sigma_type`` (Appendix E)."""
    guard_atom = tgd.guard()
    if guard_atom is None:
        raise ValueError(f"linearization requires guarded TGDs, got {tgd}")
    type_instance = Instance(sigma_type.atoms())
    results: List[Tuple[TGD, List[SigmaType]]] = []
    for substitution in find_homomorphisms(tgd.body, type_instance):
        if apply_substitution(guard_atom, substitution) != sigma_type.guard:
            continue
        mapping: Dict[Variable, Term] = dict(substitution)
        mapping.update(_existential_assignment(tgd, tgds.arity()))
        head_images = [apply_substitution(a, mapping) for a in tgd.head]
        local_instance = Instance(set(head_images) | sigma_type.atoms())
        completed = completion(local_instance, tgds, depth_budget=completion_depth)
        head_types: List[SigmaType] = []
        for image in head_images:
            body_of_type = type_of(image, completed) - {image}
            head_types.append(canonicalize_type(image, body_of_type))
        linearized = TGD(
            body=(Atom(sigma_type.predicate(), guard_atom.args),),
            head=tuple(
                Atom(head_type.predicate(), head_atom.args)
                for head_type, head_atom in zip(head_types, tgd.head)
            ),
            rule_id=f"{tgd.rule_id}|lin{next(rule_counter)}",
        )
        results.append((linearized, head_types))
    return results


def linearize_program(
    tgds: TGDSet,
    seed_types: Iterable[SigmaType],
    completion_depth: Optional[int] = None,
    max_types: int = 10_000,
) -> Tuple[TGDSet, Tuple[SigmaType, ...]]:
    """``lin(Σ)`` restricted to types reachable from ``seed_types``.

    Starting from the seed types (those of the database atoms), rules
    are generated type by type; the head types they introduce are added
    to the worklist until a fixpoint is reached.  ``max_types`` guards
    against accidental blow-ups.
    """
    if not tgds.is_guarded:
        raise ValueError("linearization is defined for guarded TGDs only")
    rule_counter = itertools.count()
    known: Dict[Predicate, SigmaType] = {}
    worklist: List[SigmaType] = []
    for sigma_type in seed_types:
        if sigma_type.predicate() not in known:
            known[sigma_type.predicate()] = sigma_type
            worklist.append(sigma_type)
    produced: List[TGD] = []
    while worklist:
        if len(known) > max_types:
            raise RuntimeError(
                f"linearization exceeded the type budget ({max_types}); "
                "raise max_types if this is expected"
            )
        current = worklist.pop()
        for tgd in tgds:
            for linearized, head_types in _linearize_rule_for_type(
                tgd, current, tgds, completion_depth, rule_counter
            ):
                produced.append(linearized)
                for head_type in head_types:
                    if head_type.predicate() not in known:
                        known[head_type.predicate()] = head_type
                        worklist.append(head_type)
    if not produced:
        # A linear program must be non-empty for TGDSet; emit an inert
        # rule over a reserved predicate so downstream analyses (which
        # are vacuous in this case) still have a well-formed object.
        inert_predicate = Predicate("__lin_inert__", 1)
        x = Variable("x")
        produced.append(
            TGD(
                body=(Atom(inert_predicate, (x,)),),
                head=(Atom(inert_predicate, (x,)),),
                rule_id=f"{tgds.name}|lin_inert",
            )
        )
    return (
        TGDSet(produced, name=f"lin({tgds.name})"),
        tuple(known.values()),
    )


def linearize(
    database: Database,
    tgds: TGDSet,
    completion_depth: Optional[int] = None,
    max_types: int = 10_000,
) -> LinearizationResult:
    """Compute ``lin(D)`` and the reachable fragment of ``lin(Σ)``."""
    completed = completion(database.as_instance(), tgds, depth_budget=completion_depth)
    linear_database, assignment = linearize_database(database, tgds, completed=completed)
    seed_types = list(dict.fromkeys(assignment.values()))
    program, types = linearize_program(
        tgds, seed_types, completion_depth=completion_depth, max_types=max_types
    )
    return LinearizationResult(
        database=linear_database,
        program=program,
        types=types,
        type_of_atom=assignment,
    )
