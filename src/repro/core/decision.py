"""Decision procedures for ``ChTrm(C)`` (Theorems 6.6, 7.7, 8.5).

Three procedures are provided:

* the *syntactic* decider, which implements the paper's
  characterisations: ``D``-weak-acyclicity for SL, weak-acyclicity of
  ``simple(Σ)`` w.r.t. ``simple(D)`` for L, and weak-acyclicity of
  ``gsimple(Σ) = simple(lin(Σ))`` w.r.t. ``gsimple(D)`` for G;
* the *naive* decider, which materialises the chase and compares its
  size against the bound ``|D| · f_C(Σ)`` of item (2) of the
  characterisations (three-valued: the theoretical bound may exceed the
  practical atom budget);
* the *UCQ* decider for SL and L data complexity, which evaluates a
  database-independent UCQ over ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from repro.model.instance import Database
from repro.model.tgd import TGDSet
from repro.chase.engine import ChaseBudget, ChaseResult
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import size_bound_factor
from repro.core.classify import TGDClass, classify
from repro.core.linearization import linearize
from repro.core.simplification import simplify_database, simplify_program
from repro.core.ucq import TerminationUCQ, build_termination_ucq
from repro.core.weak_acyclicity import is_weakly_acyclic_wrt, weak_acyclicity_report


class DecisionMethod(Enum):
    """How a termination verdict was obtained."""

    WEAK_ACYCLICITY = "weak-acyclicity"
    SIMPLIFICATION = "simplification + weak-acyclicity"
    LINEARIZATION = "linearization + simplification + weak-acyclicity"
    NAIVE_CHASE = "naive chase materialisation"
    UCQ = "UCQ evaluation"


@dataclass
class TerminationVerdict:
    """The answer to ``Σ ∈ CT_D``?

    ``terminates`` is ``None`` when the procedure could not decide (the
    naive decider with a practical cap below the theoretical bound, or
    an arbitrary TGD set outside the guarded fragment).
    """

    terminates: Optional[bool]
    method: DecisionMethod
    tgd_class: TGDClass
    details: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.terminates)


# --------------------------------------------------------------------------
# Syntactic decision (the paper's characterisations)
# --------------------------------------------------------------------------


def syntactic_decision(database: Database, tgds: TGDSet) -> TerminationVerdict:
    """Decide ``Σ ∈ CT_D`` via the class-specific syntactic criterion."""
    tgd_class = classify(tgds)
    if tgd_class is TGDClass.SIMPLE_LINEAR:
        report = weak_acyclicity_report(tgds, database)
        return TerminationVerdict(
            terminates=report.weakly_acyclic_wrt_database,
            method=DecisionMethod.WEAK_ACYCLICITY,
            tgd_class=tgd_class,
            details={"report": report},
        )
    if tgd_class is TGDClass.LINEAR:
        simplified_program = simplify_program(tgds)
        simplified_database = simplify_database(database)
        report = weak_acyclicity_report(simplified_program, simplified_database)
        return TerminationVerdict(
            terminates=report.weakly_acyclic_wrt_database,
            method=DecisionMethod.SIMPLIFICATION,
            tgd_class=tgd_class,
            details={
                "report": report,
                "simplified_rule_count": len(simplified_program),
            },
        )
    if tgd_class is TGDClass.GUARDED:
        linearized = linearize(database, tgds)
        gsimple_program = simplify_program(linearized.program)
        gsimple_database = simplify_database(linearized.database)
        report = weak_acyclicity_report(gsimple_program, gsimple_database)
        return TerminationVerdict(
            terminates=report.weakly_acyclic_wrt_database,
            method=DecisionMethod.LINEARIZATION,
            tgd_class=tgd_class,
            details={
                "report": report,
                "linearized_rule_count": len(linearized.program),
                "type_count": len(linearized.types),
                "gsimple_rule_count": len(gsimple_program),
            },
        )
    raise ValueError(
        "the syntactic decision procedure covers SL, L and G; "
        "use naive_decision for arbitrary TGDs (ChTrm(TGD) is undecidable)"
    )


# --------------------------------------------------------------------------
# Naive decision (materialise and compare against the size bound)
# --------------------------------------------------------------------------


def naive_decision(
    database: Database,
    tgds: TGDSet,
    practical_cap: int = 500_000,
) -> TerminationVerdict:
    """Decide by running the chase against the bound ``|D| · f_C(Σ)``.

    If the chase reaches a fixpoint the answer is *yes*.  If it exceeds
    the theoretical bound the answer is *no* (item (2) of the
    characterisations).  If it exceeds only the practical cap — the
    theoretical bound being astronomically larger — the answer is
    *unknown* (``None``).
    """
    tgd_class = classify(tgds)
    try:
        theoretical_bound = len(database) * size_bound_factor(tgds, tgd_class)
    except ValueError:
        theoretical_bound = None  # arbitrary TGDs: no bound exists (Prop. 4.2)
    cap = practical_cap if theoretical_bound is None else min(theoretical_bound, practical_cap)
    budget = ChaseBudget(max_atoms=max(cap, len(database) + 1))
    result = semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False)
    if result.terminated:
        terminates: Optional[bool] = True
    elif theoretical_bound is not None and result.size > theoretical_bound:
        terminates = False
    else:
        terminates = None
    return TerminationVerdict(
        terminates=terminates,
        method=DecisionMethod.NAIVE_CHASE,
        tgd_class=tgd_class,
        details={
            "chase_result": result,
            "theoretical_bound": theoretical_bound,
            "practical_cap": cap,
        },
    )


# --------------------------------------------------------------------------
# UCQ decision (data complexity, Theorems 6.6 and 7.7)
# --------------------------------------------------------------------------


def ucq_decision(
    database: Database,
    tgds: TGDSet,
    ucq: Optional[TerminationUCQ] = None,
) -> TerminationVerdict:
    """Decide via the database-independent UCQ ``Q_Σ`` (SL and L only).

    Passing a prebuilt ``ucq`` mirrors the data-complexity setting where
    the query is computed once for a fixed ``Σ`` and reused across
    databases.
    """
    tgd_class = classify(tgds)
    if ucq is None:
        ucq = build_termination_ucq(tgds)
    violated = ucq.witnessed_by(database)
    return TerminationVerdict(
        terminates=not violated,
        method=DecisionMethod.UCQ,
        tgd_class=tgd_class,
        details={"ucq_size": len(ucq)},
    )


# --------------------------------------------------------------------------
# Dispatch
# --------------------------------------------------------------------------


def decide_termination(
    database: Database,
    tgds: TGDSet,
    method: str = "auto",
    practical_cap: int = 500_000,
) -> TerminationVerdict:
    """Decide ``Σ ∈ CT_D`` with the requested (or best available) method.

    ``method`` is one of ``"auto"``, ``"syntactic"``, ``"naive"`` or
    ``"ucq"``.  ``auto`` uses the syntactic procedure for guarded sets
    and falls back to the (possibly inconclusive) naive procedure for
    arbitrary TGDs.
    """
    tgd_class = classify(tgds)
    if method == "syntactic":
        return syntactic_decision(database, tgds)
    if method == "naive":
        return naive_decision(database, tgds, practical_cap=practical_cap)
    if method == "ucq":
        return ucq_decision(database, tgds)
    if method != "auto":
        raise ValueError(f"unknown decision method {method!r}")
    if tgd_class is TGDClass.ARBITRARY:
        return naive_decision(database, tgds, practical_cap=practical_cap)
    return syntactic_decision(database, tgds)
