"""Model-faithful acyclicity (MFA) via a critical-instance chase.

MFA asks whether the oblivious chase of the *critical instance* —
``P(*, …, *)`` for every predicate occurring in a rule body, with a
single fresh constant ``*`` — terminates without ever building a
*cyclic* term: a null whose ancestry already contains a null invented
by the same (rule, existential variable) pair.  Every database maps
homomorphically into the critical instance (all constants to ``*``),
chase steps lift along that homomorphism, and the image of a null is a
null of the *same* depth, so:

* if the critical chase saturates cleanly, the chase of **every**
  database terminates, and the critical chase's maximal term depth
  bounds ``maxdepth(D, Σ)`` uniformly;
* if a cyclic term appears, the set may or may not terminate —
  the verdict is ``cyclic``, which callers treat as *undetermined*
  (matching Rulewerk's ``CYCLIC`` / ``ACYCLIC`` / ``UNDETERMINED``
  trichotomy);
* if a work cap trips first, the verdict is ``undetermined`` outright.

Null labels follow the engine's two labelling disciplines: ``full``
mode keys nulls (and triggers) on the whole body homomorphism, making
the check sound for the oblivious chase; ``frontier`` mode keys them on
the frontier only — classic MFA — sound for the semi-oblivious and
restricted chases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.tgd import TGD, TGDSet

MFA_ACYCLIC = "acyclic"
MFA_CYCLIC = "cyclic"
MFA_UNDETERMINED = "undetermined"

#: The critical instance's single constant, encoded as term id -1;
#: nulls get non-negative ids.
_STAR = -1


@dataclass(frozen=True)
class MFAResult:
    """Outcome of the critical-instance chase.

    ``depth_bound`` is the maximal term depth of the saturated critical
    chase when ``status == "acyclic"`` — a uniform ``maxdepth`` bound —
    and ``None`` otherwise.  ``cyclic_rule_id`` names the rule whose
    existential re-nested on a ``cyclic`` verdict.
    """

    status: str
    mode: str
    depth_bound: Optional[int]
    cyclic_rule_id: Optional[str]
    facts: int
    triggers: int
    reason: Optional[str] = None


def critical_instance_facts(tgds: TGDSet) -> List[Tuple[Predicate, Tuple[int, ...]]]:
    """``P(*, …, *)`` for every predicate occurring in some body.

    Head-only predicates need no star fact: database facts over them
    are never matched by any body, hence inert for termination.
    """
    return [
        (predicate, (_STAR,) * predicate.arity)
        for predicate in sorted(tgds.predicates_in_bodies(), key=lambda p: (p.name, p.arity))
    ]


def _match_atom(
    atom: Atom, fact_args: Tuple[int, ...], binding: Dict[str, int]
) -> Optional[Dict[str, int]]:
    """Extend ``binding`` so that ``atom`` matches ``fact_args``."""
    extension: Dict[str, int] = {}
    for variable, term in zip(atom.args, fact_args):
        name = variable.name
        bound = binding.get(name, extension.get(name))
        if bound is None:
            extension[name] = term
        elif bound != term:
            return None
    return extension


def _homomorphisms(
    body: Sequence[Atom],
    facts_by_predicate: Dict[Predicate, Tuple[Tuple[int, ...], ...]],
) -> Iterator[Dict[str, int]]:
    """All homomorphisms of ``body`` into the (frozen) fact lists."""

    def recurse(index: int, binding: Dict[str, int]) -> Iterator[Dict[str, int]]:
        if index == len(body):
            yield dict(binding)
            return
        atom = body[index]
        for fact_args in facts_by_predicate.get(atom.predicate, ()):
            extension = _match_atom(atom, fact_args, binding)
            if extension is None:
                continue
            binding.update(extension)
            yield from recurse(index + 1, binding)
            for name in extension:
                del binding[name]

    yield from recurse(0, {})


def mfa_check(
    tgds: TGDSet,
    mode: str = "full",
    max_facts: int = 20_000,
    max_triggers: int = 200_000,
    max_rounds: int = 500,
) -> MFAResult:
    """Run the critical-instance chase and classify Σ.

    ``mode`` selects the null-labelling discipline (see module
    docstring).  The caps bound the work of the check itself; tripping
    one yields ``undetermined``, never a wrong answer.
    """
    if mode not in ("full", "frontier"):
        raise ValueError(f"unknown MFA mode {mode!r}, expected 'full' or 'frontier'")

    rules = sorted(tgds, key=lambda t: t.rule_id)
    rule_info = []
    for tgd in rules:
        frontier = {v.name for v in tgd.frontier()}
        existentials = sorted(v.name for v in tgd.existential_variables())
        label_names = (
            sorted({v.name for v in tgd.body_variables()}) if mode == "full" else sorted(frontier)
        )
        rule_info.append((tgd, label_names, existentials))

    facts: Set[Tuple[Predicate, Tuple[int, ...]]] = set()
    facts_by_predicate: Dict[Predicate, List[Tuple[int, ...]]] = {}
    null_ids: Dict[Tuple[str, str, Tuple[Tuple[str, int], ...]], int] = {}
    null_tags: List[FrozenSet[Tuple[str, str]]] = []
    null_depth: List[int] = []
    fired: Set[Tuple[str, Tuple[Tuple[str, int], ...]]] = set()
    max_depth_seen = 0
    triggers = 0

    def term_depth(term: int) -> int:
        return 0 if term == _STAR else null_depth[term]

    def add_fact(fact: Tuple[Predicate, Tuple[int, ...]]) -> bool:
        nonlocal max_depth_seen
        if fact in facts:
            return False
        facts.add(fact)
        facts_by_predicate.setdefault(fact[0], []).append(fact[1])
        depth = max((term_depth(t) for t in fact[1]), default=0)
        if depth > max_depth_seen:
            max_depth_seen = depth
        return True

    for fact in critical_instance_facts(tgds):
        add_fact(fact)

    for _ in range(max_rounds):
        frozen = {predicate: tuple(args) for predicate, args in facts_by_predicate.items()}
        progressed = False
        for tgd, label_names, existentials in rule_info:
            for binding in _homomorphisms(tgd.body, frozen):
                triggers += 1
                if triggers > max_triggers:
                    return MFAResult(
                        status=MFA_UNDETERMINED,
                        mode=mode,
                        depth_bound=None,
                        cyclic_rule_id=None,
                        facts=len(facts),
                        triggers=triggers,
                        reason=f"trigger cap {max_triggers} exceeded",
                    )
                label = tuple((name, binding[name]) for name in label_names)
                trigger_key = (tgd.rule_id, label)
                if trigger_key in fired:
                    continue
                fired.add(trigger_key)
                progressed = True
                ancestry: FrozenSet[Tuple[str, str]] = frozenset()
                label_depth = 0
                for _, term in label:
                    if term != _STAR:
                        ancestry |= null_tags[term]
                        if null_depth[term] > label_depth:
                            label_depth = null_depth[term]
                head_binding = dict(binding)
                for variable_name in existentials:
                    tag = (tgd.rule_id, variable_name)
                    if tag in ancestry:
                        return MFAResult(
                            status=MFA_CYCLIC,
                            mode=mode,
                            depth_bound=None,
                            cyclic_rule_id=tgd.rule_id,
                            facts=len(facts),
                            triggers=triggers,
                        )
                    null_key = (tgd.rule_id, variable_name, label)
                    null_id = null_ids.get(null_key)
                    if null_id is None:
                        null_id = len(null_tags)
                        null_ids[null_key] = null_id
                        null_tags.append(ancestry | {tag})
                        null_depth.append(label_depth + 1)
                    head_binding[variable_name] = null_id
                for head_atom in tgd.head:
                    fact = (
                        head_atom.predicate,
                        tuple(head_binding[v.name] for v in head_atom.args),
                    )
                    add_fact(fact)
                if len(facts) > max_facts:
                    return MFAResult(
                        status=MFA_UNDETERMINED,
                        mode=mode,
                        depth_bound=None,
                        cyclic_rule_id=None,
                        facts=len(facts),
                        triggers=triggers,
                        reason=f"fact cap {max_facts} exceeded",
                    )
        if not progressed:
            return MFAResult(
                status=MFA_ACYCLIC,
                mode=mode,
                depth_bound=max_depth_seen,
                cyclic_rule_id=None,
                facts=len(facts),
                triggers=triggers,
            )
    return MFAResult(
        status=MFA_UNDETERMINED,
        mode=mode,
        depth_bound=None,
        cyclic_rule_id=None,
        facts=len(facts),
        triggers=triggers,
        reason=f"round cap {max_rounds} exceeded",
    )
