"""The UCQ-based data-complexity procedure (Theorems 6.6 and 7.7).

For a fixed set ``Σ`` of simple linear (resp. linear) TGDs, the paper
builds a union of conjunctive queries ``Q_Σ`` that depends only on
``Σ`` such that, for every database ``D``, ``Σ`` is not
``D``-weakly-acyclic (resp. ``simple(Σ)`` is not
``simple(D)``-weakly-acyclic) iff ``D ⊨ Q_Σ``.  Building ``Q_Σ`` costs
whatever it costs, but it is a one-off, database-independent cost;
evaluating it is a fixed first-order query, which is the AC0 data
complexity claim.

Two evaluation modes are provided:

* :meth:`TerminationUCQ.evaluate` — the literal UCQ of the paper
  (single-atom CQs with repeated variables for the linear case);
* :meth:`TerminationUCQ.witnessed_by` — the equivalent direct test used
  by the decision procedures ("does the database contain a fact whose
  (simplified) predicate supports a special cycle?"), which is the
  criterion the UCQ is proved correct against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import find_homomorphisms
from repro.model.instance import Database, Instance
from repro.model.terms import Variable
from repro.model.tgd import TGDSet
from repro.core.classify import TGDClass, classify
from repro.core.dependency_graph import DependencyGraph, PredicateGraph
from repro.core.simplification import id_tuple, simplified_predicate, simplify_program


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A Boolean conjunctive query: a set of atoms over variables."""

    atoms: Tuple[Atom, ...]

    def holds_in(self, database: Database) -> bool:
        """True iff there is a homomorphism from the query into ``database``."""
        for _ in find_homomorphisms(self.atoms, database):
            return True
        return False

    def __str__(self) -> str:
        return " ∧ ".join(str(a) for a in self.atoms)


@dataclass(frozen=True)
class TerminationUCQ:
    """The UCQ ``Q_Σ`` together with the predicate-level criterion.

    ``disjuncts`` is the paper's query; ``violating_predicates`` (for
    SL) or ``violating_simplified_predicates`` (for L) is the set used
    by the direct criterion.
    """

    tgds_name: str
    tgd_class: TGDClass
    disjuncts: Tuple[ConjunctiveQuery, ...]
    violating_predicates: FrozenSet[Predicate]
    violating_simplified_predicates: FrozenSet[Predicate]

    def evaluate(self, database: Database) -> bool:
        """Evaluate the literal UCQ over ``database`` (D ⊨ Q_Σ?)."""
        return any(query.holds_in(database) for query in self.disjuncts)

    def witnessed_by(self, database: Database) -> bool:
        """Direct criterion: does some database fact support a special cycle?"""
        if self.tgd_class is TGDClass.SIMPLE_LINEAR:
            return bool(database.predicates() & self.violating_predicates)
        for atom in database:
            simplified = simplified_predicate(atom.predicate, id_tuple(atom.args))
            if simplified in self.violating_simplified_predicates:
                return True
        return False

    def __len__(self) -> int:
        return len(self.disjuncts)


def _violating_source_predicates(tgds: TGDSet) -> Set[Predicate]:
    """Predicates ``R`` with ``R ⇝_Σ P`` for some ``P`` on a special cycle."""
    dependency_graph = DependencyGraph(tgds)
    cycle_predicates = {p.predicate for p in dependency_graph.positions_on_special_cycle()}
    if not cycle_predicates:
        return set()
    return PredicateGraph(tgds).predicates_reaching(cycle_predicates)


def _fresh_variables(count: int, prefix: str) -> List[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(1, count + 1)]


def _parse_simplified_name(predicate: Predicate) -> Optional[Tuple[str, Tuple[int, ...]]]:
    """Recover ``(R, id-tuple)`` from a simplified predicate name ``R[i,...]``."""
    name = predicate.name
    if not name.endswith("]") or "[" not in name:
        return None
    base, _, suffix = name.partition("[")
    identifiers = tuple(int(part) for part in suffix[:-1].split(",") if part)
    return base, identifiers


def build_termination_ucq(tgds: TGDSet) -> TerminationUCQ:
    """Build ``Q_Σ`` for a simple linear or linear set of TGDs.

    For simple linear TGDs each disjunct is ``∃x̄ R(x̄)`` with distinct
    variables; for linear TGDs the disjuncts range over the simplified
    predicates ``R_ℓ̄`` and use repeated variables to express the
    equality constraints of ``ℓ̄``.
    """
    tgd_class = classify(tgds)
    if tgd_class is TGDClass.SIMPLE_LINEAR:
        violating = _violating_source_predicates(tgds)
        disjuncts = []
        for predicate in sorted(violating, key=lambda p: (p.name, p.arity)):
            variables = _fresh_variables(predicate.arity, f"x_{predicate.name}_")
            disjuncts.append(ConjunctiveQuery((Atom(predicate, tuple(variables)),)))
        return TerminationUCQ(
            tgds_name=tgds.name,
            tgd_class=tgd_class,
            disjuncts=tuple(disjuncts),
            violating_predicates=frozenset(violating),
            violating_simplified_predicates=frozenset(),
        )
    if tgd_class is TGDClass.LINEAR:
        simplified = simplify_program(tgds)
        violating_simplified = _violating_source_predicates(simplified)
        original_by_name = {p.name: p for p in tgds.schema()}
        disjuncts = []
        for predicate in sorted(violating_simplified, key=lambda p: (p.name, p.arity)):
            parsed = _parse_simplified_name(predicate)
            if parsed is None:
                continue
            base_name, identifiers = parsed
            original = original_by_name.get(base_name)
            if original is None:
                continue
            # Repeated variables encode the equalities required by ℓ̄.
            distinct = _fresh_variables(max(identifiers), f"x_{base_name}_")
            args = tuple(distinct[i - 1] for i in identifiers)
            disjuncts.append(ConjunctiveQuery((Atom(original, args),)))
        return TerminationUCQ(
            tgds_name=tgds.name,
            tgd_class=tgd_class,
            disjuncts=tuple(disjuncts),
            violating_predicates=frozenset(),
            violating_simplified_predicates=frozenset(violating_simplified),
        )
    raise ValueError(
        "the UCQ-based procedure is defined for simple linear and linear TGDs; "
        f"got class {tgd_class}"
    )
