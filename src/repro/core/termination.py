"""High-level termination API: bounds, verdicts and certificates.

The paper's Target Characterisation states that, for
``C ∈ {SL, L, G}``, the following are equivalent: (1) ``Σ ∈ CT_D``,
(2) ``|chase(D, Σ)| ≤ |D| · f_C(Σ)``, and (3) a syntactic
weak-acyclicity condition holds.  :func:`certify` evaluates all three
faces on a concrete input and reports whether they agree, which is both
a user-facing audit tool and the backbone of the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.instance import Database
from repro.model.tgd import TGDSet
from repro.chase.engine import ChaseBudget, ChaseResult
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import depth_bound, size_bound_factor
from repro.core.classify import TGDClass, classify
from repro.core.decision import DecisionMethod, TerminationVerdict, syntactic_decision


def chase_size_bound(database: Database, tgds: TGDSet) -> int:
    """The characterisation bound ``|D| · f_C(Σ)`` for the class of ``Σ``."""
    return len(database) * size_bound_factor(tgds)


@dataclass
class TerminationCertificate:
    """Evidence connecting the three faces of the Target Characterisation.

    Attributes
    ----------
    verdict:
        The syntactic decision (item 3).
    size_bound:
        ``|D| · f_C(Σ)`` (item 2).
    depth_bound:
        ``d_C(Σ)``, the database-independent depth bound.
    chase_result:
        The materialised chase when it was run and fit in the budget.
    size_within_bound / depth_within_bound:
        Whether the measured size and depth respect the bounds
        (``None`` when the chase was not materialised).
    consistent:
        True when all available pieces of evidence agree, i.e. the
        syntactic verdict matches the chase's observed (non-)termination
        and, for terminating inputs, both bounds hold.
    """

    verdict: TerminationVerdict
    tgd_class: TGDClass
    size_bound: int
    depth_bound: int
    chase_result: Optional[ChaseResult] = None
    size_within_bound: Optional[bool] = None
    depth_within_bound: Optional[bool] = None

    @property
    def consistent(self) -> bool:
        if self.chase_result is None:
            return True
        if self.verdict.terminates and self.chase_result.terminated:
            return bool(self.size_within_bound) and bool(self.depth_within_bound)
        if self.verdict.terminates != self.chase_result.terminated:
            # A budget-limited chase run cannot refute a positive verdict.
            return bool(self.verdict.terminates) and not self.chase_result.terminated
        return True


def certify(
    database: Database,
    tgds: TGDSet,
    run_chase: bool = True,
    chase_budget: Optional[ChaseBudget] = None,
) -> TerminationCertificate:
    """Check the three-way characterisation on a concrete input.

    The chase materialisation is skipped when ``run_chase`` is False or
    when the syntactic verdict is negative and no explicit budget was
    supplied (materialising a provably infinite chase is pointless).
    """
    verdict = syntactic_decision(database, tgds)
    tgd_class = classify(tgds)
    bound = chase_size_bound(database, tgds)
    d_bound = depth_bound(tgds, tgd_class)
    certificate = TerminationCertificate(
        verdict=verdict,
        tgd_class=tgd_class,
        size_bound=bound,
        depth_bound=d_bound,
    )
    should_run = run_chase and (verdict.terminates or chase_budget is not None)
    if not should_run:
        return certificate
    budget = chase_budget or ChaseBudget(max_atoms=min(bound, 500_000))
    result = semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False)
    certificate.chase_result = result
    if result.terminated:
        certificate.size_within_bound = result.size <= bound
        certificate.depth_within_bound = result.max_depth <= d_bound
    return certificate
