"""Syntactic classification of TGD sets into SL ⊊ L ⊊ G ⊊ TGD."""

from __future__ import annotations

from enum import Enum

from repro.model.tgd import TGDSet


class TGDClass(Enum):
    """The syntactic classes of the paper, from most to least restrictive."""

    SIMPLE_LINEAR = "SL"
    LINEAR = "L"
    GUARDED = "G"
    ARBITRARY = "TGD"

    def __str__(self) -> str:
        return self.value

    @property
    def has_paper_bounds(self) -> bool:
        """True for the classes with ``d_C`` / ``f_C`` bounds (SL, L, G)."""
        return self is not TGDClass.ARBITRARY

    def is_subclass_of(self, other: "TGDClass") -> bool:
        """True if this class is contained in ``other`` (SL ⊊ L ⊊ G ⊊ TGD)."""
        order = [
            TGDClass.SIMPLE_LINEAR,
            TGDClass.LINEAR,
            TGDClass.GUARDED,
            TGDClass.ARBITRARY,
        ]
        return order.index(self) <= order.index(other)


def classify(tgds: TGDSet) -> TGDClass:
    """The most restrictive class of the paper containing ``tgds``."""
    if tgds.is_simple_linear:
        return TGDClass.SIMPLE_LINEAR
    if tgds.is_linear:
        return TGDClass.LINEAR
    if tgds.is_guarded:
        return TGDClass.GUARDED
    return TGDClass.ARBITRARY
