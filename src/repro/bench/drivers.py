"""Workload drivers shared by the benchmark harness and the examples.

Each driver returns a list of :class:`SweepRow` — one row per
(parameter point), mirroring the rows a table or the series of a figure
would contain.  ``format_table`` renders them the way EXPERIMENTS.md
reports paper-vs-measured values.
"""

from __future__ import annotations

import gc
import json
import math
import os
import platform
import sys
import time
from statistics import median
from contextlib import contextmanager
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.model.instance import Database
from repro.model.tgd import TGDSet
from repro.chase.engine import ENGINES, ChaseBudget, ChaseResult
from repro.chase.oblivious import oblivious_chase
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import (
    depth_bound,
    guarded_lower_bound_value,
    linear_lower_bound_value,
    sl_lower_bound_value,
)
from repro.core.decision import decide_termination, naive_decision, syntactic_decision, ucq_decision
from repro.core.ucq import build_termination_ucq
from repro.generators.families import (
    guarded_lower_bound,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)


@dataclass
class SweepRow:
    """One measured point of an experiment."""

    label: str
    parameters: Dict[str, object]
    measured: Dict[str, object]

    def as_flat_dict(self) -> Dict[str, object]:
        flat: Dict[str, object] = {"label": self.label}
        flat.update(self.parameters)
        flat.update(self.measured)
        return flat


def format_table(rows: Sequence[SweepRow]) -> str:
    """Render rows as a fixed-width text table (one line per row)."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row.as_flat_dict():
            if key not in columns:
                columns.append(key)
    widths = {c: len(c) for c in columns}
    rendered_rows = []
    for row in rows:
        flat = {k: str(v) for k, v in row.as_flat_dict().items()}
        rendered_rows.append(flat)
        for column in columns:
            widths[column] = max(widths[column], len(flat.get(column, "")))
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    separator = "-+-".join("-" * widths[c] for c in columns)
    body = "\n".join(
        " | ".join(flat.get(c, "").ljust(widths[c]) for c in columns) for flat in rendered_rows
    )
    return f"{header}\n{separator}\n{body}"


def _count_predicate(result: ChaseResult, name: str) -> int:
    return sum(1 for a in result.instance if a.predicate.name == name)


# --------------------------------------------------------------------------
# E1: chase size is linear in |D|
# --------------------------------------------------------------------------


def chase_size_sweep(
    family: Callable[[int], Tuple[Database, TGDSet]],
    database_sizes: Sequence[int],
    budget: Optional[ChaseBudget] = None,
) -> List[SweepRow]:
    """Measure ``|chase(D_ℓ, Σ)|`` as the database grows (Theorems 6.4/7.5/8.3)."""
    rows: List[SweepRow] = []
    for size in database_sizes:
        database, tgds = family(size)
        result = semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False)
        rows.append(
            SweepRow(
                label="chase-size",
                parameters={"|D|": len(database)},
                measured={
                    "|chase|": result.size,
                    "ratio": round(result.expansion_ratio(), 2),
                    "terminated": result.terminated,
                    "seconds": round(result.statistics.wall_seconds, 4),
                },
            )
        )
    return rows


# --------------------------------------------------------------------------
# E2-E4: lower-bound families
# --------------------------------------------------------------------------


def lower_bound_rows(
    family: str,
    parameters: Sequence[Tuple[int, int, int]],
    budget: Optional[ChaseBudget] = None,
) -> List[SweepRow]:
    """Measure the lower-bound families against their closed-form bounds.

    ``family`` is one of ``"sl"``, ``"linear"`` or ``"guarded"``;
    ``parameters`` is a sequence of ``(n, m, ℓ)`` triples.
    """
    constructors = {
        "sl": (sl_lower_bound, sl_lower_bound_value, lambda n: f"R{n}"),
        "linear": (linear_lower_bound, linear_lower_bound_value, lambda n: f"R{n}"),
        "guarded": (guarded_lower_bound, guarded_lower_bound_value, lambda n: "Node"),
    }
    constructor, bound_value, top_predicate = constructors[family]
    rows: List[SweepRow] = []
    for n, m, ell in parameters:
        database, tgds = constructor(n, m, ell)
        result = semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False)
        measured_count = _count_predicate(result, top_predicate(n))
        paper_bound = bound_value(ell, n, m)
        rows.append(
            SweepRow(
                label=f"{family}-lower-bound",
                parameters={"n": n, "m": m, "|D|": ell},
                measured={
                    "paper_bound": paper_bound,
                    "measured": measured_count,
                    "total_chase": result.size,
                    "meets_bound": measured_count >= paper_bound,
                    "terminated": result.terminated,
                    "seconds": round(result.statistics.wall_seconds, 4),
                },
            )
        )
    return rows


# --------------------------------------------------------------------------
# E5/E6: term depth
# --------------------------------------------------------------------------


def depth_sweep(database_sizes: Sequence[int]) -> List[SweepRow]:
    """Proposition 4.5: ``maxdepth(D_n, Σ) = n − 1`` grows with the database."""
    rows: List[SweepRow] = []
    for size in database_sizes:
        database, tgds = prop45_family(size)
        result = semi_oblivious_chase(database, tgds, record_derivation=False)
        rows.append(
            SweepRow(
                label="prop45-depth",
                parameters={"|D|": size},
                measured={
                    "maxdepth": result.max_depth,
                    "expected": size - 1,
                    "matches": result.max_depth == size - 1,
                },
            )
        )
    return rows


def depth_bound_rows(
    workloads: Sequence[Tuple[str, Database, TGDSet]],
    budget: Optional[ChaseBudget] = None,
) -> List[SweepRow]:
    """Lemmas 6.2 / 7.4 / 8.2: measured maxdepth against ``d_C(Σ)``."""
    rows: List[SweepRow] = []
    for name, database, tgds in workloads:
        result = semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False)
        bound = depth_bound(tgds)
        rows.append(
            SweepRow(
                label="depth-bound",
                parameters={"workload": name},
                measured={
                    "maxdepth": result.max_depth,
                    "d_C": bound,
                    "within_bound": (not result.terminated) or result.max_depth <= bound,
                    "terminated": result.terminated,
                },
            )
        )
    return rows


# --------------------------------------------------------------------------
# E7-E9, E13: decision procedures
# --------------------------------------------------------------------------


def decision_scaling_sweep(
    family: Callable[[int], Tuple[Database, TGDSet]],
    database_sizes: Sequence[int],
    methods: Sequence[str] = ("syntactic", "naive"),
    practical_cap: int = 200_000,
) -> List[SweepRow]:
    """Compare decision-procedure run times as the database grows."""
    rows: List[SweepRow] = []
    for size in database_sizes:
        database, tgds = family(size)
        measured: Dict[str, object] = {}
        for method in methods:
            start = time.perf_counter()
            verdict = decide_termination(
                database, tgds, method=method, practical_cap=practical_cap
            )
            elapsed = time.perf_counter() - start
            measured[f"{method}_seconds"] = round(elapsed, 5)
            measured[f"{method}_answer"] = verdict.terminates
        rows.append(
            SweepRow(label="decision-scaling", parameters={"|D|": len(database)}, measured=measured)
        )
    return rows


def ucq_data_complexity_rows(
    tgds: TGDSet,
    databases: Sequence[Tuple[int, Database]],
) -> List[SweepRow]:
    """Split the UCQ procedure into its Σ-only and D-only costs (AC0 claim)."""
    start = time.perf_counter()
    ucq = build_termination_ucq(tgds)
    build_seconds = time.perf_counter() - start
    rows: List[SweepRow] = []
    for size, database in databases:
        start = time.perf_counter()
        violated = ucq.witnessed_by(database)
        evaluate_seconds = time.perf_counter() - start
        rows.append(
            SweepRow(
                label="ucq-data-complexity",
                parameters={"|D|": size},
                measured={
                    "ucq_disjuncts": len(ucq),
                    "build_seconds": round(build_seconds, 5),
                    "evaluate_seconds": round(evaluate_seconds, 6),
                    "terminates": not violated,
                },
            )
        )
    return rows


# --------------------------------------------------------------------------
# E18: columnar engine — layouts, snapshots, incremental re-chase
# --------------------------------------------------------------------------

#: The three engine implementations the report compares, slow to fast
#: (ENGINES lists them fast to slow).
_ENGINE_ORDER = tuple(reversed(ENGINES))


@contextmanager
def _store_layout(layout: Optional[str]):
    """Pin the store layout through the REPRO_STORE_LAYOUT knob."""
    from repro.model.store import LAYOUT_ENV_VAR

    if layout is None:
        yield
        return
    previous = os.environ.get(LAYOUT_ENV_VAR)
    os.environ[LAYOUT_ENV_VAR] = layout
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(LAYOUT_ENV_VAR, None)
        else:
            os.environ[LAYOUT_ENV_VAR] = previous


@contextmanager
def _gc_paused():
    """Collect, then disable the GC for the timed region.

    Collector pauses land arbitrarily inside timed runs and were the
    dominant noise source when comparing layouts (the columnar layout
    allocates differently, so pauses bias the ratio, not just the
    variance).
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _peak_rss_mb() -> Optional[float]:
    """Process peak RSS in MiB at call time, if known.

    ``ru_maxrss`` is a process-wide monotone high-water mark: a row's
    value includes every workload run before it.  Per-engine footprint
    claims come from :func:`engine_memory_row` (tracemalloc), not from
    comparing these columns.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    divisor = 1024 if sys.platform != "darwin" else 1024 * 1024
    return round(peak / divisor, 1)


def _engine_workloads(
    quick: bool = False,
) -> List[Tuple[str, Database, TGDSet, Tuple[str, ...], bool]]:
    """The workloads of the engine report: (name, D, Σ, variants, big).

    ``big`` marks the enlarged rows whose store-vs-plans speedups gate
    the report (small rows are kept for continuity with the E14 report
    but are dominated by per-run compilation).
    """
    from repro.generators.workloads import restricted_heavy

    if quick:
        database, tgds = sl_lower_bound(2, 3, 2)
        heavy_database, heavy_tgds = restricted_heavy(60, 20)
        return [
            ("sl(n=2,m=3,ell=2)", database, tgds, ("semi_oblivious",), False),
            ("restricted-heavy(n=60,m=20)", heavy_database, heavy_tgds, ("restricted",), False),
        ]
    all_variants = ("semi_oblivious", "restricted", "oblivious")
    out: List[Tuple[str, Database, TGDSet, Tuple[str, ...], bool]] = []
    for name, (database, tgds), variants, big in [
        ("sl(n=2,m=3,ell=2)", sl_lower_bound(2, 3, 2), all_variants, False),
        ("sl(n=3,m=2,ell=2)", sl_lower_bound(3, 2, 2), all_variants, False),
        ("linear(n=2,m=2,ell=1)", linear_lower_bound(2, 2, 1), all_variants, False),
        ("guarded(n=1,m=1,ell=1)", guarded_lower_bound(1, 1, 1), all_variants, False),
        ("sl-big(n=3,m=3,ell=2)", sl_lower_bound(3, 3, 2), ("semi_oblivious",), True),
        ("linear-big(n=2,m=3,ell=3)", linear_lower_bound(2, 3, 3), ("semi_oblivious",), True),
        ("restricted-heavy(n=250,m=60)", restricted_heavy(250, 60), ("restricted",), True),
        ("restricted-heavy(n=400,m=100)", restricted_heavy(400, 100), ("restricted",), True),
    ]:
        out.append((name, database, tgds, variants, big))
    return out


def _results_equivalent(variant: str, results: Dict[str, ChaseResult]) -> bool:
    """Byte-level result identity across engines for one bench row.

    Semi-oblivious and oblivious results are unique, so the decoded
    instances must be equal atom for atom (same nulls included).  The
    restricted chase numbers its per-application fire marks in trigger
    order, which legitimately differs between engines; its instances
    are compared through the fire-invariant key, which is exact up to
    that numbering.
    """
    from repro.model.serialization import fire_invariant_instance_key

    baseline = results["legacy"]
    for engine in results:
        if engine == "legacy":
            continue
        candidate = results[engine]
        if (
            candidate.size != baseline.size
            or candidate.statistics.triggers_applied
            != baseline.statistics.triggers_applied
            or candidate.statistics.triggers_considered
            != baseline.statistics.triggers_considered
        ):
            return False
        if variant == "restricted":
            if fire_invariant_instance_key(candidate.instance) != (
                fire_invariant_instance_key(baseline.instance)
            ):
                return False
        elif candidate.instance != baseline.instance:
            return False
    return True


def engine_benchmark_rows(
    workloads: Optional[Sequence[Tuple]] = None,
    variants: Sequence[str] = ("semi_oblivious", "restricted", "oblivious"),
    budget: Optional[ChaseBudget] = None,
    repeats: int = 3,
    quick: bool = False,
    layout: str = "both",
) -> List[SweepRow]:
    """Engine and layout comparison on the lower-bound families.

    Every workload runs through each chase variant on all three engines
    — the columnar fact store (the default), the term-level compiled
    plans it superseded (PR 1), and the legacy per-round rescan — best
    of ``repeats`` runs each, GC paused during timed regions.  With
    ``layout="both"`` (the default) the store engine is measured twice,
    once per storage layout, giving every row a ``layout_speedup``
    column (sets seconds / arrays seconds): the old-vs-new comparison
    the columnar rebuild is gated on.  ``seconds`` times the
    run-to-summary path (the batch runtime's mode); ``materialize_seconds``
    times one extra run that also materialises the full instance.  Each
    row records speedups, peak RSS, and that all engines *and layouts*
    produced equivalent results (:func:`_results_equivalent`).

    ``workloads`` entries are ``(name, database, tgds)`` or
    ``(name, database, tgds, variants[, big])``.
    """
    if layout not in ("both", "arrays", "sets"):
        raise ValueError(f"unknown layout axis {layout!r}")
    runners = {
        "semi_oblivious": semi_oblivious_chase,
        "restricted": restricted_chase,
        "oblivious": oblivious_chase,
    }
    budget = budget or ChaseBudget(max_atoms=500_000)
    store_layouts = ("sets", "arrays") if layout == "both" else (layout,)
    rows: List[SweepRow] = []

    def timed(
        runner, database, tgds, engine,
        store_layout=None, materialize=False, probe=False, profile=False,
    ):
        from repro.obs.probe import ChaseProbe
        from repro.obs.profile import RuleProfiler

        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            round_probe = ChaseProbe() if probe else None
            run_profiler = RuleProfiler() if profile else None
            with _store_layout(store_layout), _gc_paused():
                start = time.perf_counter()
                result = runner(
                    database, tgds, budget=budget, record_derivation=False,
                    engine=engine, probe=round_probe, profile=run_profiler,
                )
                result.summary()
                if materialize:
                    len(result.instance)
                best = min(best, time.perf_counter() - start)
        return best, result

    for entry in workloads or _engine_workloads(quick=quick):
        name, database, tgds = entry[0], entry[1], entry[2]
        row_variants = entry[3] if len(entry) > 3 else tuple(variants)
        big = entry[4] if len(entry) > 4 else False
        for variant in row_variants:
            runner = runners[variant]
            timings: Dict[str, float] = {}
            results: Dict[str, ChaseResult] = {}
            timings["legacy"], results["legacy"] = timed(runner, database, tgds, "legacy")
            timings["plans"], results["plans"] = timed(runner, database, tgds, "plans")
            for store_layout in store_layouts:
                key = f"store-{store_layout}"
                timings[key], results[key] = timed(
                    runner, database, tgds, "store", store_layout=store_layout
                )
            primary_layout = store_layouts[-1]
            store_seconds = max(timings[f"store-{primary_layout}"], 1e-9)
            materialize_plans, _ = timed(
                runner, database, tgds, "plans", materialize=True
            )
            materialize_store, _ = timed(
                runner, database, tgds, "store",
                store_layout=primary_layout, materialize=True,
            )
            # Instrumentation overheads: the same store run with a
            # per-round probe (telemetry) and with per-rule attribution
            # (profile).  Both are gated in quick mode (on ≤ 1.10× of
            # off) so instrumentation can never silently become a
            # per-trigger cost.  The three modes are measured
            # *interleaved* — plain, probe-on, profile-on back to back
            # each round — and each round yields its own ratio, so
            # machine drift cancels within the round; the reported
            # overhead is the *median* ratio, which tosses the rounds a
            # scheduler interrupt landed in.  Ratio-of-best-times is
            # not robust enough here: one clean plain run against a
            # noisy instrumented phase flakes the gate on runs this
            # short.
            from repro.obs.probe import ChaseProbe
            from repro.obs.profile import RuleProfiler

            probe_ratios: List[float] = []
            profile_ratios: List[float] = []
            telemetry_store = profile_store = float("inf")
            for _ in range(max(9, repeats)):
                mode_seconds = {}
                for mode in ("plain", "probe", "profile"):
                    round_probe = ChaseProbe() if mode == "probe" else None
                    run_profiler = RuleProfiler() if mode == "profile" else None
                    with _store_layout(primary_layout), _gc_paused():
                        mode_start = time.perf_counter()
                        runner(
                            database, tgds, budget=budget,
                            record_derivation=False, engine="store",
                            probe=round_probe, profile=run_profiler,
                        ).summary()
                        mode_seconds[mode] = time.perf_counter() - mode_start
                plain = max(mode_seconds["plain"], 1e-9)
                probe_ratios.append(mode_seconds["probe"] / plain)
                profile_ratios.append(mode_seconds["profile"] / plain)
                telemetry_store = min(telemetry_store, mode_seconds["probe"])
                profile_store = min(profile_store, mode_seconds["profile"])
            # The gate reads the *floor* (min ratio): a genuine
            # per-trigger cost shows up in every round so it cannot
            # hide from the min, while a scheduler interrupt in any
            # single round cannot flake the gate.  The median stays the
            # honest central estimate for dashboards.
            telemetry_overhead = median(probe_ratios)
            profile_overhead = median(profile_ratios)
            telemetry_floor = min(probe_ratios)
            profile_floor = min(profile_ratios)
            store_result = results[f"store-{primary_layout}"]
            measured: Dict[str, object] = {
                "atoms": store_result.size,
                "legacy_seconds": round(timings["legacy"], 4),
                "plans_seconds": round(timings["plans"], 4),
                "store_seconds": round(timings[f"store-{primary_layout}"], 4),
                "speedup_vs_plans": round(timings["plans"] / store_seconds, 2),
                "speedup_vs_legacy": round(timings["legacy"] / store_seconds, 2),
                "store_atoms_per_s": round(store_result.size / store_seconds),
                "materialize_speedup_vs_plans": round(
                    materialize_plans / max(materialize_store, 1e-9), 2
                ),
                "applied": store_result.statistics.triggers_applied,
                "store_telemetry_seconds": round(telemetry_store, 4),
                "telemetry_overhead": round(telemetry_overhead, 3),
                "telemetry_overhead_floor": round(telemetry_floor, 3),
                "store_profile_seconds": round(profile_store, 4),
                "profile_overhead": round(profile_overhead, 3),
                "profile_overhead_floor": round(profile_floor, 3),
                "equivalent": _results_equivalent(variant, results),
                "peak_rss_mb": _peak_rss_mb(),
                # Kept for dashboards that read the E14 column.
                "speedup": round(timings["legacy"] / store_seconds, 2),
            }
            if layout == "both":
                measured["store_sets_seconds"] = round(timings["store-sets"], 4)
                measured["layout_speedup"] = round(
                    timings["store-sets"] / store_seconds, 2
                )
            rows.append(
                SweepRow(
                    label="engine-speed",
                    parameters={
                        "workload": name,
                        "variant": variant,
                        "big": big,
                        "layout": primary_layout,
                    },
                    measured=measured,
                )
            )
    return rows


def snapshot_roundtrip_row(
    workload: Optional[Tuple[str, Database, TGDSet]] = None,
    budget: Optional[ChaseBudget] = None,
    repeats: int = 3,
) -> SweepRow:
    """Snapshot encode/decode throughput on a big chase result.

    Chases the workload once on the store engine, then times
    ``FactStore.snapshot()`` and ``FactStore.restore()`` (best of
    ``repeats``), reporting MB/s both ways and that the restored store
    decodes to the exact same instance (null recipes included).
    """
    from repro.model.store import FactStore

    if workload is None:
        database, tgds = sl_lower_bound(3, 3, 2)
        name = "sl-big(n=3,m=3,ell=2)"
    else:
        name, database, tgds = workload
    budget = budget or ChaseBudget(max_atoms=500_000)
    result = semi_oblivious_chase(
        database, tgds, budget=budget, record_derivation=False, engine="store"
    )
    blob = result.store_snapshot()
    assert blob is not None
    encode_seconds = float("inf")
    decode_seconds = float("inf")
    restored = None
    for _ in range(max(1, repeats)):
        with _gc_paused():
            start = time.perf_counter()
            blob = result.store_snapshot()
            encode_seconds = min(encode_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            restored = FactStore.restore(blob)
            decode_seconds = min(decode_seconds, time.perf_counter() - start)
    megabytes = len(blob) / (1024 * 1024)
    equivalent = (
        len(restored) == result.size
        and restored.max_depth() == result.max_depth
        and restored.to_instance() == result.instance
    )
    return SweepRow(
        label="snapshot-roundtrip",
        parameters={"workload": name, "atoms": result.size},
        measured={
            "snapshot_bytes": len(blob),
            "encode_seconds": round(encode_seconds, 4),
            "decode_seconds": round(decode_seconds, 4),
            "encode_mb_s": round(megabytes / max(encode_seconds, 1e-9), 1),
            "decode_mb_s": round(megabytes / max(decode_seconds, 1e-9), 1),
            "equivalent": equivalent,
        },
    )


def incremental_rechase_row(
    chain_length: int = 80,
    payloads: int = 320,
    delta_payloads: int = 20,
    budget: Optional[ChaseBudget] = None,
    repeats: int = 3,
) -> SweepRow:
    """Cold re-chase vs ``resume_from`` on a ~5% database delta.

    The base database is ``restricted_heavy(chain_length, payloads -
    delta_payloads)`` and the grown one adds ``delta_payloads`` payload
    seeds (the base facts are a strict subset).  The cold run chases
    the grown database from scratch; the incremental run restores the
    base run's snapshot (restore cost included in its time) and chases
    only the delta.  The semi-oblivious result is unique, so the two
    instances must be equal atom for atom.
    """
    from repro.generators.workloads import restricted_heavy

    budget = budget or ChaseBudget(max_atoms=500_000)
    full_database, tgds = restricted_heavy(chain_length, payloads)
    base_database, _ = restricted_heavy(chain_length, payloads - delta_payloads)
    assert set(base_database) <= set(full_database)
    base = semi_oblivious_chase(
        base_database, tgds, budget=budget, record_derivation=False, engine="store"
    )
    assert base.terminated
    snapshot = base.store_snapshot()
    assert snapshot is not None

    cold_seconds = float("inf")
    cold = None
    for _ in range(max(1, repeats)):
        with _gc_paused():
            start = time.perf_counter()
            cold = semi_oblivious_chase(
                full_database, tgds, budget=budget, record_derivation=False,
                engine="store",
            )
            cold.summary()
            cold_seconds = min(cold_seconds, time.perf_counter() - start)
    resume_seconds = float("inf")
    resumed = None
    for _ in range(max(1, repeats)):
        with _gc_paused():
            start = time.perf_counter()
            resumed = semi_oblivious_chase(
                full_database, tgds, budget=budget, record_derivation=False,
                engine="store", resume_from=snapshot,
            )
            resumed.summary()
            resume_seconds = min(resume_seconds, time.perf_counter() - start)
    equivalent = (
        resumed.terminated
        and cold.terminated
        and resumed.size == cold.size
        and resumed.instance == cold.instance
    )
    delta_fraction = (len(full_database) - len(base_database)) / len(full_database)
    return SweepRow(
        label="incremental-rechase",
        parameters={
            "workload": f"restricted-heavy(n={chain_length},m={payloads})",
            "variant": "semi_oblivious",
            "delta_facts": len(full_database) - len(base_database),
            "delta_fraction": round(delta_fraction, 4),
        },
        measured={
            "base_atoms": base.size,
            "atoms": cold.size,
            "cold_seconds": round(cold_seconds, 4),
            "resume_seconds": round(resume_seconds, 4),
            "incremental_speedup": round(cold_seconds / max(resume_seconds, 1e-9), 2),
            "equivalent": equivalent,
        },
    )


def engine_memory_row(
    workload: Optional[Tuple[str, Database, TGDSet]] = None,
    variant: str = "semi_oblivious",
    budget: Optional[ChaseBudget] = None,
) -> SweepRow:
    """Peak traced Python allocations per engine on one big workload.

    ``tracemalloc`` runs are slow, so this is a single dedicated row
    (not per-row instrumentation): it isolates the data-plane footprint
    claim — packed id tuples against three ``Set[Atom]`` indexes —
    from the wall-clock rows.
    """
    import tracemalloc

    runners = {
        "semi_oblivious": semi_oblivious_chase,
        "restricted": restricted_chase,
        "oblivious": oblivious_chase,
    }
    if workload is None:
        database, tgds = sl_lower_bound(3, 3, 2)
        name = "sl-big(n=3,m=3,ell=2)"
    else:
        name, database, tgds = workload
    budget = budget or ChaseBudget(max_atoms=500_000)
    measured: Dict[str, object] = {}
    for engine in _ENGINE_ORDER:
        tracemalloc.start()
        result = runners[variant](
            database, tgds, budget=budget, record_derivation=False, engine=engine
        )
        result.summary()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del result
        measured[f"{engine}_peak_mb"] = round(peak / (1024 * 1024), 1)
    measured["store_vs_plans_ratio"] = round(
        float(measured["plans_peak_mb"]) / max(float(measured["store_peak_mb"]), 1e-9), 2
    )
    return SweepRow(
        label="engine-memory",
        parameters={"workload": name, "variant": variant},
        measured=measured,
    )


def write_engine_report(
    path: str = "BENCH_engine.json",
    rows: Optional[Sequence[SweepRow]] = None,
    quick: bool = False,
    layout: str = "both",
    history_path: Optional[str] = None,
    **kwargs,
) -> Dict[str, object]:
    """Run the engine/layout report and write it to ``path`` as JSON.

    The PR-facing artefact backing the columnar-store claims (E18):

    * the arrays layout beats the PR 4 sets layout ≥ 1.3× on the big
      SL/L and restricted-heavy rows (``layout_speedup``), with
      equivalent results on every row;
    * snapshot round trips are fast enough to ship (encode/decode MB/s
      row) and lossless;
    * ``resume_from`` re-chase of a ~5% database delta is ≥ 3× faster
      than a cold re-chase, atom-for-atom equal;
    * the store engine keeps (and extends) its E17 margins over the
      plans and legacy engines.

    ``quick`` runs the two-row CI smoke variant, whose gates are the
    store-vs-legacy speedup (≥ 1.5×) and the arrays-vs-sets layout
    speedup (≥ 1.0×, a no-regression floor on noisy CI runners).
    """
    if rows is None:
        # Generating our own rows means owning the extra rows too; a
        # caller-supplied list (tests) is taken as-is.
        rows = engine_benchmark_rows(quick=quick, layout=layout, **kwargs)
        if not quick:
            rows.append(snapshot_roundtrip_row())
            rows.append(incremental_rechase_row())
            rows.append(engine_memory_row())
    else:
        rows = list(rows)
    speed_rows = [r for r in rows if r.label == "engine-speed"]

    def plans_speedups(predicate) -> List[float]:
        return [
            float(r.measured["speedup_vs_plans"]) for r in speed_rows if predicate(r)
        ]

    def layout_speedups(predicate) -> List[float]:
        return [
            float(r.measured["layout_speedup"])
            for r in speed_rows
            if "layout_speedup" in r.measured and predicate(r)
        ]

    def is_big_sl_l(r) -> bool:
        return bool(r.parameters.get("big")) and r.parameters["variant"] != "restricted"

    def is_big_restricted(r) -> bool:
        return bool(r.parameters.get("big")) and r.parameters["variant"] == "restricted"

    big_semi = plans_speedups(is_big_sl_l)
    big_restricted = plans_speedups(is_big_restricted)
    layout_semi = layout_speedups(is_big_sl_l)
    layout_restricted = layout_speedups(is_big_restricted)
    layout_all = layout_speedups(lambda r: True)
    vs_legacy = [float(r.measured["speedup_vs_legacy"]) for r in speed_rows]
    telemetry_overheads = [
        float(r.measured["telemetry_overhead"])
        for r in speed_rows
        if "telemetry_overhead" in r.measured
    ]
    profile_overheads = [
        float(r.measured["profile_overhead"])
        for r in speed_rows
        if "profile_overhead" in r.measured
    ]
    telemetry_floors = [
        float(r.measured["telemetry_overhead_floor"])
        for r in speed_rows
        if "telemetry_overhead_floor" in r.measured
    ]
    profile_floors = [
        float(r.measured["profile_overhead_floor"])
        for r in speed_rows
        if "profile_overhead_floor" in r.measured
    ]
    snapshot_rows = [r for r in rows if r.label == "snapshot-roundtrip"]
    incremental_rows = [r for r in rows if r.label == "incremental-rechase"]
    incremental_speedup = (
        min(float(r.measured["incremental_speedup"]) for r in incremental_rows)
        if incremental_rows
        else None
    )
    equivalence_rows = speed_rows + snapshot_rows + incremental_rows
    summary = {
        "all_equivalent": all(
            bool(r.measured["equivalent"]) for r in equivalence_rows
        ),
        "min_speedup_vs_legacy": min(vs_legacy) if vs_legacy else None,
        "min_layout_speedup": min(layout_all) if layout_all else None,
        # The big-row acceptance gates are only meaningful on the full
        # workload set; quick mode reports them as None (not evaluated)
        # rather than false (regressed).
        "min_big_sl_l_layout_speedup": min(layout_semi) if layout_semi else None,
        "min_restricted_heavy_layout_speedup": (
            min(layout_restricted) if layout_restricted else None
        ),
        "big_sl_l_layout_target_met": (
            (min(layout_semi) >= 1.3) if layout_semi else None
        ),
        "restricted_heavy_layout_target_met": (
            (min(layout_restricted) >= 1.3) if layout_restricted else None
        ),
        "min_big_sl_l_speedup_vs_plans": min(big_semi) if big_semi else None,
        "min_restricted_heavy_speedup_vs_plans": (
            min(big_restricted) if big_restricted else None
        ),
        "big_sl_l_target_met": (min(big_semi) >= 2.0) if big_semi else None,
        "restricted_heavy_target_met": (
            (min(big_restricted) >= 3.0) if big_restricted else None
        ),
        "incremental_speedup": incremental_speedup,
        "incremental_target_met": (
            (incremental_speedup >= 3.0) if incremental_speedup is not None else None
        ),
        "snapshot_encode_mb_s": (
            float(snapshot_rows[0].measured["encode_mb_s"]) if snapshot_rows else None
        ),
        "snapshot_decode_mb_s": (
            float(snapshot_rows[0].measured["decode_mb_s"]) if snapshot_rows else None
        ),
        "max_telemetry_overhead": (
            max(telemetry_overheads) if telemetry_overheads else None
        ),
        "max_profile_overhead": (
            max(profile_overheads) if profile_overheads else None
        ),
        # The quick-mode gates read the floors (min interleaved ratio
        # per row, max across rows): robust to scheduler noise, blind
        # to nothing — a real per-trigger cost appears in every round.
        "max_telemetry_overhead_floor": (
            max(telemetry_floors) if telemetry_floors else None
        ),
        "max_profile_overhead_floor": (
            max(profile_floors) if profile_floors else None
        ),
    }
    report = {
        "experiment": "E18-columnar-engine",
        "description": (
            "Columnar fact store (arrays layout) vs the PR 4 sets layout, the "
            "PR 1 compiled plans and the legacy rescan, best-of-N "
            "run-to-summary wall seconds with GC paused; plus snapshot "
            "round-trip throughput and incremental (resume_from) re-chase "
            "vs cold on a ~5% database delta"
        ),
        "python": platform.python_version(),
        "rows": [r.as_flat_dict() for r in rows],
        "summary": summary,
    }
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    _maybe_append_history(report, history_path)
    return report


def _maybe_append_history(report: Dict[str, object], history_path: Optional[str]) -> None:
    """Append ``report`` to the bench history log when a path is given.

    ``history_path`` stays ``None`` on library/test calls so they never
    pollute the repo's log; the CLI passes the default
    ``benchmarks/history.jsonl``.  An append failure (read-only
    checkout, say) loses history, not the report — it is warned about,
    never raised.
    """
    if history_path is None:
        return
    from repro.obs.benchhist import append_history

    try:
        append_history(report, history_path)
    except OSError as exc:
        print(f"warning: could not append bench history to {history_path}: {exc}")


# --------------------------------------------------------------------------
# E15: batch runtime — pool vs serial, cache replay, auto-budgets
# --------------------------------------------------------------------------


def _checkpoint_resume_measurement(
    kill_at_round: int = 16,
    checkpoint_every: int = 4,
    max_rounds: int = 24,
) -> Dict[str, object]:
    """Kill a long linear chase mid-run; measure the checkpointed retry.

    The probe is a single-rule linear chain chased for ``max_rounds``
    rounds under an explicit budget — long enough that a kill at round
    ``kill_at_round`` lands well past several checkpoint boundaries.
    The injected ``worker.round`` kill (serial mode: a transient
    failure) forces one retry, which must resume from the newest intact
    checkpoint rather than restart cold.
    """
    import shutil
    import tempfile

    from repro.model.parser import parse_database, parse_program
    from repro.runtime import BatchExecutor, ChaseJob
    from repro.runtime.faults import ENV_VAR, FaultPlan, FaultSpec, reset_injector

    def probe() -> ChaseJob:
        return ChaseJob(
            program=parse_program("E(x, y) -> exists z . E(y, z)"),
            database=parse_database("E(a, b)."),
            job_id="checkpoint-probe",
            variant="semi-oblivious",
            budget_mode="explicit",
            budget=ChaseBudget(max_rounds=max_rounds, max_atoms=10**6),
        )

    cold_start = time.perf_counter()
    cold = BatchExecutor(workers=1).run_all([probe()])[0]
    cold_seconds = time.perf_counter() - cold_start
    cold_rounds = int(cold.summary["rounds"]) if cold.summary else 0
    scratch = tempfile.mkdtemp(prefix="repro-bench-ckpt-")
    plan = FaultPlan(
        faults=(
            FaultSpec(
                point="worker.round",
                action="kill",
                at_round=kill_at_round,
                match="checkpoint-probe",
            ),
        ),
        seed=13,
        state_dir=os.path.join(scratch, "faults"),
    )
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan.to_env()
    reset_injector()
    try:
        executor = BatchExecutor(
            workers=1,
            max_retries=1,
            checkpoint_every_rounds=checkpoint_every,
            checkpoint_dir=os.path.join(scratch, "ckpt"),
        )
        resumed_start = time.perf_counter()
        resumed = executor.run_all([probe()])[0]
        resumed_seconds = time.perf_counter() - resumed_start
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        reset_injector()
        shutil.rmtree(scratch, ignore_errors=True)
    provenance = resumed.as_dict().get("checkpoint") or {}
    base_rounds = int(provenance.get("base_rounds", 0))
    resumed_rounds = int(provenance.get("resumed_rounds", 0))
    return {
        "kill_at_round": kill_at_round,
        "checkpoint_every_rounds": checkpoint_every,
        "cold_rounds": cold_rounds,
        "cold_seconds": round(cold_seconds, 3),
        "base_rounds": base_rounds,
        "resumed_rounds": resumed_rounds,
        "killed_seconds": round(resumed_seconds, 3),
        "resumed_from_checkpoint": 0 < base_rounds and resumed_rounds < cold_rounds,
        "byte_identical": resumed.status == cold.status
        and resumed.summary_json() == cold.summary_json(),
    }


def runtime_benchmark_rows(
    job_count: int = 200,
    workers: int = 4,
    repeats: int = 1,
    seed: int = 7,
) -> Tuple[List[SweepRow], Dict[str, object]]:
    """Measure the batch runtime on a mixed manifest.

    Four measurements, each its own row:

    1. **serial** — cold, no cache, ``workers=1`` (best of ``repeats``);
    2. **pool** — cold, no cache, ``workers`` processes;
    3. **cache** — a cold pass filling a fresh cache, then a replay pass
       that must hit on every job and return byte-identical summaries;
    4. **auto-budgets** — over the serial results: auto-budgeted SL/L
       jobs tagged ``terminating`` must never report
       ``ATOM_BUDGET_EXCEEDED`` (or any budget outcome — the paper's
       bounds guarantee termination fits inside them);
    5. **checkpoint-resume** — a long linear job is killed mid-run by
       an injected ``worker.round`` fault; the retry must resume from
       its last round checkpoint (``base_rounds > 0``), re-execute
       fewer rounds than the cold run, and still produce the cold
       run's summary bytes.

    Returns the rows plus a machine-readable summary.
    """
    from repro.generators.workloads import mixed_workload_jobs
    from repro.runtime import BatchExecutor, ResultCache

    jobs = mixed_workload_jobs(job_count=job_count, seed=seed)

    def timed_run(executor: BatchExecutor) -> Tuple[float, List]:
        start = time.perf_counter()
        results = executor.run_all(jobs)
        return time.perf_counter() - start, results

    serial_seconds = float("inf")
    serial_results: List = []
    for _ in range(max(1, repeats)):
        elapsed, results = timed_run(BatchExecutor(workers=1))
        if elapsed < serial_seconds:
            serial_seconds, serial_results = elapsed, results

    pool_seconds = float("inf")
    pool_results: List = []
    for _ in range(max(1, repeats)):
        elapsed, results = timed_run(BatchExecutor(workers=workers))
        if elapsed < pool_seconds:
            pool_seconds, pool_results = elapsed, results

    # Serial and pooled runs of the same job must agree byte for byte.
    by_id_serial = {r.job_id: r.summary_json() for r in serial_results if r.status == "ok"}
    by_id_pool = {r.job_id: r.summary_json() for r in pool_results if r.status == "ok"}
    shared = set(by_id_serial) & set(by_id_pool)
    pool_deterministic = all(by_id_serial[i] == by_id_pool[i] for i in shared)

    cache = ResultCache()
    cold_seconds, cold_results = timed_run(BatchExecutor(workers=1, cache=cache))
    warm_seconds, warm_results = timed_run(BatchExecutor(workers=1, cache=cache))
    cold_by_id = {r.job_id: r for r in cold_results}
    cacheable = [r for r in cold_results if r.status == "ok"]
    warm_hits = [r for r in warm_results if r.cache_hit]
    cache_identical = all(
        r.summary_json() == cold_by_id[r.job_id].summary_json() for r in warm_hits
    )
    all_cacheable_hit = len(warm_hits) >= len(cacheable)
    # Per-hit replay latency, separate from the warm pass total: jobs
    # with non-deterministic outcomes (timeouts) are never cached and
    # re-run on the warm pass, which would otherwise dominate it.
    mean_hit_ms = (
        round(sum(r.wall_seconds for r in warm_hits) / len(warm_hits) * 1000, 3)
        if warm_hits
        else None
    )

    def is_auto_sl_l(result) -> bool:
        budget = result.budget_provenance
        return budget["source"] == "paper-bound" and budget["class"] in ("SL", "L")

    auto_terminating = [
        r
        for r in serial_results
        if is_auto_sl_l(r) and "terminating" in r.tags and "nonterminating" not in r.tags
    ]
    auto_within_budget = all(
        r.summary is not None and r.summary["outcome"] == "terminated"
        for r in auto_terminating
    )
    outcome_histogram = Counter(
        r.summary["outcome"] if r.summary else r.status for r in serial_results
    )

    checkpoint_summary = _checkpoint_resume_measurement()

    cpu_count = os.cpu_count() or 1
    speedup = round(serial_seconds / max(pool_seconds, 1e-9), 2)
    rows = [
        SweepRow(
            label="runtime-serial",
            parameters={"jobs": len(jobs), "workers": 1},
            measured={"seconds": round(serial_seconds, 3),
                      "jobs_per_s": round(len(jobs) / max(serial_seconds, 1e-9), 1)},
        ),
        SweepRow(
            label="runtime-pool",
            parameters={"jobs": len(jobs), "workers": workers},
            measured={
                "seconds": round(pool_seconds, 3),
                "jobs_per_s": round(len(jobs) / max(pool_seconds, 1e-9), 1),
                "speedup": speedup,
                "deterministic": pool_deterministic,
            },
        ),
        SweepRow(
            label="runtime-cache",
            parameters={"jobs": len(jobs), "workers": 1},
            measured={
                "cold_seconds": round(cold_seconds, 3),
                "warm_seconds": round(warm_seconds, 3),
                "hits": len(warm_hits),
                "mean_hit_ms": mean_hit_ms,
                "replay_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
                "byte_identical": cache_identical,
            },
        ),
        SweepRow(
            label="runtime-auto-budget",
            parameters={"jobs": len(auto_terminating)},
            measured={
                "auto_sl_l_terminating": len(auto_terminating),
                "all_within_budget": auto_within_budget,
            },
        ),
        SweepRow(
            label="runtime-checkpoint-resume",
            parameters={
                "kill_at_round": checkpoint_summary["kill_at_round"],
                "checkpoint_every_rounds": checkpoint_summary["checkpoint_every_rounds"],
            },
            measured={
                key: checkpoint_summary[key]
                for key in (
                    "cold_rounds", "base_rounds", "resumed_rounds",
                    "resumed_from_checkpoint", "byte_identical",
                )
            },
        ),
    ]
    summary = {
        "job_count": len(jobs),
        "workers": workers,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_seconds, 3),
        "pool_seconds": round(pool_seconds, 3),
        "pool_speedup": speedup,
        "pool_deterministic": pool_deterministic,
        "speedup_target_met": speedup >= 2.5 or cpu_count < workers,
        "cache_warm_seconds": round(warm_seconds, 3),
        "cache_mean_hit_ms": mean_hit_ms,
        "cache_hits_byte_identical": cache_identical,
        "all_cacheable_jobs_hit": all_cacheable_hit,
        "auto_budgeted_sl_l_within_budget": auto_within_budget,
        "checkpoint_resume": checkpoint_summary,
        "outcomes": dict(sorted(outcome_histogram.items())),
    }
    return rows, summary


def write_runtime_report(
    path: str = "BENCH_runtime.json",
    rows: Optional[Sequence[SweepRow]] = None,
    summary: Optional[Dict[str, object]] = None,
    job_count: int = 200,
    workers: int = 4,
    repeats: int = 1,
    seed: int = 7,
    history_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the runtime benchmark and write ``BENCH_runtime.json``.

    The PR-facing artefact backing the batch-runtime claims: pool
    speedup over serial (``speedup_target_met`` tolerates machines with
    fewer cores than workers, where a process pool cannot physically
    win), byte-identical cache replay, and paper-derived auto-budgets
    never cutting off terminating SL/L jobs.  See EXPERIMENTS.md (E15).
    Pass precomputed ``rows``/``summary`` to write without re-running.
    """
    if rows is None or summary is None:
        rows, summary = runtime_benchmark_rows(
            job_count=job_count, workers=workers, repeats=repeats, seed=seed
        )
    report = {
        "experiment": "E15-batch-runtime",
        "description": (
            "Concurrent batch executor with fingerprint cache and "
            "paper-derived auto-budgets on a mixed SL/L/G/random manifest"
        ),
        "python": platform.python_version(),
        "rows": [r.as_flat_dict() for r in rows],
        "summary": summary,
    }
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    _maybe_append_history(report, history_path)
    return report


# --------------------------------------------------------------------------
# E16: chase service — HTTP daemon throughput, latency, cache speedup
# --------------------------------------------------------------------------


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 1]); None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def service_benchmark_rows(
    job_count: int = 200,
    clients: int = 4,
    workers: int = 2,
    seed: int = 7,
) -> Tuple[List[SweepRow], Dict[str, object]]:
    """Measure the chase service daemon on the E15 mixed manifest.

    Five measurements, each its own row:

    1. **direct** — the same jobs through a serial ``BatchExecutor``,
       the baseline the daemon's results must match byte for byte;
    2. **service-cold** — the manifest over HTTP into a fresh daemon
       (``POST /batches`` + streamed JSONL), summaries compared against
       the direct baseline per job id;
    3. **service-warm** — the identical manifest resubmitted: every
       deterministic job must replay from the daemon's cache, and the
       cacheable subset must be served ≥ 10× faster than its cold run
       (``cache_hit_speedup``; non-deterministic timeout jobs are never
       cached and re-run, so total wall clock is reported separately);
    4. **latency** — ``clients`` threads doing single-job
       submit/long-poll round trips against the warm daemon:
       requests/sec plus p50/p95 latency;
    5. **dedup** — a burst of identical, previously-unseen submissions:
       real (non-cache-hit) executions must total exactly one.

    Returns the rows plus a machine-readable summary.
    """
    import threading

    from repro.generators.workloads import mixed_workload_jobs
    from repro.runtime import BatchExecutor
    from repro.runtime.jobs import ChaseJob, manifest_entry
    from repro.service import ChaseService, ChaseServiceClient

    jobs = mixed_workload_jobs(job_count=job_count, seed=seed)
    manifest_text = "".join(
        json.dumps(manifest_entry(job), sort_keys=True) + "\n" for job in jobs
    )

    start = time.perf_counter()
    direct_results = BatchExecutor(workers=1).run_all(jobs)
    direct_seconds = time.perf_counter() - start
    # Byte-identity is only meaningful for deterministic outcomes: a
    # timeout's summary records how far the run happened to get.
    direct_by_id = {r.job_id: r.summary_json() for r in direct_results if r.status == "ok"}

    # A production-shaped queue bound (64 < job_count): the manifest
    # streams through it via ?admit_wait backpressure rather than the
    # daemon being sized to the batch.  TTL is raised to keep the
    # admission window (clamped to ttl/2) above the full batch wait.
    with ChaseService(workers=workers, max_queue=64, ttl_seconds=3600.0) as service:
        client = ChaseServiceClient(service.url, timeout=60.0)
        client.wait_until_healthy()

        def run_manifest() -> Tuple[float, List[Dict[str, object]]]:
            start = time.perf_counter()
            rows, trailer = client.run_batch(manifest_text, wait=600.0, admit_wait=600.0)
            elapsed = time.perf_counter() - start
            assert trailer["complete"], f"batch did not complete: {trailer}"
            return elapsed, rows

        cold_seconds, cold_rows = run_manifest()
        warm_seconds, warm_rows = run_manifest()

        cold_by_id = {str(r["id"]): r for r in cold_rows}
        byte_identical = set(direct_by_id) <= set(cold_by_id) and all(
            json.dumps(cold_by_id[job_id]["summary"], sort_keys=True) == expected
            for job_id, expected in direct_by_id.items()
        )
        warm_hits = [r for r in warm_rows if r.get("cache") and r["cache"]["hit"]]
        # The speedup numerator counts each cold *execution* once: rows
        # marked deduped_of shared another row's run and inherit its
        # wall clock, so including them would multiply-count it.
        hit_speedup_rows = [
            r
            for r in warm_hits
            if "deduped_of" not in cold_by_id.get(str(r["id"]), {"deduped_of": True})
        ]
        hit_cold_seconds = sum(
            float(cold_by_id[str(r["id"])]["wall_seconds"]) for r in hit_speedup_rows
        )
        hit_warm_seconds = sum(float(r["wall_seconds"]) for r in hit_speedup_rows)
        cache_hit_speedup = round(hit_cold_seconds / max(hit_warm_seconds, 1e-9), 1)
        warm_identical = all(
            json.dumps(r["summary"], sort_keys=True)
            == json.dumps(cold_by_id[str(r["id"])]["summary"], sort_keys=True)
            for r in warm_hits
        )

        # Latency phase: concurrent single-job round trips on the warm
        # daemon — the steady-state serving path.
        latencies: List[float] = []
        latency_lock = threading.Lock()
        thread_errors: List[BaseException] = []
        shards = [jobs[i::clients] for i in range(clients)]

        def round_trips(shard) -> None:
            try:
                shard_client = ChaseServiceClient(service.url, timeout=60.0)
                for job in shard:
                    start = time.perf_counter()
                    record = shard_client.run_job(manifest_entry(job), timeout=120.0)
                    elapsed = time.perf_counter() - start
                    assert record["state"] == "done"
                    with latency_lock:
                        latencies.append(elapsed)
            except BaseException as exc:  # noqa: BLE001 - re-raised after join:
                # a silently-dead thread would bias the percentiles.
                thread_errors.append(exc)

        start = time.perf_counter()
        threads = [threading.Thread(target=round_trips, args=(shard,)) for shard in shards]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if thread_errors:
            raise thread_errors[0]
        latency_seconds = time.perf_counter() - start
        requests_per_second = round(len(latencies) / max(latency_seconds, 1e-9), 1)
        p50 = _percentile(latencies, 0.50)
        p95 = _percentile(latencies, 0.95)

        # Dedup phase: a burst of identical, never-seen-before jobs.
        from repro.generators.families import sl_lower_bound

        database, tgds = sl_lower_bound(2, 3, 3)
        fresh = manifest_entry(
            ChaseJob(program=tgds, database=database, job_id="dedup-probe")
        )
        before = service.scheduler.stats()
        burst = 8
        submissions: List[Dict[str, object]] = []

        def submit_one() -> None:
            try:
                submissions.append(
                    ChaseServiceClient(service.url, timeout=60.0).submit_job(fresh)
                )
            except BaseException as exc:  # noqa: BLE001 - re-raised after join
                thread_errors.append(exc)

        burst_threads = [threading.Thread(target=submit_one) for _ in range(burst)]
        for thread in burst_threads:
            thread.start()
        for thread in burst_threads:
            thread.join()
        if thread_errors:
            raise thread_errors[0]
        for submitted in submissions:
            client.job(str(submitted["job_id"]), wait=60.0)
        after = service.scheduler.stats()
        real_executions = (int(after["executed"]) - int(after["cache_hits"])) - (
            int(before["executed"]) - int(before["cache_hits"])
        )
        single_execution = real_executions == 1

        stats = service.stats_document()

    rows = [
        SweepRow(
            label="service-direct",
            parameters={"jobs": len(jobs)},
            measured={"seconds": round(direct_seconds, 3)},
        ),
        SweepRow(
            label="service-cold",
            parameters={"jobs": len(jobs), "workers": workers},
            measured={
                "seconds": round(cold_seconds, 3),
                "http_overhead": round(cold_seconds / max(direct_seconds, 1e-9), 2),
                "byte_identical_vs_direct": byte_identical,
            },
        ),
        SweepRow(
            label="service-warm",
            parameters={"jobs": len(jobs)},
            measured={
                "seconds": round(warm_seconds, 3),
                "hits": len(warm_hits),
                "cache_hit_speedup": cache_hit_speedup,
                "total_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
                "byte_identical": warm_identical,
            },
        ),
        SweepRow(
            label="service-latency",
            parameters={"requests": len(latencies), "clients": clients},
            measured={
                "requests_per_s": requests_per_second,
                "p50_ms": round(p50 * 1000, 2) if p50 is not None else None,
                "p95_ms": round(p95 * 1000, 2) if p95 is not None else None,
            },
        ),
        SweepRow(
            label="service-dedup",
            parameters={"burst": burst},
            measured={
                "real_executions": real_executions,
                "single_execution": single_execution,
            },
        ),
    ]
    summary = {
        "job_count": len(jobs),
        "clients": clients,
        "workers": workers,
        "direct_seconds": round(direct_seconds, 3),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_total_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "cache_hit_speedup": cache_hit_speedup,
        "cache_speedup_target_met": cache_hit_speedup >= 10.0,
        "warm_hits": len(warm_hits),
        "byte_identical_vs_direct": byte_identical,
        "warm_hits_byte_identical": warm_identical,
        "requests_per_second": requests_per_second,
        "latency_p50_ms": round(p50 * 1000, 2) if p50 is not None else None,
        "latency_p95_ms": round(p95 * 1000, 2) if p95 is not None else None,
        "dedup_real_executions": real_executions,
        "dedup_single_execution": single_execution,
        "cache_hit_rate": stats["cache_hit_rate"],
    }
    return rows, summary


def write_service_report(
    path: str = "BENCH_service.json",
    rows: Optional[Sequence[SweepRow]] = None,
    summary: Optional[Dict[str, object]] = None,
    job_count: int = 200,
    clients: int = 4,
    workers: int = 2,
    seed: int = 7,
    history_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the service benchmark and write ``BENCH_service.json``.

    The PR-facing artefact backing the daemon claims: HTTP results byte
    identical to a direct ``BatchExecutor`` run, the cacheable subset of
    a resubmitted manifest served ≥ 10× faster from cache, identical
    concurrent submissions executing exactly once, and throughput plus
    p50/p95 latency under concurrent clients.  See EXPERIMENTS.md (E16).
    Pass precomputed ``rows``/``summary`` to write without re-running.
    """
    if rows is None or summary is None:
        rows, summary = service_benchmark_rows(
            job_count=job_count, clients=clients, workers=workers, seed=seed
        )
    report = {
        "experiment": "E16-chase-service",
        "description": (
            "Chase service daemon (HTTP over the batch runtime) on the mixed "
            "manifest: direct-vs-HTTP byte identity, cache replay speedup, "
            "concurrent-client latency, in-flight dedup"
        ),
        "python": platform.python_version(),
        "rows": [r.as_flat_dict() for r in rows],
        "summary": summary,
    }
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    _maybe_append_history(report, history_path)
    return report


# --------------------------------------------------------------------------
# E12: chase variants
# --------------------------------------------------------------------------


def variant_comparison_rows(
    workloads: Sequence[Tuple[str, Database, TGDSet]],
    budget: Optional[ChaseBudget] = None,
) -> List[SweepRow]:
    """Semi-oblivious vs restricted vs oblivious size and time."""
    rows: List[SweepRow] = []
    runners = {
        "semi_oblivious": semi_oblivious_chase,
        "restricted": restricted_chase,
        "oblivious": oblivious_chase,
    }
    for name, database, tgds in workloads:
        measured: Dict[str, object] = {"|D|": len(database)}
        for variant, runner in runners.items():
            result = runner(database, tgds, budget=budget, record_derivation=False)
            measured[f"{variant}_size"] = result.size if result.terminated else f">{result.size}"
            measured[f"{variant}_seconds"] = round(result.statistics.wall_seconds, 4)
        rows.append(SweepRow(label="chase-variants", parameters={"workload": name}, measured=measured))
    return rows
