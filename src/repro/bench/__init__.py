"""Benchmark drivers.

The pytest-benchmark targets under ``benchmarks/`` stay thin; the
workload construction, parameter sweeps and row formatting live here so
they can also be used programmatically (see ``examples/``).
"""

from repro.bench.drivers import (
    SweepRow,
    chase_size_sweep,
    decision_scaling_sweep,
    depth_bound_rows,
    depth_sweep,
    format_table,
    lower_bound_rows,
    ucq_data_complexity_rows,
    variant_comparison_rows,
)

__all__ = [
    "SweepRow",
    "chase_size_sweep",
    "depth_sweep",
    "depth_bound_rows",
    "lower_bound_rows",
    "decision_scaling_sweep",
    "ucq_data_complexity_rows",
    "variant_comparison_rows",
    "format_table",
]
