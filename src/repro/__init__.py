"""repro: the non-uniformly terminating semi-oblivious chase.

A from-scratch reproduction of

    Marco Calautti, Georg Gottlob, Andreas Pieris.
    "Non-Uniformly Terminating Chase: Size and Complexity", PODS 2022.

The package has five layers:

* :mod:`repro.model` — the relational substrate (terms, atoms, TGDs,
  instances, homomorphisms, a concrete syntax);
* :mod:`repro.chase` — the semi-oblivious chase engine plus the
  oblivious and restricted baselines, the guarded chase forest and the
  depth machinery;
* :mod:`repro.core` — the paper's contribution: dependency graphs,
  non-uniform weak-acyclicity, simplification, linearization, the size
  bounds, the UCQ-based data-complexity procedure and the ChTrm
  deciders;
* :mod:`repro.runtime` — the batch runtime: declarative chase jobs
  with canonical content fingerprints, paper-derived auto-budgets, a
  fingerprint-keyed result cache, and a process-pool batch executor;
* :mod:`repro.generators` — the paper's lower-bound families, the
  Turing-machine encoding of Appendix A, random program generators,
  realistic OBDA / data-exchange scenarios and mixed batch workloads.

Quickstart::

    from repro import parse_database, parse_program, decide_termination

    database = parse_database("R(a, b).")
    program = parse_program("R(x, y) -> exists z . R(y, z)")
    verdict = decide_termination(database, program)
    assert not verdict.terminates
"""

from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    TGD,
    TGDSet,
    Variable,
    parse_atom,
    parse_database,
    parse_program,
    parse_tgd,
)
from repro.chase import (
    ChaseBudget,
    ChaseResult,
    oblivious_chase,
    restricted_chase,
    semi_oblivious_chase,
)
from repro.core import (
    TerminationVerdict,
    chase_size_bound,
    classify,
    decide_termination,
    is_weakly_acyclic,
    linearize_database,
    linearize_program,
    simplify_database,
    simplify_program,
)
from repro.runtime import (
    BatchExecutor,
    BudgetPolicy,
    ChaseJob,
    JobResult,
    ResultCache,
    database_fingerprint,
    program_fingerprint,
    read_manifest,
    write_manifest,
)

__version__ = "1.1.0"

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "Instance",
    "Null",
    "Predicate",
    "TGD",
    "TGDSet",
    "Variable",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_tgd",
    "ChaseBudget",
    "ChaseResult",
    "semi_oblivious_chase",
    "oblivious_chase",
    "restricted_chase",
    "TerminationVerdict",
    "decide_termination",
    "chase_size_bound",
    "classify",
    "is_weakly_acyclic",
    "simplify_program",
    "simplify_database",
    "linearize_program",
    "linearize_database",
    "BatchExecutor",
    "BudgetPolicy",
    "ChaseJob",
    "JobResult",
    "ResultCache",
    "database_fingerprint",
    "program_fingerprint",
    "read_manifest",
    "write_manifest",
    "__version__",
]
